"""CDR: CORBA's Common Data Representation, carried by IIOP (GIOP 1.x).

Layout rules: primitive types are naturally aligned at their size (2-, 4-,
8-byte boundaries) relative to the start of the message; chars, octets, and
booleans occupy one byte; strings are a 4-byte length (counting a mandatory
terminating NUL) followed by the bytes and the NUL; sequences are a 4-byte
element count followed by the elements.  Byte order is sender-chosen and
flagged in the GIOP header, so the format is instantiated in both
endiannesses.
"""

from __future__ import annotations

from repro.errors import BackEndError
from repro.encoding.base import AtomCodec, WireFormat
from repro.mint.types import (
    MintBoolean,
    MintChar,
    MintFloat,
    MintInteger,
)

_INT_CODECS = {
    (8, True): AtomCodec("b", 1, 1, "int"),
    (8, False): AtomCodec("B", 1, 1, "int"),
    (16, True): AtomCodec("h", 2, 2, "int"),
    (16, False): AtomCodec("H", 2, 2, "int"),
    (32, True): AtomCodec("i", 4, 4, "int"),
    (32, False): AtomCodec("I", 4, 4, "int"),
    (64, True): AtomCodec("q", 8, 8, "int"),
    (64, False): AtomCodec("Q", 8, 8, "int"),
}

_FLOAT_CODECS = {
    32: AtomCodec("f", 4, 4, "float"),
    64: AtomCodec("d", 8, 8, "float"),
}

_CHAR_CODEC = AtomCodec("B", 1, 1, "char")
_BOOL_CODEC = AtomCodec("B", 1, 1, "bool")


class CdrFormat(WireFormat):
    """GIOP 1.0 CDR layout in one chosen byte order."""

    string_nul_terminated = True

    def __init__(self, little_endian=False):
        self.little_endian = little_endian
        self.endian = "<" if little_endian else ">"
        self.name = "cdr-le" if little_endian else "cdr-be"

    def atom_codec(self, atom):
        if isinstance(atom, MintInteger):
            try:
                return _INT_CODECS[(atom.bits, atom.signed)]
            except KeyError:
                raise BackEndError(
                    "CDR cannot encode a %d-bit integer" % atom.bits
                ) from None
        if isinstance(atom, MintFloat):
            try:
                return _FLOAT_CODECS[atom.bits]
            except KeyError:
                raise BackEndError(
                    "CDR cannot encode a %d-bit float" % atom.bits
                ) from None
        if isinstance(atom, MintChar):
            return _CHAR_CODEC
        if isinstance(atom, MintBoolean):
            return _BOOL_CODEC
        raise BackEndError("not an atomic MINT type: %r" % (atom,))

    def array_padding(self, array):
        # CDR strings append a NUL terminator (not padding, but it is
        # trailing space the storage analysis must account for).  Octet
        # sequences carry no terminator.
        if isinstance(array.element, MintChar):
            return 1
        return 0
