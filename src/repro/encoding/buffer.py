"""The marshal-buffer runtime used by all generated stubs.

The paper's buffer-management optimization (section 3.1) hinges on the cost
difference between checking free space once per message *region* versus once
per atomic datum.  :class:`MarshalBuffer` exposes exactly that interface:
``reserve(n)`` performs one bounds check and returns the write offset, after
which generated code may write freely within the reserved span.  Buffers are
dynamically grown and intended to be reused across stub invocations (via
:meth:`reset`), as Flick-generated stubs do.
"""

from __future__ import annotations

from repro.errors import UnmarshalError

#: Default initial capacity; Flick stubs reuse buffers, so this is paid once.
DEFAULT_CAPACITY = 8192

# Process-wide allocation counters.  Buffer reuse is the point of the
# paper's section-3.1 optimization, so make it observable: a healthy
# steady-state server allocates a handful of buffers and then stops.
# Plain ints bumped without a lock — worst case under free-threading a
# racing bump is lost, which diagnostics can tolerate.
_allocations = 0
_grows = 0
_grown_bytes = 0


def buffer_counters():
    """Process-wide ``{"allocations", "grows", "grown_bytes"}`` counts."""
    return {
        "allocations": _allocations,
        "grows": _grows,
        "grown_bytes": _grown_bytes,
    }


def reset_buffer_counters():
    global _allocations, _grows, _grown_bytes
    _allocations = _grows = _grown_bytes = 0


class MarshalBuffer:
    """A growable, reusable byte buffer for message encoding.

    Attributes:
        data: the backing ``bytearray``; generated code writes into it with
            ``struct.pack_into`` and slice assignment.
        length: the number of valid bytes (the high-water mark of
            :meth:`reserve`).
    """

    __slots__ = ("data", "length")

    def __init__(self, capacity=DEFAULT_CAPACITY):
        global _allocations
        _allocations += 1
        self.data = bytearray(capacity)
        self.length = 0

    def reserve(self, size):
        """Ensure *size* more bytes fit; return the offset to write them at.

        This is the single free-space check for a whole message region.
        """
        offset = self.length
        end = offset + size
        if end > len(self.data):
            self._grow(end)
        self.length = end
        return offset

    def _grow(self, needed):
        global _grows, _grown_bytes
        # Double (at least), so repeated reserves are amortized O(1).
        new_capacity = max(needed, 2 * len(self.data))
        _grows += 1
        _grown_bytes += new_capacity - len(self.data)
        self.data.extend(bytearray(new_capacity - len(self.data)))

    def reset(self):
        """Forget the content but keep the capacity (buffer reuse)."""
        self.length = 0

    def getvalue(self):
        """Return the encoded message as immutable bytes."""
        return bytes(self.data[: self.length])

    def view(self):
        """Return a zero-copy ``memoryview`` of the encoded message."""
        return memoryview(self.data)[: self.length]

    def __len__(self):
        return self.length


class ReadCursor:
    """A read position over received message bytes.

    Generated unmarshal code uses the ``data``/``offset`` pair directly with
    ``struct.unpack_from``; the methods here are the checked interface used
    by interpretive (baseline) unmarshalers and by header parsing.
    """

    __slots__ = ("data", "offset")

    def __init__(self, data, offset=0):
        # Accept bytes, bytearray, or memoryview.
        self.data = data
        self.offset = offset

    def remaining(self):
        return len(self.data) - self.offset

    def need(self, size):
        """Check that *size* bytes remain; raise UnmarshalError if not."""
        if self.offset + size > len(self.data):
            raise UnmarshalError(
                "message truncated: need %d bytes at offset %d of %d"
                % (size, self.offset, len(self.data))
            )

    def advance(self, size):
        """Consume *size* bytes (checked); return the old offset."""
        self.need(size)
        offset = self.offset
        self.offset += size
        return offset

    def align(self, alignment):
        """Advance to the next multiple of *alignment*."""
        remainder = self.offset % alignment
        if remainder:
            self.advance(alignment - remainder)

    def take(self, size):
        """Consume and return *size* raw bytes."""
        offset = self.advance(size)
        return bytes(self.data[offset : offset + size])
