"""Mach 3 typed-message layout (simplified).

Mach 3 IPC messages are self-describing: each data item is preceded by a
type descriptor (``mach_msg_type_t``) giving the item's type code, element
size in bits, and element count.  This module reproduces that structure in a
simplified but faithful shape: an 8-byte descriptor — ``u32 type_code |
size_bits << 16`` and ``u32 count`` — precedes every array, and message
payloads are little-endian (the paper's MIG host was a Pentium) with 4-byte
item alignment.

MIG itself can only express scalars and arrays of scalars; Flick's Mach 3
back end (like the paper's) also ships aggregates by flattening them into
the message body after an inline descriptor.
"""

from __future__ import annotations

from repro.errors import BackEndError
from repro.encoding.base import AtomCodec, WireFormat
from repro.mint.types import (
    MintBoolean,
    MintChar,
    MintFloat,
    MintInteger,
)

#: Mach type codes (subset of mach/message.h MACH_MSG_TYPE_*).
TYPE_BYTE = 9
TYPE_INTEGER_16 = 1
TYPE_INTEGER_32 = 2
TYPE_INTEGER_64 = 11
TYPE_CHAR = 8
TYPE_BOOLEAN = 0
TYPE_REAL_32 = 25
TYPE_REAL_64 = 26

_INT_CODECS = {
    (8, True): AtomCodec("b", 1, 1, "int"),
    (8, False): AtomCodec("B", 1, 1, "int"),
    (16, True): AtomCodec("h", 2, 2, "int"),
    (16, False): AtomCodec("H", 2, 2, "int"),
    (32, True): AtomCodec("i", 4, 4, "int"),
    (32, False): AtomCodec("I", 4, 4, "int"),
    (64, True): AtomCodec("q", 8, 4, "int"),
    (64, False): AtomCodec("Q", 8, 4, "int"),
}

_FLOAT_CODECS = {
    32: AtomCodec("f", 4, 4, "float"),
    64: AtomCodec("d", 8, 4, "float"),
}

_CHAR_CODEC = AtomCodec("B", 1, 1, "char")
_BOOL_CODEC = AtomCodec("I", 4, 4, "bool")


class MachFormat(WireFormat):
    """Simplified Mach 3 typed-message layout."""

    name = "mach3"
    endian = "<"
    string_nul_terminated = False
    # Item boundaries are *usually* word aligned, but arrays of sub-word
    # scalars can end unaligned, so code generators may not assume it.
    universal_alignment = 1

    def atom_codec(self, atom):
        if isinstance(atom, MintInteger):
            try:
                return _INT_CODECS[(atom.bits, atom.signed)]
            except KeyError:
                raise BackEndError(
                    "Mach messages cannot encode a %d-bit integer"
                    % atom.bits
                ) from None
        if isinstance(atom, MintFloat):
            try:
                return _FLOAT_CODECS[atom.bits]
            except KeyError:
                raise BackEndError(
                    "Mach messages cannot encode a %d-bit float" % atom.bits
                ) from None
        if isinstance(atom, MintChar):
            return _CHAR_CODEC
        if isinstance(atom, MintBoolean):
            return _BOOL_CODEC
        raise BackEndError("not an atomic MINT type: %r" % (atom,))

    def array_header_size(self, array):
        # Typed messages carry an 8-byte descriptor before every array,
        # fixed-length or not.
        return 8

    def array_padding(self, array):
        # Items are 4-aligned; byte-grained arrays pad to the boundary.
        return 3

    def type_code(self, atom):
        """The MACH_MSG_TYPE_* code for an atom (used in descriptors)."""
        if isinstance(atom, MintInteger):
            return {8: TYPE_BYTE, 16: TYPE_INTEGER_16,
                    32: TYPE_INTEGER_32, 64: TYPE_INTEGER_64}[atom.bits]
        if isinstance(atom, MintFloat):
            return TYPE_REAL_32 if atom.bits == 32 else TYPE_REAL_64
        if isinstance(atom, MintChar):
            return TYPE_CHAR
        if isinstance(atom, MintBoolean):
            return TYPE_BOOLEAN
        raise BackEndError("no Mach type code for %r" % (atom,))

    def descriptor_word(self, atom):
        """First descriptor word: type code | size-in-bits << 16."""
        codec = self.atom_codec(atom)
        return self.type_code(atom) | (codec.size * 8) << 16
