"""The Flick pipeline driver.

Ties the three phases together exactly as Figure 1 of the paper draws
them: a front end parses IDL to AOI, a presentation generator maps AOI to
PRES_C, and a back end turns PRES_C into stubs.  Any front end composes
with any presentation generator and any back end (the MIG front end, which
is conjoined with its own presentation, is handled by
:mod:`repro.mig`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Optional, Tuple

from repro.errors import FlickError
from repro.core.options import OptFlags, RendererPolicy
from repro.obs import trace

#: Front-end registry: name -> callable(text, name) -> AoiRoot.
FRONTENDS = {}

#: Split front ends: name -> (parse(text, name) -> spec,
#: lower(spec, name) -> validated AoiRoot).  Lets the driver time (and
#: trace) parsing separately from AOI lowering; front ends absent here
#: fall back to the fused FRONTENDS entry, reported as one "parse" phase.
FRONTEND_PHASES = {}

#: Default presentation style per front end.
DEFAULT_PRESENTATION = {
    "corba": "corba-c",
    "oncrpc": "rpcgen",
}

#: Default back end per presentation style.
DEFAULT_BACKEND = {
    "corba-c": "iiop",
    "corba-c-len": "iiop",
    "rpcgen": "oncrpc-xdr",
    "fluke": "fluke",
}


def _register_frontends():
    # Compose the phase functions directly rather than going through the
    # deprecated compile_*_idl shims, so driving the pipeline never warns.
    from repro.aoi import validate
    from repro.corba import corba_to_aoi, parse_corba_idl
    from repro.oncrpc import oncrpc_to_aoi, parse_oncrpc_idl

    FRONTEND_PHASES["corba"] = (
        parse_corba_idl,
        lambda spec, name: validate(corba_to_aoi(spec, name=name)),
    )
    FRONTEND_PHASES["oncrpc"] = (
        parse_oncrpc_idl,
        lambda spec, name: validate(oncrpc_to_aoi(spec, name=name)),
    )
    for frontend, (parse_fn, lower) in FRONTEND_PHASES.items():
        FRONTENDS[frontend] = _fuse_phases(parse_fn, lower)


def _fuse_phases(parse_fn, lower):
    def fused(text, name="<idl>"):
        return lower(parse_fn(text, name), name)

    return fused


@dataclass
class CompileResult:
    """Everything produced for one interface: IRs and generated stubs."""

    aoi: object
    interface: object
    presc: object
    stubs: object  # GeneratedStubs
    #: Per-phase wall-clock seconds: parse, aoi, present, emit, total.
    timings: Optional[Dict[str, float]] = None
    #: The front end that produced this result ("corba", "oncrpc", "mig");
    #: None for results built before the unified api facade existed.
    frontend: Optional[str] = None

    def load_module(self):
        return self.stubs.load()

    def emit_summary(self):
        """Size/shape facts about the generated stubs (for --timing)."""
        stubs = self.stubs
        operations = stubs.metadata.get("operations", {})
        return {
            "operations": len(operations),
            "stub_bytes": len(stubs.py_source),
            "stub_lines": stubs.py_source.count("\n"),
            "request_chunks": sum(
                meta.get("request_chunks", 0)
                for meta in operations.values()
            ),
        }


class Flick:
    """The compiler facade.

    Example::

        flick = Flick(frontend="corba", backend="iiop")
        result = flick.compile(idl_text)
        module = result.load_module()
        client = module.Test_MailClient(transport)
    """

    def __init__(self, frontend="corba", presentation=None, backend=None,
                 flags=None, renderer="py", **backend_options):
        if not FRONTENDS:
            _register_frontends()
        if frontend not in FRONTENDS:
            raise FlickError(
                "unknown front end %r (have: %s)"
                % (frontend, ", ".join(sorted(FRONTENDS)))
            )
        self.frontend = frontend
        self.presentation = presentation or DEFAULT_PRESENTATION[frontend]
        self.backend = backend or DEFAULT_BACKEND[self.presentation]
        # renderer accepts a name or a RendererPolicy; explicit
        # backend_options merge over the policy's own.
        self.policy = RendererPolicy.coerce(renderer, **backend_options)
        self.flags = self.policy.resolve_flags(flags or OptFlags())
        self.renderer = self.policy.renderer
        self.backend_options = self.policy.options()

    # ------------------------------------------------------------------

    def parse(self, idl_text, name="<idl>"):
        """Run only the front end; returns the validated AoiRoot."""
        return FRONTENDS[self.frontend](idl_text, name)

    def present(self, aoi_root, interface_name=None, side="client"):
        """Run presentation generation for one interface."""
        from repro.pgen import make_presentation

        interface = self._pick_interface(aoi_root, interface_name)
        generator = make_presentation(self.presentation)
        return generator.generate(aoi_root, interface, side=side)

    def compile(self, idl_text, interface=None, name="<idl>"):
        """Full pipeline; returns a :class:`repro.core.handle
        .CompiledInterface` (a :class:`CompileResult` subclass).

        The result's ``timings`` dict always carries per-phase wall-clock
        seconds (parse, aoi, present, emit, total) — the cost of a few
        ``perf_counter`` reads; ``flick compile --timing`` prints them.
        """
        from repro.backend import make_backend
        from repro.pgen import make_presentation

        timings = {}
        total_started = perf_counter()
        phases = FRONTEND_PHASES.get(self.frontend)
        phase_started = total_started
        if phases is not None:
            parse_fn, lower = phases
            with trace.span("compile.parse"):
                specification = parse_fn(idl_text, name)
            timings["parse_s"] = perf_counter() - phase_started
            phase_started = perf_counter()
            with trace.span("compile.aoi"):
                aoi_root = lower(specification, name)
            timings["aoi_s"] = perf_counter() - phase_started
        else:
            with trace.span("compile.parse"):
                aoi_root = self.parse(idl_text, name)
            timings["parse_s"] = perf_counter() - phase_started
        picked = self._pick_interface(aoi_root, interface)
        phase_started = perf_counter()
        with trace.span("compile.present"):
            generator = make_presentation(self.presentation)
            presc = generator.generate(aoi_root, picked, side="client")
        timings["present_s"] = perf_counter() - phase_started
        phase_started = perf_counter()
        with trace.span("compile.emit"):
            backend = make_backend(self.backend, **self.backend_options)
            stubs = backend.generate(presc, self.flags,
                                     renderer=self.renderer)
        timings["emit_s"] = perf_counter() - phase_started
        timings["total_s"] = perf_counter() - total_started
        from repro.core.handle import CompiledInterface

        return CompiledInterface(
            aoi=aoi_root, interface=picked, presc=presc, stubs=stubs,
            timings=timings, frontend=self.frontend,
        )

    def compile_all(self, idl_text, name="<idl>"):
        """Compile every interface; returns {interface name: result}."""
        aoi_root = self.parse(idl_text, name)
        results = {}
        for interface in aoi_root.interfaces:
            results[interface.name] = self.compile(
                idl_text, interface=interface.name, name=name
            )
        return results

    @staticmethod
    def _pick_interface(aoi_root, interface_name):
        if interface_name is not None:
            return aoi_root.interface_named(interface_name)
        if not aoi_root.interfaces:
            raise FlickError("the IDL input defines no interfaces")
        if len(aoi_root.interfaces) > 1:
            raise FlickError(
                "the IDL input defines %d interfaces; pass interface=..."
                % len(aoi_root.interfaces)
            )
        return aoi_root.interfaces[0]
