"""The Flick pipeline driver.

Ties the three phases together exactly as Figure 1 of the paper draws
them: a front end parses IDL to AOI, a presentation generator maps AOI to
PRES_C, and a back end turns PRES_C into stubs.  Any front end composes
with any presentation generator and any back end (the MIG front end, which
is conjoined with its own presentation, is handled by
:mod:`repro.mig`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import FlickError
from repro.core.options import OptFlags

#: Front-end registry: name -> callable(text, name) -> AoiRoot.
FRONTENDS = {}

#: Default presentation style per front end.
DEFAULT_PRESENTATION = {
    "corba": "corba-c",
    "oncrpc": "rpcgen",
}

#: Default back end per presentation style.
DEFAULT_BACKEND = {
    "corba-c": "iiop",
    "corba-c-len": "iiop",
    "rpcgen": "oncrpc-xdr",
    "fluke": "fluke",
}


def _register_frontends():
    from repro.corba import compile_corba_idl
    from repro.oncrpc import compile_oncrpc_idl

    FRONTENDS["corba"] = compile_corba_idl
    FRONTENDS["oncrpc"] = compile_oncrpc_idl


@dataclass
class CompileResult:
    """Everything produced for one interface: IRs and generated stubs."""

    aoi: object
    interface: object
    presc: object
    stubs: object  # GeneratedStubs

    def load_module(self):
        return self.stubs.load()


class Flick:
    """The compiler facade.

    Example::

        flick = Flick(frontend="corba", backend="iiop")
        result = flick.compile(idl_text)
        module = result.load_module()
        client = module.Test_MailClient(transport)
    """

    def __init__(self, frontend="corba", presentation=None, backend=None,
                 flags=None, **backend_options):
        if not FRONTENDS:
            _register_frontends()
        if frontend not in FRONTENDS:
            raise FlickError(
                "unknown front end %r (have: %s)"
                % (frontend, ", ".join(sorted(FRONTENDS)))
            )
        self.frontend = frontend
        self.presentation = presentation or DEFAULT_PRESENTATION[frontend]
        self.backend = backend or DEFAULT_BACKEND[self.presentation]
        self.flags = flags or OptFlags()
        self.backend_options = backend_options

    # ------------------------------------------------------------------

    def parse(self, idl_text, name="<idl>"):
        """Run only the front end; returns the validated AoiRoot."""
        return FRONTENDS[self.frontend](idl_text, name)

    def present(self, aoi_root, interface_name=None, side="client"):
        """Run presentation generation for one interface."""
        from repro.pgen import make_presentation

        interface = self._pick_interface(aoi_root, interface_name)
        generator = make_presentation(self.presentation)
        return generator.generate(aoi_root, interface, side=side)

    def compile(self, idl_text, interface=None, name="<idl>"):
        """Full pipeline; returns a :class:`CompileResult`."""
        from repro.backend import make_backend
        from repro.pgen import make_presentation

        aoi_root = self.parse(idl_text, name)
        picked = self._pick_interface(aoi_root, interface)
        generator = make_presentation(self.presentation)
        presc = generator.generate(aoi_root, picked, side="client")
        backend = make_backend(self.backend, **self.backend_options)
        stubs = backend.generate(presc, self.flags)
        return CompileResult(
            aoi=aoi_root, interface=picked, presc=presc, stubs=stubs
        )

    def compile_all(self, idl_text, name="<idl>"):
        """Compile every interface; returns {interface name: result}."""
        aoi_root = self.parse(idl_text, name)
        results = {}
        for interface in aoi_root.interfaces:
            results[interface.name] = self.compile(
                idl_text, interface=interface.name, name=name
            )
        return results

    @staticmethod
    def _pick_interface(aoi_root, interface_name):
        if interface_name is not None:
            return aoi_root.interface_named(interface_name)
        if not aoi_root.interfaces:
            raise FlickError("the IDL input defines no interfaces")
        if len(aoi_root.interfaces) > 1:
            raise FlickError(
                "the IDL input defines %d interfaces; pass interface=..."
                % len(aoi_root.interfaces)
            )
        return aoi_root.interfaces[0]
