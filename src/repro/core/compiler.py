"""The Flick pipeline driver.

Ties the three phases together exactly as Figure 1 of the paper draws
them: a front end parses IDL to AOI, a presentation generator maps AOI to
PRES_C, and a back end turns PRES_C into stubs.  Any front end composes
with any presentation generator and any back end.  Front ends come from
the self-registering :mod:`repro.frontends` registry; conjoined front
ends (MIG, whose ``lower`` phase yields PRES_C directly) skip the
presentation phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Optional, Tuple

from repro.errors import FlickError
from repro import frontends as frontend_registry
from repro.core.options import OptFlags, RendererPolicy
from repro.obs import trace

#: Default back end per presentation style.
DEFAULT_BACKEND = {
    "corba-c": "iiop",
    "corba-c-len": "iiop",
    "rpcgen": "oncrpc-xdr",
    "fluke": "fluke",
}


@dataclass
class CompileResult:
    """Everything produced for one interface: IRs and generated stubs."""

    aoi: object
    interface: object
    presc: object
    stubs: object  # GeneratedStubs
    #: Per-phase wall-clock seconds: parse, aoi, present, emit, total.
    timings: Optional[Dict[str, float]] = None
    #: The front end that produced this result ("corba", "oncrpc", "mig",
    #: "pyschema"); None for results built before the unified api facade.
    frontend: Optional[str] = None

    def load_module(self):
        return self.stubs.load()

    def emit_summary(self):
        """Size/shape facts about the generated stubs (for --timing)."""
        stubs = self.stubs
        operations = stubs.metadata.get("operations", {})
        return {
            "operations": len(operations),
            "stub_bytes": len(stubs.py_source),
            "stub_lines": stubs.py_source.count("\n"),
            "request_chunks": sum(
                meta.get("request_chunks", 0)
                for meta in operations.values()
            ),
        }


class Flick:
    """The compiler facade.

    Example::

        flick = Flick(frontend="corba", backend="iiop")
        result = flick.compile(idl_text)
        module = result.load_module()
        client = module.Test_MailClient(transport)
    """

    def __init__(self, frontend="corba", presentation=None, backend=None,
                 flags=None, renderer="py", **backend_options):
        try:
            self.fe = frontend_registry.get(frontend)
        except FlickError:
            raise FlickError(
                "unknown front end %r (have: %s)"
                % (frontend, ", ".join(frontend_registry.names()))
            ) from None
        self.frontend = self.fe.name
        if self.fe.has_aoi:
            self.presentation = presentation or self.fe.presentation
            self.backend = backend or DEFAULT_BACKEND[self.presentation]
        else:
            # Conjoined front ends carry their own presentation.
            self.presentation = presentation
            self.backend = backend or self.fe.backend
        # renderer accepts a name or a RendererPolicy; explicit
        # backend_options merge over the policy's own.
        self.policy = RendererPolicy.coerce(renderer, **backend_options)
        self.flags = self.policy.resolve_flags(flags or OptFlags())
        self.renderer = self.policy.renderer
        self.backend_options = self.policy.options()

    # ------------------------------------------------------------------

    def parse(self, idl_text, name="<idl>"):
        """Run only the front end; returns the validated AoiRoot."""
        if not self.fe.has_aoi:
            raise FlickError(
                "%s bypasses AOI (conjoined front end); use "
                "api.compile(text, %r) for the full pipeline"
                % (self.frontend, self.frontend)
            )
        return self.fe.compile_frontend(idl_text, name)

    def present(self, aoi_root, interface_name=None, side="client"):
        """Run presentation generation for one interface."""
        from repro.pgen import make_presentation

        interface = self._pick_interface(aoi_root, interface_name)
        generator = make_presentation(self.presentation)
        return generator.generate(aoi_root, interface, side=side)

    def compile(self, idl_text, interface=None, name="<idl>"):
        """Full pipeline; returns a :class:`repro.core.handle
        .CompiledInterface` (a :class:`CompileResult` subclass).

        The result's ``timings`` dict always carries per-phase wall-clock
        seconds (parse, aoi, present, emit, total) — the cost of a few
        ``perf_counter`` reads; ``flick compile --timing`` prints them.
        """
        from repro.backend import make_backend
        from repro.pgen import make_presentation

        if not self.fe.has_aoi:
            return self._compile_conjoined(idl_text, interface, name)
        timings = {}
        total_started = perf_counter()
        phase_started = total_started
        with trace.span("compile.parse"):
            specification = self.fe.parse(idl_text, name)
        timings["parse_s"] = perf_counter() - phase_started
        phase_started = perf_counter()
        with trace.span("compile.aoi"):
            aoi_root = self.fe.lower(specification, name)
        timings["aoi_s"] = perf_counter() - phase_started
        picked = self._pick_interface(aoi_root, interface)
        phase_started = perf_counter()
        with trace.span("compile.present"):
            generator = make_presentation(self.presentation)
            presc = generator.generate(aoi_root, picked, side="client")
        timings["present_s"] = perf_counter() - phase_started
        phase_started = perf_counter()
        with trace.span("compile.emit"):
            backend = make_backend(self.backend, **self.backend_options)
            stubs = backend.generate(presc, self.flags,
                                     renderer=self.renderer)
        timings["emit_s"] = perf_counter() - phase_started
        timings["total_s"] = perf_counter() - total_started
        from repro.core.handle import CompiledInterface

        return CompiledInterface(
            aoi=aoi_root, interface=picked, presc=presc, stubs=stubs,
            timings=timings, frontend=self.frontend,
        )

    def _compile_conjoined(self, idl_text, interface, name):
        """Conjoined path: ``lower`` yields PRES_C, no AOI phase."""
        from repro.backend import make_backend
        from repro.core.handle import CompiledInterface

        timings = {}
        total_started = perf_counter()
        phase_started = total_started
        with trace.span("compile.parse"):
            specification = self.fe.parse(idl_text, name)
        timings["parse_s"] = perf_counter() - phase_started
        phase_started = perf_counter()
        with trace.span("compile.present"):
            presc = self.fe.lower(specification, name)
        timings["present_s"] = perf_counter() - phase_started
        if interface is not None and presc.interface_name != interface:
            raise FlickError(
                "%s subsystem defines %r, not %r"
                % (self.frontend.upper(), presc.interface_name, interface)
            )
        phase_started = perf_counter()
        with trace.span("compile.emit"):
            backend = make_backend(self.backend, **self.backend_options)
            stubs = backend.generate(presc, self.flags,
                                     renderer=self.renderer)
        timings["emit_s"] = perf_counter() - phase_started
        timings["total_s"] = perf_counter() - total_started
        return CompiledInterface(
            aoi=None, interface=None, presc=presc, stubs=stubs,
            timings=timings, frontend=self.frontend,
        )

    def compile_all(self, idl_text, name="<idl>"):
        """Compile every interface; returns {interface name: result}."""
        if not self.fe.has_aoi:
            result = self.compile(idl_text, name=name)
            return {result.presc.interface_name: result}
        aoi_root = self.parse(idl_text, name)
        results = {}
        for interface in aoi_root.interfaces:
            results[interface.name] = self.compile(
                idl_text, interface=interface.name, name=name
            )
        return results

    @staticmethod
    def _pick_interface(aoi_root, interface_name):
        if interface_name is not None:
            return aoi_root.interface_named(interface_name)
        if not aoi_root.interfaces:
            raise FlickError("the IDL input defines no interfaces")
        if len(aoi_root.interfaces) > 1:
            raise FlickError(
                "the IDL input defines %d interfaces; pass interface=..."
                % len(aoi_root.interfaces)
            )
        return aoi_root.interfaces[0]
