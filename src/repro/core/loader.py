"""Load generated Python stub modules.

Generated stubs are plain Python source; this module compiles and executes
them into real module objects so that clients, servants, and dispatch
functions can be used directly.  Modules are registered in ``sys.modules``
under unique names so tracebacks through generated code are readable.
"""

from __future__ import annotations

import sys
import types

_counter = 0


def load_stub_module(source, name="flick_generated"):
    """Compile and exec generated *source*; return the module object."""
    global _counter
    _counter += 1
    unique = "%s_%d" % (name, _counter)
    module = types.ModuleType(unique)
    module.__file__ = "<%s>" % unique
    code = compile(source, module.__file__, "exec")
    sys.modules[unique] = module
    try:
        exec(code, module.__dict__)
    except Exception:
        sys.modules.pop(unique, None)
        raise
    module.__source__ = source
    return module
