"""The first-class compiled-interface handle.

``api.compile`` historically returned a :class:`repro.core.compiler
.CompileResult` whose consumers immediately reached into the
content-hashed stub module (``result.load_module()``) and manipulated
codec functions by name.  Runtime tiering, the supervisor's generation
files, and user code all need to do that *safely* — so the facade now
returns a :class:`CompiledInterface`: the same result object (it is a
subclass, every existing field and method keeps working) plus a stable
surface over the loaded module:

* :attr:`module` — the loaded stub module (cached, same as
  ``load_module()``),
* :attr:`codec_table` — live per-operation codec bindings,
* :attr:`renderers` — the renderer registry,
* :meth:`recompile` — rebuild one operation's (or the whole
  interface's) codecs under a different renderer or pass configuration
  and optionally install them atomically over the module.

Old code that treated the result as the module itself keeps working
through a deprecation shim: unknown attributes forward to the loaded
stub module with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import re
import warnings

from repro.errors import FlickError
from repro.core.compiler import CompileResult
from repro.core.options import OptFlags, RendererPolicy

#: Codec-entry naming convention shared with the profiler and runtime:
#: form prefix -> regex capturing the operation name.
_FORM_PATTERNS = (
    ("m_req", re.compile(r"^_m_req_(.+)$")),
    ("u_req", re.compile(r"^_u_req_(.+)$")),
    ("m_rep_ok", re.compile(r"^_m_rep_ok_(.+)$")),
    ("m_rep_exc", re.compile(r"^_m_rep_x\d+_(.+)$")),
    ("u_rep", re.compile(r"^_u_rep_(.+)$")),
)


def codec_form(name):
    """``(form, op)`` for a codec entry name, or ``(None, None)``."""
    for form, pattern in _FORM_PATTERNS:
        match = pattern.match(name)
        if match is not None:
            return form, match.group(1)
    return None, None


class CompiledInterface(CompileResult):
    """A :class:`CompileResult` with a stable handle surface.

    Everything the old result carried is still here (``aoi``,
    ``presc``, ``stubs``, ``timings``, ``load_module()``); the handle
    adds the module/codec surface that runtime tiering and operators
    manipulate, so nothing outside this class needs to know the
    generated module's content-hashed name or entry conventions.
    """

    # -- module surface -------------------------------------------------

    @property
    def module(self):
        """The loaded stub module (cached; same object every time)."""
        return self.stubs.load()

    @property
    def renderer(self):
        """The renderer these stubs were generated with."""
        return self.stubs.renderer

    @property
    def renderers(self):
        """Renderer names :meth:`recompile` accepts."""
        from repro.backend.base import RENDERERS

        return RENDERERS

    @property
    def mir(self):
        """The optimized marshal IR (None for writer-driven baselines)."""
        return self.stubs.mir

    def operations(self):
        """The interface's operation names, sorted."""
        return sorted(self.stubs.metadata.get("operations", ()))

    @property
    def codec_table(self):
        """Live codec bindings: op -> {entry name: current function}.

        Read from the loaded module's dict on every access, so the table
        reflects tier swaps and profiler wrappers the moment they land.
        """
        table = {}
        for name, value in vars(self.module).items():
            form, op = codec_form(name)
            if form is None:
                continue
            table.setdefault(op, {})[name] = value
        return table

    # -- recompilation --------------------------------------------------

    def recompile(self, op=None, *, renderer=None, flags=None,
                  policy=None, install=True):
        """Rebuild codecs and (optionally) install them over the module.

        Args:
            op: one operation name, or None for the whole interface.
            renderer: target renderer name (``"py"`` or ``"closures"``);
                defaults to the stubs' current renderer.
            flags: base :class:`OptFlags`; defaults to the flags the
                stubs were generated with.
            policy: a :class:`RendererPolicy` — its renderer is used
                unless *renderer* overrides it, and its
                ``disable_passes`` fold into *flags*.
            install: when True (default) the new functions replace the
                module's entries one ``dict`` store at a time — atomic
                under the GIL, and safe mid-traffic because every
                renderer produces byte-identical wire output from the
                same IR.  When False the functions are only returned
                (how the tiering engine shadow-verifies before
                committing).

        Returns ``{entry name: function}`` for the rebuilt codecs.
        Out-of-line helper functions the new codecs need are installed
        into the module when absent regardless of *install* (no
        existing code references a name that was never bound).
        """
        stubs = self.stubs
        backend = getattr(stubs, "backend_instance", None)
        if backend is None or stubs.mir is None:
            raise FlickError(
                "these stubs carry no back end/marshal IR;"
                " recompile needs the MIR pipeline"
            )
        if policy is not None:
            policy = RendererPolicy.coerce(policy)
            if renderer is None:
                renderer = policy.renderer
            flags = policy.resolve_flags(
                flags if flags is not None else stubs.flags)
        renderer = renderer or stubs.renderer
        if renderer == "c":
            raise FlickError(
                "the C artifact is inspect-only; recompile to 'py'"
                " or 'closures'"
            )
        if flags is None:
            flags = stubs.flags or OptFlags()
        program = self._build_program(backend, flags)
        functions = self._select_functions(program, op)
        module = self.module
        if renderer == "closures":
            new = self._compile_closures(program, functions, module)
        else:
            new = self._compile_py(program, functions, module)
        if install:
            for name, function in new.items():
                module.__dict__[name] = function
        return new

    def _build_program(self, backend, flags):
        from repro.mir.build import build_program
        from repro.mir.passes import PassManager

        program = build_program(backend, self.presc, flags)
        return PassManager(flags).run(program)

    def _select_functions(self, program, op):
        """The op's entry functions (or all entries when *op* is None)."""
        if op is None:
            return {fn.name: fn for fn in program.functions
                    if not fn.kind.endswith("_helper")}
        selected = {fn.name: fn for fn in program.functions
                    if fn.operation == op}
        if not selected:
            raise FlickError(
                "interface %s has no operation %r (have: %s)"
                % (self.presc.interface_name, op,
                   ", ".join(self.operations()))
            )
        return selected

    def _compile_closures(self, program, functions, module):
        """IR -> step closures over the live module globals.

        Helper functions (``_m_<T>``/``_u_<T>``) resolve lazily through
        the module dict at call time, so entries compiled here can call
        helpers from either renderer — both implement the same IR-level
        signature.  Helpers the module has never bound (a different
        pass configuration can name new ones) are installed eagerly.
        """
        from repro.mir.render_closures import _compile_function

        G = module.__dict__
        for fn in program.functions:
            if fn.kind.endswith("_helper") and fn.name not in G:
                G[fn.name] = _compile_function(fn, G)
        return {name: _compile_function(fn, G)
                for name, fn in functions.items()}

    def _compile_py(self, program, functions, module):
        """IR -> rendered source, exec'd into a *copy* of the module
        globals.

        The copy keeps the live module clean: the new functions carry
        their own consts and helpers in their ``__globals__`` while
        still seeing the module's record classes and imports, so a
        per-op swap never perturbs sibling operations.
        """
        from repro.backend.pywriter import PyWriter
        from repro.mir import render_py

        w = PyWriter()
        render_py.render_program(w, program)
        namespace = dict(module.__dict__)
        code = compile(w.getvalue(),
                       "<recompile %s>" % module.__name__, "exec")
        exec(code, namespace)
        return {name: namespace[name] for name in functions}

    # -- deprecation shim ----------------------------------------------

    def __getattr__(self, name):
        """Forward unknown attributes to the loaded stub module.

        The pre-handle facade returned results whose callers sometimes
        treated them as the module (client classes, ``dispatch``); that
        keeps working for one deprecation cycle.
        """
        if name.startswith("_") or name in CompileResult.__dataclass_fields__:
            # Field names must never forward: a half-built instance
            # (unpickling, copy) asking for ``stubs`` would recurse.
            raise AttributeError(name)
        try:
            value = getattr(self.stubs.load(), name)
        except AttributeError:
            raise AttributeError(
                "%r object has no attribute %r"
                % (type(self).__name__, name)) from None
        warnings.warn(
            "reaching through CompiledInterface for stub-module"
            " attribute %r is deprecated; use .module.%s" % (name, name),
            DeprecationWarning, stacklevel=2)
        return value
