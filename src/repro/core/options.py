"""Optimization flags for Flick back ends.

Each flag enables one of the domain-specific optimizations of section 3 of
the paper.  Flick defaults to all-on; the ablation benchmarks toggle them
individually.  (The baseline compilers in :mod:`repro.compilers` do not
consult these flags — they reimplement each rival compiler's code style —
but a Flick back end with a flag off generates code shaped like the
corresponding unoptimized idiom.)
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class OptFlags:
    """Back-end optimization switches.

    Attributes:
        inline_marshal: inline marshal/unmarshal code into stubs; only
            recursive types get out-of-line functions (section 3.3).  When
            off, every named aggregate type gets its own marshal functions
            and stubs call through them, as traditional IDL compilers do.
        chunk_atoms: coalesce runs of fixed-layout atoms into single
            multi-field pack/unpack operations addressed at constant
            offsets from the chunk start — the paper's chunk pointer +
            constant offset scheme (section 3.2).  When off, each atom is
            packed individually.
        memcpy_arrays: bulk-copy arrays of atomic types whose encoded and
            presented layouts coincide (strings, byte arrays), and batch
            arrays of other atoms into one array-wide pack (section 3.2).
            When off, arrays marshal element by element.
        batch_buffer_checks: one free-space check per message region using
            the storage-class analysis (section 3.1).  When off, every
            atomic datum performs its own buffer check, like rpcgen.
        zero_copy_server: present large received byte arrays to server work
            functions as views into the receive buffer instead of copies —
            the paper's reuse of marshal-buffer storage for unmarshaled
            data, valid because servants must not keep references after
            returning (section 3.1).
        hash_demux: demultiplex requests with a hashed (dict) lookup on the
            discriminator and inline the unmarshal code into the dispatch
            path (section 3.3).  When off, dispatch compares discriminators
            one at a time down an if-chain.
        reuse_buffers: client stubs keep and reset one marshal buffer
            across invocations instead of allocating per call.
        iterative_lists: marshal self-referential list types (a struct
            whose trailing optional field points to itself) with a loop
            instead of recursion.  The paper's footnote 5 promises exactly
            this for "a future version of Flick"; here it also lifts
            Python's recursion limit off deep lists.  Wire bytes are
            unchanged.
        fold_header_constants: fold constant leading reply-body atoms
            (status discriminators, descriptor words) into the reply
            header byte template, one template constant per reply
            function (an IR→IR pass; wire bytes are unchanged).
        dedup_out_of_line: merge structurally identical out-of-line
            helper functions and alias their call sites (an IR→IR pass).

    Flag names ending up in generated-code shape are 1:1 with the MIR
    pass names (:data:`repro.mir.passes.PASS_NAMES`), so the same names
    toggle passes from the CLI (``--disable-pass``) and benchmarks.
    """

    inline_marshal: bool = True
    chunk_atoms: bool = True
    memcpy_arrays: bool = True
    batch_buffer_checks: bool = True
    zero_copy_server: bool = False
    hash_demux: bool = True
    reuse_buffers: bool = True
    iterative_lists: bool = True
    fold_header_constants: bool = True
    dedup_out_of_line: bool = True

    def but(self, **changes):
        """Return a copy with *changes* applied (ablation helper)."""
        return replace(self, **changes)

    def disable_pass(self, name):
        """Return a copy with the MIR pass *name* turned off.

        Unknown names raise ValueError listing the available passes.
        """
        from repro.mir.passes import PASS_NAMES

        if name not in PASS_NAMES:
            raise ValueError(
                "unknown pass %r; available passes: %s"
                % (name, ", ".join(sorted(PASS_NAMES)))
            )
        return replace(self, **{name: False})

    @classmethod
    def all_off(cls):
        """The fully unoptimized configuration."""
        return cls(
            inline_marshal=False,
            chunk_atoms=False,
            memcpy_arrays=False,
            batch_buffer_checks=False,
            zero_copy_server=False,
            hash_demux=False,
            reuse_buffers=False,
            iterative_lists=False,
            fold_header_constants=False,
            dedup_out_of_line=False,
        )
