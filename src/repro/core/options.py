"""Optimization flags for Flick back ends.

Each flag enables one of the domain-specific optimizations of section 3 of
the paper.  Flick defaults to all-on; the ablation benchmarks toggle them
individually.  (The baseline compilers in :mod:`repro.compilers` do not
consult these flags — they reimplement each rival compiler's code style —
but a Flick back end with a flag off generates code shaped like the
corresponding unoptimized idiom.)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple


@dataclass(frozen=True)
class OptFlags:
    """Back-end optimization switches.

    Attributes:
        inline_marshal: inline marshal/unmarshal code into stubs; only
            recursive types get out-of-line functions (section 3.3).  When
            off, every named aggregate type gets its own marshal functions
            and stubs call through them, as traditional IDL compilers do.
        chunk_atoms: coalesce runs of fixed-layout atoms into single
            multi-field pack/unpack operations addressed at constant
            offsets from the chunk start — the paper's chunk pointer +
            constant offset scheme (section 3.2).  When off, each atom is
            packed individually.
        memcpy_arrays: bulk-copy arrays of atomic types whose encoded and
            presented layouts coincide (strings, byte arrays), and batch
            arrays of other atoms into one array-wide pack (section 3.2).
            When off, arrays marshal element by element.
        batch_buffer_checks: one free-space check per message region using
            the storage-class analysis (section 3.1).  When off, every
            atomic datum performs its own buffer check, like rpcgen.
        zero_copy_server: present large received byte arrays to server work
            functions as views into the receive buffer instead of copies —
            the paper's reuse of marshal-buffer storage for unmarshaled
            data, valid because servants must not keep references after
            returning (section 3.1).
        hash_demux: demultiplex requests with a hashed (dict) lookup on the
            discriminator and inline the unmarshal code into the dispatch
            path (section 3.3).  When off, dispatch compares discriminators
            one at a time down an if-chain.
        reuse_buffers: client stubs keep and reset one marshal buffer
            across invocations instead of allocating per call.
        iterative_lists: marshal self-referential list types (a struct
            whose trailing optional field points to itself) with a loop
            instead of recursion.  The paper's footnote 5 promises exactly
            this for "a future version of Flick"; here it also lifts
            Python's recursion limit off deep lists.  Wire bytes are
            unchanged.
        fold_header_constants: fold constant leading reply-body atoms
            (status discriminators, descriptor words) into the reply
            header byte template, one template constant per reply
            function (an IR→IR pass; wire bytes are unchanged).
        dedup_out_of_line: merge structurally identical out-of-line
            helper functions and alias their call sites (an IR→IR pass).

    Flag names ending up in generated-code shape are 1:1 with the MIR
    pass names (:data:`repro.mir.passes.PASS_NAMES`), so the same names
    toggle passes from the CLI (``--disable-pass``) and benchmarks.
    """

    inline_marshal: bool = True
    chunk_atoms: bool = True
    memcpy_arrays: bool = True
    batch_buffer_checks: bool = True
    zero_copy_server: bool = False
    hash_demux: bool = True
    reuse_buffers: bool = True
    iterative_lists: bool = True
    fold_header_constants: bool = True
    dedup_out_of_line: bool = True

    def but(self, **changes):
        """Return a copy with *changes* applied (ablation helper)."""
        return replace(self, **changes)

    def disable_pass(self, name):
        """Return a copy with the MIR pass *name* turned off.

        Unknown names raise ValueError listing the available passes.
        """
        from repro.mir.passes import PASS_NAMES

        if name not in PASS_NAMES:
            raise ValueError(
                "unknown pass %r; available passes: %s"
                % (name, ", ".join(sorted(PASS_NAMES)))
            )
        return replace(self, **{name: False})

    @classmethod
    def all_off(cls):
        """The fully unoptimized configuration."""
        return cls(
            inline_marshal=False,
            chunk_atoms=False,
            memcpy_arrays=False,
            batch_buffer_checks=False,
            zero_copy_server=False,
            hash_demux=False,
            reuse_buffers=False,
            iterative_lists=False,
            fold_header_constants=False,
            dedup_out_of_line=False,
        )


@dataclass(frozen=True)
class RendererPolicy:
    """One value carrying every codec-generation choice.

    Historically the choice was scattered: ``renderer=`` strings on
    ``api.compile``/``Flick``/``generate``, ``--disable-pass`` on the
    CLI, and loose ``**backend_options``.  A policy folds all three into
    one immutable object accepted everywhere a ``renderer=`` string is
    today (the bare string still works — :meth:`coerce` upgrades it).

    Attributes:
        renderer: how the optimized marshal IR becomes codecs (``"py"``,
            ``"closures"``, or ``"c"``).
        disable_passes: MIR pass names (see
            :data:`repro.mir.passes.PASS_NAMES`) to turn off on top of
            whatever base :class:`OptFlags` the caller supplies.
        backend_options: extra keyword options for the back-end factory,
            stored as a sorted ``(name, value)`` tuple so the policy
            stays hashable; :meth:`options` returns them as a dict.
    """

    renderer: str = "py"
    disable_passes: Tuple[str, ...] = ()
    backend_options: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self):
        if isinstance(self.disable_passes, str):
            object.__setattr__(
                self, "disable_passes", (self.disable_passes,))
        else:
            object.__setattr__(
                self, "disable_passes", tuple(self.disable_passes))
        options = self.backend_options
        if isinstance(options, dict):
            options = tuple(sorted(options.items()))
        else:
            options = tuple(sorted(tuple(pair) for pair in options))
        object.__setattr__(self, "backend_options", options)

    @classmethod
    def coerce(cls, value, **backend_options):
        """Upgrade *value* to a policy.

        ``None`` means the default policy, a string is a bare renderer
        name, and an existing policy passes through.  Explicit
        *backend_options* merge over (and win against) the policy's own.
        """
        if value is None:
            policy = cls()
        elif isinstance(value, cls):
            policy = value
        elif isinstance(value, str):
            policy = cls(renderer=value)
        else:
            raise TypeError(
                "renderer must be a renderer name or a RendererPolicy,"
                " not %r" % (value,))
        if backend_options:
            merged = dict(policy.backend_options)
            merged.update(backend_options)
            policy = replace(policy, backend_options=merged)
        return policy

    def options(self):
        """The backend factory options as a plain dict."""
        return dict(self.backend_options)

    def resolve_flags(self, base=None):
        """*base* (or the default :class:`OptFlags`) with this policy's
        ``disable_passes`` applied; unknown names raise ValueError."""
        flags = base if base is not None else OptFlags()
        for name in self.disable_passes:
            flags = flags.disable_pass(name)
        return flags

    def but(self, **changes):
        """Return a copy with *changes* applied."""
        return replace(self, **changes)
