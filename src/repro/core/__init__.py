"""The Flick compiler core: pipeline driver and optimization options."""

from repro.core.options import OptFlags
from repro.core.loader import load_stub_module
from repro.core.compiler import Flick, CompileResult

__all__ = ["CompileResult", "Flick", "OptFlags", "load_stub_module"]
