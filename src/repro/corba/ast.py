"""Abstract syntax tree for the CORBA IDL front end.

The AST mirrors the source structure (modules, interfaces, declarators with
array dimensions, unevaluated constant expressions).  Lowering to AOI —
scope resolution, constant folding, declarator expansion — happens in
:mod:`repro.corba.to_aoi`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.idl.source import SourceLocation


# ----------------------------------------------------------------------
# Type expressions
# ----------------------------------------------------------------------


class AstType:
    """Base class for type expressions."""


@dataclass(frozen=True)
class AstPrimitive(AstType):
    """A builtin type: one of the KIND_* names below."""

    kind: str

    KINDS = (
        "void", "boolean", "char", "octet",
        "short", "long", "long long",
        "unsigned short", "unsigned long", "unsigned long long",
        "float", "double",
    )


@dataclass(frozen=True)
class AstString(AstType):
    """``string`` or ``string<bound>``; bound is an unevaluated expr."""

    bound: Optional["AstExpr"] = None


@dataclass(frozen=True)
class AstSequence(AstType):
    """``sequence<T>`` or ``sequence<T, bound>``."""

    element: AstType
    bound: Optional["AstExpr"] = None


@dataclass(frozen=True)
class AstScopedName(AstType):
    """A possibly-qualified name such as ``::Finance::Account``."""

    parts: Tuple[str, ...]
    absolute: bool = False

    def __str__(self):
        text = "::".join(self.parts)
        return "::" + text if self.absolute else text


# ----------------------------------------------------------------------
# Constant expressions (unevaluated)
# ----------------------------------------------------------------------


class AstExpr:
    """Base class for constant expressions."""


@dataclass(frozen=True)
class AstLiteral(AstExpr):
    """An integer, float, char, string, or boolean literal."""

    value: object


@dataclass(frozen=True)
class AstConstRef(AstExpr):
    """A reference to a declared constant or enum member."""

    name: AstScopedName


@dataclass(frozen=True)
class AstUnary(AstExpr):
    operator: str  # "+", "-", "~"
    operand: AstExpr


@dataclass(frozen=True)
class AstBinary(AstExpr):
    operator: str  # | ^ & << >> + - * / %
    left: AstExpr
    right: AstExpr


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AstDeclarator:
    """A declared name with optional fixed-array dimensions."""

    name: str
    dimensions: Tuple[AstExpr, ...] = ()


@dataclass(frozen=True)
class AstMember:
    """A struct/exception member: one type, one or more declarators."""

    type: AstType
    declarators: Tuple[AstDeclarator, ...]


@dataclass(frozen=True)
class AstTypedef:
    type: AstType
    declarators: Tuple[AstDeclarator, ...]
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class AstStruct:
    name: str
    members: Tuple[AstMember, ...]
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class AstUnionCase:
    """``case`` labels (``None`` label = ``default``) plus the arm."""

    labels: Tuple[Optional[AstExpr], ...]
    type: AstType
    declarator: AstDeclarator


@dataclass(frozen=True)
class AstUnion:
    name: str
    discriminator: AstType
    cases: Tuple[AstUnionCase, ...]
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class AstEnum:
    name: str
    members: Tuple[str, ...]
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class AstConst:
    type: AstType
    name: str
    value: AstExpr
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class AstException:
    name: str
    members: Tuple[AstMember, ...]
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class AstParameter:
    direction: str  # "in" | "out" | "inout"
    type: AstType
    name: str


@dataclass(frozen=True)
class AstOperation:
    name: str
    return_type: AstType
    parameters: Tuple[AstParameter, ...]
    raises: Tuple[AstScopedName, ...] = ()
    oneway: bool = False
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class AstAttribute:
    type: AstType
    names: Tuple[str, ...]
    readonly: bool = False
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class AstInterface:
    name: str
    parents: Tuple[AstScopedName, ...]
    body: Tuple[object, ...]  # operations, attributes, nested type decls
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class AstModule:
    name: str
    body: Tuple[object, ...]
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class AstSpecification:
    """A whole IDL file: the top-level definition list."""

    definitions: Tuple[object, ...]
