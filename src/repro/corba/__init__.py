"""The CORBA IDL front end.

Parses (a substantial subset of) CORBA 2.0 IDL — modules, interfaces with
inheritance, operations with ``in``/``out``/``inout`` parameters and
``raises`` clauses, attributes, structs, discriminated unions, enums,
typedefs, sequences, bounded strings, fixed arrays, constants, and
exceptions — and lowers the result to AOI.
"""

from repro.corba.parser import parse_corba_idl
from repro.corba.to_aoi import corba_to_aoi


def compile_corba_idl(text, name="<corba-idl>"):
    """Parse CORBA IDL *text* and return a validated :class:`AoiRoot`.

    .. deprecated::
        Use :func:`repro.api.parse` (front end only) or
        :func:`repro.api.compile` (full pipeline) instead.
    """
    import warnings

    warnings.warn(
        "compile_corba_idl is deprecated; use repro.api.parse(text, "
        "'corba') or repro.api.compile(text, 'corba')",
        DeprecationWarning, stacklevel=2,
    )
    from repro import api

    return api.parse(text, "corba", name=name)


__all__ = ["parse_corba_idl", "corba_to_aoi", "compile_corba_idl"]
