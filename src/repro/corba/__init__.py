"""The CORBA IDL front end.

Parses (a substantial subset of) CORBA 2.0 IDL — modules, interfaces with
inheritance, operations with ``in``/``out``/``inout`` parameters and
``raises`` clauses, attributes, structs, discriminated unions, enums,
typedefs, sequences, bounded strings, fixed arrays, constants, and
exceptions — and lowers the result to AOI.
"""

import re

from repro import frontends
from repro.corba.parser import parse_corba_idl
from repro.corba.to_aoi import corba_to_aoi


def _lower(specification, name):
    from repro.aoi import validate

    return validate(corba_to_aoi(specification, name=name))


frontends.register(frontends.FrontEnd(
    name="corba",
    description="CORBA 2.0 IDL (PLDI'97 section 2; GIOP/IIOP native)",
    suffixes=(".idl",),
    patterns=(
        ("interface/module declaration",
         re.compile(r"\b(?:interface|module)\s+\w+")),
    ),
    parse=parse_corba_idl,
    lower=_lower,
    priority=30,
    presentation="corba-c",
    sample="interface Probe { long poke(in long x); };\n",
))

compile_corba_idl = frontends.make_deprecated_shim(
    "corba", "compile_corba_idl")

__all__ = ["parse_corba_idl", "corba_to_aoi", "compile_corba_idl"]
