"""Recursive-descent parser for CORBA IDL.

Covers the subset of CORBA 2.0 IDL that the paper's workloads and AOI need:
modules, interfaces (with inheritance, operations, attributes, and nested
type declarations), structs, unions, enums, typedefs, constants, exceptions,
sequences, bounded strings, and fixed arrays.  Constant expressions follow
the CORBA grammar's precedence: ``|`` < ``^`` < ``&`` < shifts < additive <
multiplicative < unary.
"""

from __future__ import annotations

from repro.errors import IdlSyntaxError
from repro.idl.lexer import Lexer, LexerSpec, TokenKind
from repro.idl.source import SourceFile
from repro.corba import ast

CORBA_KEYWORDS = frozenset(
    """
    any attribute boolean case char const context default double enum
    exception FALSE fixed float in inout interface long module Object octet
    oneway out raises readonly sequence short string struct switch TRUE
    typedef union unsigned void wchar wstring
    """.split()
)

_SPEC = LexerSpec(keywords=CORBA_KEYWORDS, allow_hash_comments=True)


def parse_corba_idl(text, name="<corba-idl>"):
    """Parse *text* and return an :class:`ast.AstSpecification`."""
    return _Parser(text, name).parse_specification()


class _Parser:
    def __init__(self, text, name):
        self.lexer = Lexer(SourceFile(text, name), _SPEC)

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def parse_specification(self):
        definitions = []
        while not self.lexer.at_end():
            definitions.append(self.parse_definition())
        return ast.AstSpecification(tuple(definitions))

    def parse_definition(self):
        token = self.lexer.peek()
        if token.is_keyword("module"):
            return self.parse_module()
        if token.is_keyword("interface"):
            return self.parse_interface()
        declaration = self.parse_declaration()
        if declaration is None:
            raise IdlSyntaxError(
                "expected a definition, found %s" % token, token.location
            )
        return declaration

    def parse_declaration(self):
        """Parse a type/const/exception declaration, or None if not one."""
        token = self.lexer.peek()
        if token.is_keyword("typedef"):
            return self.parse_typedef()
        if token.is_keyword("struct"):
            declaration = self.parse_struct()
            self.lexer.expect_punct(";")
            return declaration
        if token.is_keyword("union"):
            declaration = self.parse_union()
            self.lexer.expect_punct(";")
            return declaration
        if token.is_keyword("enum"):
            declaration = self.parse_enum()
            self.lexer.expect_punct(";")
            return declaration
        if token.is_keyword("const"):
            return self.parse_const()
        if token.is_keyword("exception"):
            return self.parse_exception()
        return None

    def parse_module(self):
        location = self.lexer.expect_keyword("module").location
        name = self.lexer.expect_ident().text
        self.lexer.expect_punct("{")
        body = []
        while not self.lexer.peek().is_punct("}"):
            body.append(self.parse_definition())
        self.lexer.expect_punct("}")
        self.lexer.expect_punct(";")
        return ast.AstModule(name, tuple(body), location)

    def parse_interface(self):
        location = self.lexer.expect_keyword("interface").location
        name = self.lexer.expect_ident().text
        parents = []
        if self.lexer.accept_punct(":"):
            parents.append(self.parse_scoped_name())
            while self.lexer.accept_punct(","):
                parents.append(self.parse_scoped_name())
        self.lexer.expect_punct("{")
        body = []
        while not self.lexer.peek().is_punct("}"):
            body.append(self.parse_export())
        self.lexer.expect_punct("}")
        self.lexer.expect_punct(";")
        return ast.AstInterface(name, tuple(parents), tuple(body), location)

    def parse_export(self):
        token = self.lexer.peek()
        declaration = self.parse_declaration()
        if declaration is not None:
            return declaration
        if token.is_keyword("readonly") or token.is_keyword("attribute"):
            return self.parse_attribute()
        return self.parse_operation()

    # ------------------------------------------------------------------
    # Interface members
    # ------------------------------------------------------------------

    def parse_attribute(self):
        location = self.lexer.peek().location
        readonly = self.lexer.accept_keyword("readonly")
        self.lexer.expect_keyword("attribute")
        attr_type = self.parse_type()
        names = [self.lexer.expect_ident().text]
        while self.lexer.accept_punct(","):
            names.append(self.lexer.expect_ident().text)
        self.lexer.expect_punct(";")
        return ast.AstAttribute(attr_type, tuple(names), readonly, location)

    def parse_operation(self):
        location = self.lexer.peek().location
        oneway = self.lexer.accept_keyword("oneway")
        return_type = self.parse_type()
        name = self.lexer.expect_ident().text
        self.lexer.expect_punct("(")
        parameters = []
        if not self.lexer.peek().is_punct(")"):
            parameters.append(self.parse_parameter())
            while self.lexer.accept_punct(","):
                parameters.append(self.parse_parameter())
        self.lexer.expect_punct(")")
        raises = []
        if self.lexer.accept_keyword("raises"):
            self.lexer.expect_punct("(")
            raises.append(self.parse_scoped_name())
            while self.lexer.accept_punct(","):
                raises.append(self.parse_scoped_name())
            self.lexer.expect_punct(")")
        if self.lexer.accept_keyword("context"):
            # Accept and discard a context clause for grammar completeness.
            self.lexer.expect_punct("(")
            while not self.lexer.accept_punct(")"):
                self.lexer.next()
        self.lexer.expect_punct(";")
        return ast.AstOperation(
            name, return_type, tuple(parameters), tuple(raises), oneway,
            location,
        )

    def parse_parameter(self):
        token = self.lexer.next()
        if token.text not in ("in", "out", "inout"):
            raise IdlSyntaxError(
                "expected parameter direction (in/out/inout), found %s"
                % token,
                token.location,
            )
        param_type = self.parse_type()
        name = self.lexer.expect_ident().text
        return ast.AstParameter(token.text, param_type, name)

    # ------------------------------------------------------------------
    # Type declarations
    # ------------------------------------------------------------------

    def parse_typedef(self):
        location = self.lexer.expect_keyword("typedef").location
        base = self.parse_type_or_constructed()
        declarators = self.parse_declarators()
        self.lexer.expect_punct(";")
        return ast.AstTypedef(base, declarators, location)

    def parse_type_or_constructed(self):
        """A typedef base may itself be a struct/union/enum declaration."""
        token = self.lexer.peek()
        if token.is_keyword("struct"):
            return self.parse_struct()
        if token.is_keyword("union"):
            return self.parse_union()
        if token.is_keyword("enum"):
            return self.parse_enum()
        return self.parse_type()

    def parse_struct(self):
        location = self.lexer.expect_keyword("struct").location
        name = self.lexer.expect_ident().text
        self.lexer.expect_punct("{")
        members = []
        while not self.lexer.peek().is_punct("}"):
            members.append(self.parse_member())
        self.lexer.expect_punct("}")
        return ast.AstStruct(name, tuple(members), location)

    def parse_member(self):
        member_type = self.parse_type_or_constructed()
        declarators = self.parse_declarators()
        self.lexer.expect_punct(";")
        return ast.AstMember(member_type, declarators)

    def parse_union(self):
        location = self.lexer.expect_keyword("union").location
        name = self.lexer.expect_ident().text
        self.lexer.expect_keyword("switch")
        self.lexer.expect_punct("(")
        discriminator = self.parse_type()
        self.lexer.expect_punct(")")
        self.lexer.expect_punct("{")
        cases = []
        while not self.lexer.peek().is_punct("}"):
            cases.append(self.parse_union_case())
        self.lexer.expect_punct("}")
        return ast.AstUnion(name, discriminator, tuple(cases), location)

    def parse_union_case(self):
        labels = []
        while True:
            token = self.lexer.peek()
            if token.is_keyword("case"):
                self.lexer.next()
                labels.append(self.parse_const_expr())
                self.lexer.expect_punct(":")
            elif token.is_keyword("default"):
                self.lexer.next()
                self.lexer.expect_punct(":")
                labels.append(None)
            else:
                break
        if not labels:
            token = self.lexer.peek()
            raise IdlSyntaxError(
                "expected 'case' or 'default', found %s" % token,
                token.location,
            )
        case_type = self.parse_type_or_constructed()
        declarator = self.parse_declarator()
        self.lexer.expect_punct(";")
        return ast.AstUnionCase(tuple(labels), case_type, declarator)

    def parse_enum(self):
        location = self.lexer.expect_keyword("enum").location
        name = self.lexer.expect_ident().text
        self.lexer.expect_punct("{")
        members = [self.lexer.expect_ident().text]
        while self.lexer.accept_punct(","):
            members.append(self.lexer.expect_ident().text)
        self.lexer.expect_punct("}")
        return ast.AstEnum(name, tuple(members), location)

    def parse_const(self):
        location = self.lexer.expect_keyword("const").location
        const_type = self.parse_type()
        name = self.lexer.expect_ident().text
        self.lexer.expect_punct("=")
        value = self.parse_const_expr()
        self.lexer.expect_punct(";")
        return ast.AstConst(const_type, name, value, location)

    def parse_exception(self):
        location = self.lexer.expect_keyword("exception").location
        name = self.lexer.expect_ident().text
        self.lexer.expect_punct("{")
        members = []
        while not self.lexer.peek().is_punct("}"):
            members.append(self.parse_member())
        self.lexer.expect_punct("}")
        self.lexer.expect_punct(";")
        return ast.AstException(name, tuple(members), location)

    def parse_declarators(self):
        declarators = [self.parse_declarator()]
        while self.lexer.accept_punct(","):
            declarators.append(self.parse_declarator())
        return tuple(declarators)

    def parse_declarator(self):
        name = self.lexer.expect_ident().text
        dimensions = []
        while self.lexer.accept_punct("["):
            dimensions.append(self.parse_const_expr())
            self.lexer.expect_punct("]")
        return ast.AstDeclarator(name, tuple(dimensions))

    # ------------------------------------------------------------------
    # Type expressions
    # ------------------------------------------------------------------

    def parse_type(self):
        token = self.lexer.peek()
        if token.kind is TokenKind.KEYWORD:
            if token.text in ("void", "boolean", "char", "octet", "float",
                              "double", "short"):
                self.lexer.next()
                return ast.AstPrimitive(token.text)
            if token.text == "long":
                self.lexer.next()
                if self.lexer.accept_keyword("long"):
                    return ast.AstPrimitive("long long")
                if self.lexer.accept_keyword("double"):
                    return ast.AstPrimitive("double")
                return ast.AstPrimitive("long")
            if token.text == "unsigned":
                self.lexer.next()
                if self.lexer.accept_keyword("short"):
                    return ast.AstPrimitive("unsigned short")
                self.lexer.expect_keyword("long")
                if self.lexer.accept_keyword("long"):
                    return ast.AstPrimitive("unsigned long long")
                return ast.AstPrimitive("unsigned long")
            if token.text == "string":
                self.lexer.next()
                bound = None
                if self.lexer.accept_punct("<"):
                    bound = self.parse_const_expr()
                    self.lexer.expect_punct(">")
                return ast.AstString(bound)
            if token.text == "sequence":
                self.lexer.next()
                self.lexer.expect_punct("<")
                element = self.parse_type()
                bound = None
                if self.lexer.accept_punct(","):
                    bound = self.parse_const_expr()
                self.lexer.expect_punct(">")
                return ast.AstSequence(element, bound)
            raise IdlSyntaxError(
                "unsupported type keyword %r" % token.text, token.location
            )
        return self.parse_scoped_name()

    def parse_scoped_name(self):
        absolute = self.lexer.accept_punct("::")
        parts = [self.lexer.expect_ident().text]
        while self.lexer.peek().is_punct("::"):
            self.lexer.next()
            parts.append(self.lexer.expect_ident().text)
        return ast.AstScopedName(tuple(parts), absolute)

    # ------------------------------------------------------------------
    # Constant expressions
    # ------------------------------------------------------------------

    def parse_const_expr(self):
        return self._parse_or()

    def _parse_binary(self, operators, operand_parser):
        left = operand_parser()
        while True:
            token = self.lexer.peek()
            if token.kind is TokenKind.PUNCT and token.text in operators:
                self.lexer.next()
                right = operand_parser()
                left = ast.AstBinary(token.text, left, right)
            else:
                return left

    def _parse_or(self):
        return self._parse_binary(("|",), self._parse_xor)

    def _parse_xor(self):
        return self._parse_binary(("^",), self._parse_and)

    def _parse_and(self):
        return self._parse_binary(("&",), self._parse_shift)

    def _parse_shift(self):
        return self._parse_binary(("<<", ">>"), self._parse_add)

    def _parse_add(self):
        return self._parse_binary(("+", "-"), self._parse_mult)

    def _parse_mult(self):
        return self._parse_binary(("*", "/", "%"), self._parse_unary)

    def _parse_unary(self):
        token = self.lexer.peek()
        if token.kind is TokenKind.PUNCT and token.text in ("+", "-", "~"):
            self.lexer.next()
            return ast.AstUnary(token.text, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self):
        token = self.lexer.peek()
        if token.kind is TokenKind.INT or token.kind is TokenKind.FLOAT:
            self.lexer.next()
            return ast.AstLiteral(token.value)
        if token.kind is TokenKind.CHAR or token.kind is TokenKind.STRING:
            self.lexer.next()
            return ast.AstLiteral(token.value)
        if token.is_keyword("TRUE"):
            self.lexer.next()
            return ast.AstLiteral(True)
        if token.is_keyword("FALSE"):
            self.lexer.next()
            return ast.AstLiteral(False)
        if token.is_punct("("):
            self.lexer.next()
            inner = self.parse_const_expr()
            self.lexer.expect_punct(")")
            return inner
        if token.kind is TokenKind.IDENT or token.is_punct("::"):
            return ast.AstConstRef(self.parse_scoped_name())
        raise IdlSyntaxError(
            "expected constant expression, found %s" % token, token.location
        )
