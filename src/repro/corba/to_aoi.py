"""Lower the CORBA AST to AOI.

This stage performs the semantic work the parser defers: scope tracking and
name resolution (modules and interfaces open scopes; unqualified names are
searched innermost-outward), constant-expression evaluation, declarator
expansion (``long m[4][5]`` becomes nested :class:`AoiArray` nodes), and the
mapping of CORBA primitive types onto AOI value-range types.
"""

from __future__ import annotations

from repro.errors import IdlSemanticError
from repro.aoi import (
    AoiArray,
    AoiAttribute,
    AoiBoolean,
    AoiChar,
    AoiConstant,
    AoiEnum,
    AoiException,
    AoiFloat,
    AoiInteger,
    AoiInterface,
    AoiNamedRef,
    AoiOctet,
    AoiOperation,
    AoiParameter,
    AoiRoot,
    AoiSequence,
    AoiString,
    AoiStruct,
    AoiStructField,
    AoiUnion,
    AoiUnionCase,
    AoiVoid,
    Direction,
)
from repro.corba import ast

_PRIMITIVES = {
    "void": AoiVoid(),
    "boolean": AoiBoolean(),
    "char": AoiChar(),
    "octet": AoiOctet(),
    "short": AoiInteger(16, True),
    "long": AoiInteger(32, True),
    "long long": AoiInteger(64, True),
    "unsigned short": AoiInteger(16, False),
    "unsigned long": AoiInteger(32, False),
    "unsigned long long": AoiInteger(64, False),
    "float": AoiFloat(32),
    "double": AoiFloat(64),
}

_DIRECTIONS = {
    "in": Direction.IN,
    "out": Direction.OUT,
    "inout": Direction.INOUT,
}


def corba_to_aoi(specification, name="<corba-idl>"):
    """Lower an :class:`ast.AstSpecification` to an :class:`AoiRoot`."""
    return _Lowering(name).lower(specification)


class _Lowering:
    def __init__(self, name):
        self.root = AoiRoot(name)
        self.scope = []  # e.g. ["Finance", "Bank"]
        # All defined names (types, interfaces, exceptions, constants) for
        # scoped-name resolution, fully qualified.
        self.defined = set()
        self.constants = {}  # fq name -> python value

    # ------------------------------------------------------------------
    # Scoping
    # ------------------------------------------------------------------

    def qualify(self, name):
        return "::".join(self.scope + [name])

    def resolve_name(self, scoped_name):
        """Resolve *scoped_name* to a fully qualified name or raise."""
        suffix = "::".join(scoped_name.parts)
        if scoped_name.absolute:
            if suffix in self.defined:
                return suffix
            raise IdlSemanticError("undefined name ::%s" % suffix)
        for depth in range(len(self.scope), -1, -1):
            candidate = "::".join(self.scope[:depth] + list(scoped_name.parts))
            if candidate in self.defined:
                return candidate
        raise IdlSemanticError("undefined name %s" % suffix)

    def define(self, name):
        full = self.qualify(name)
        if full in self.defined:
            raise IdlSemanticError("redefinition of %r" % full)
        self.defined.add(full)
        return full

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def lower(self, specification):
        for definition in specification.definitions:
            self.lower_definition(definition)
        return self.root

    def lower_definition(self, definition):
        if isinstance(definition, ast.AstModule):
            self.define(definition.name)
            self.scope.append(definition.name)
            try:
                for inner in definition.body:
                    self.lower_definition(inner)
            finally:
                self.scope.pop()
        elif isinstance(definition, ast.AstInterface):
            self.lower_interface(definition)
        elif isinstance(definition, ast.AstTypedef):
            self.lower_typedef(definition)
        elif isinstance(definition, ast.AstStruct):
            self.lower_struct(definition)
        elif isinstance(definition, ast.AstUnion):
            self.lower_union(definition)
        elif isinstance(definition, ast.AstEnum):
            self.lower_enum(definition)
        elif isinstance(definition, ast.AstConst):
            self.lower_const(definition)
        elif isinstance(definition, ast.AstException):
            self.lower_exception(definition)
        else:
            raise IdlSemanticError(
                "unexpected definition %r" % type(definition).__name__
            )

    # ------------------------------------------------------------------
    # Type declarations
    # ------------------------------------------------------------------

    def lower_typedef(self, typedef):
        base = self.lower_type(typedef.type)
        for declarator in typedef.declarators:
            full = self.define(declarator.name)
            self.root.define_type(full, self.apply_dimensions(base, declarator))

    def apply_dimensions(self, base, declarator):
        """Wrap *base* in AoiArray nodes for the declarator's dimensions."""
        result = base
        for dimension in reversed(declarator.dimensions):
            length = self.eval_const(dimension)
            if not isinstance(length, int):
                raise IdlSemanticError(
                    "array dimension of %r is not an integer"
                    % declarator.name
                )
            result = AoiArray(result, length)
        return result

    def lower_struct(self, struct):
        full = self.define(struct.name)
        fields = self.lower_members(struct.members, context=full)
        self.root.define_type(full, AoiStruct(full, fields))
        return AoiNamedRef(full)

    def lower_members(self, members, context):
        fields = []
        for member in members:
            base = self.lower_type(member.type)
            for declarator in member.declarators:
                fields.append(
                    AoiStructField(
                        declarator.name,
                        self.apply_dimensions(base, declarator),
                    )
                )
        return tuple(fields)

    def lower_union(self, union):
        full = self.define(union.name)
        discriminator = self.lower_type(union.discriminator)
        resolved = self.root.resolve(discriminator)
        cases = []
        for case in union.cases:
            labels = []
            for label in case.labels:
                if label is None:
                    continue  # default
                labels.append(self.eval_label(label, resolved))
            case_type = self.apply_dimensions(
                self.lower_type(case.type), case.declarator
            )
            cases.append(
                AoiUnionCase(tuple(labels), case.declarator.name, case_type)
            )
        self.root.define_type(
            full, AoiUnion(full, discriminator, tuple(cases))
        )
        return AoiNamedRef(full)

    def eval_label(self, expr, discriminator):
        value = self.eval_const(expr)
        if isinstance(discriminator, AoiEnum) and isinstance(value, int):
            return value
        return value

    def lower_enum(self, enum_decl):
        full = self.define(enum_decl.name)
        members = []
        for index, member in enumerate(enum_decl.members):
            member_full = self.define(member)
            self.constants[member_full] = index
            members.append((member, index))
        self.root.define_type(full, AoiEnum(full, tuple(members)))
        return AoiNamedRef(full)

    def lower_const(self, const):
        full = self.define(const.name)
        value = self.eval_const(const.value)
        self.constants[full] = value
        self.root.define_constant(
            AoiConstant(full, self.lower_type(const.type), value)
        )

    def lower_exception(self, exception):
        full = self.define(exception.name)
        fields = self.lower_members(exception.members, context=full)
        self.root.define_exception(AoiException(full, fields))

    # ------------------------------------------------------------------
    # Interfaces
    # ------------------------------------------------------------------

    def lower_interface(self, interface):
        full = self.define(interface.name)
        parents = tuple(
            self.resolve_name(parent) for parent in interface.parents
        )
        self.scope.append(interface.name)
        operations = []
        attributes = []
        try:
            for member in interface.body:
                if isinstance(member, ast.AstOperation):
                    operations.append(self.lower_operation(member))
                elif isinstance(member, ast.AstAttribute):
                    attributes.extend(self.lower_attribute(member))
                else:
                    self.lower_definition(member)
        finally:
            self.scope.pop()
        repository_id = "IDL:%s:1.0" % full.replace("::", "/")
        self.root.add_interface(
            AoiInterface(
                full,
                tuple(operations),
                tuple(attributes),
                parents,
                code=repository_id,
            )
        )

    def lower_operation(self, operation):
        parameters = tuple(
            AoiParameter(
                parameter.name,
                self.lower_type(parameter.type),
                _DIRECTIONS[parameter.direction],
            )
            for parameter in operation.parameters
        )
        raises = tuple(
            self.resolve_name(exc_name) for exc_name in operation.raises
        )
        return AoiOperation(
            operation.name,
            parameters,
            self.lower_type(operation.return_type),
            request_code=operation.name,
            oneway=operation.oneway,
            raises=raises,
        )

    def lower_attribute(self, attribute):
        attr_type = self.lower_type(attribute.type)
        return [
            AoiAttribute(name, attr_type, attribute.readonly)
            for name in attribute.names
        ]

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------

    def lower_type(self, ast_type):
        if isinstance(ast_type, ast.AstPrimitive):
            return _PRIMITIVES[ast_type.kind]
        if isinstance(ast_type, ast.AstString):
            bound = None
            if ast_type.bound is not None:
                bound = self.eval_const(ast_type.bound)
            return AoiString(bound)
        if isinstance(ast_type, ast.AstSequence):
            bound = None
            if ast_type.bound is not None:
                bound = self.eval_const(ast_type.bound)
            return AoiSequence(self.lower_type(ast_type.element), bound)
        if isinstance(ast_type, ast.AstScopedName):
            return AoiNamedRef(self.resolve_name(ast_type))
        if isinstance(ast_type, ast.AstStruct):
            return self.lower_struct(ast_type)
        if isinstance(ast_type, ast.AstUnion):
            return self.lower_union(ast_type)
        if isinstance(ast_type, ast.AstEnum):
            return self.lower_enum(ast_type)
        raise IdlSemanticError(
            "unsupported type %r" % type(ast_type).__name__
        )

    # ------------------------------------------------------------------
    # Constant expressions
    # ------------------------------------------------------------------

    def eval_const(self, expr):
        if isinstance(expr, ast.AstLiteral):
            return expr.value
        if isinstance(expr, ast.AstConstRef):
            full = self.resolve_name(expr.name)
            if full not in self.constants:
                raise IdlSemanticError("%r is not a constant" % full)
            return self.constants[full]
        if isinstance(expr, ast.AstUnary):
            value = self.eval_const(expr.operand)
            if expr.operator == "-":
                return -value
            if expr.operator == "+":
                return +value
            if expr.operator == "~":
                return ~value
        if isinstance(expr, ast.AstBinary):
            left = self.eval_const(expr.left)
            right = self.eval_const(expr.right)
            operator = expr.operator
            if operator == "|":
                return left | right
            if operator == "^":
                return left ^ right
            if operator == "&":
                return left & right
            if operator == "<<":
                return left << right
            if operator == ">>":
                return left >> right
            if operator == "+":
                return left + right
            if operator == "-":
                return left - right
            if operator == "*":
                return left * right
            if operator == "/":
                if isinstance(left, int) and isinstance(right, int):
                    return left // right
                return left / right
            if operator == "%":
                return left % right
        raise IdlSemanticError(
            "cannot evaluate constant expression %r" % (expr,)
        )
