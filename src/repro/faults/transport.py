"""Transport wrappers that subject traffic to a :class:`FaultPlan`.

:class:`FaultyTransport` wraps any blocking
:class:`~repro.runtime.transport.Transport` (socket, loopback, or
:class:`~repro.runtime.simnet.SimulatedNetworkTransport`);
:class:`FaultyAioTransport` wraps any async pool-like transport exposing
``acall``/``asend``/``aclose`` (e.g.
:class:`~repro.runtime.aio.client.ConnectionPool`).

Faults are applied to *requests* before they reach the inner transport;
an injected drop or reset surfaces as a :class:`TransportError`, exactly
what a lost or aborted connection produces, so client retry policy and
circuit breakers exercise their real paths.  Replies can optionally be
perturbed too (``faults_on_replies=True``), which exercises the client's
decode hardening.
"""

from __future__ import annotations

import asyncio
import time

from repro.errors import TransportError
from repro.runtime.transport import Transport


class FaultyTransport(Transport):
    """A blocking transport applying *plan* to each outgoing request."""

    def __init__(self, inner, plan, *, faults_on_replies=False,
                 sleep=time.sleep):
        self._inner = inner
        self.injector = plan.injector()
        self._faults_on_replies = faults_on_replies
        self._sleep = sleep

    def call(self, request):
        outcome = self.injector.on_message(bytes(request))
        if outcome.reset:
            raise TransportError("injected fault: connection reset")
        if not outcome.deliveries:
            raise TransportError("injected fault: request dropped")
        reply = None
        for delivery in outcome.deliveries:
            if delivery.delay_s:
                self._sleep(delivery.delay_s)
            reply = self._inner.call(delivery.payload)
        if self._faults_on_replies and reply is not None:
            reply = self.injector.perturb(reply)
        return reply

    def send(self, request):
        outcome = self.injector.on_message(bytes(request))
        if outcome.reset:
            raise TransportError("injected fault: connection reset")
        for delivery in outcome.deliveries:
            if delivery.delay_s:
                self._sleep(delivery.delay_s)
            self._inner.send(delivery.payload)

    def close(self):
        self._inner.close()


class FaultyAioTransport:
    """An async pool-like transport applying *plan* to each request.

    Duck-compatible with :class:`~repro.runtime.aio.client
    .ConnectionPool`: ``acall(payload, options=None, parent=None)``,
    ``asend(payload, options=None)``, ``aclose()``.
    """

    def __init__(self, inner, plan, *, faults_on_replies=False):
        self._inner = inner
        self.injector = plan.injector()
        self._faults_on_replies = faults_on_replies

    async def acall(self, payload, options=None, parent=None):
        outcome = self.injector.on_message(bytes(payload))
        if outcome.reset:
            raise TransportError("injected fault: connection reset")
        if not outcome.deliveries:
            raise TransportError("injected fault: request dropped")
        reply = None
        for delivery in outcome.deliveries:
            if delivery.delay_s:
                await asyncio.sleep(delivery.delay_s)
            reply = await self._inner.acall(
                delivery.payload, options, parent=parent
            )
        if self._faults_on_replies and reply is not None:
            reply = self.injector.perturb(reply)
        return reply

    async def asend(self, payload, options=None):
        outcome = self.injector.on_message(bytes(payload))
        if outcome.reset:
            raise TransportError("injected fault: connection reset")
        for delivery in outcome.deliveries:
            if delivery.delay_s:
                await asyncio.sleep(delivery.delay_s)
            await self._inner.asend(delivery.payload, options)

    async def aclose(self):
        await self._inner.aclose()
