"""Fault plans: seeded, composable wire-fault specifications.

A :class:`FaultPlan` is a value object — probabilities only, no state —
so it can live in a JSON file next to a test, be passed to ``flick serve
--fault-plan``, and be compared in assertions.  A :class:`FaultInjector`
executes a plan over a message stream with its own seeded RNG, making
every fault sequence reproducible from ``(plan, message order)`` alone.

Faults compose per message in a fixed order: reset > drop > truncate >
corrupt > delay > duplicate > reorder.  Each is rolled independently, so
``truncate=0.01, corrupt=0.01`` yields both on ~0.01% of messages.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field, fields

from repro.errors import FlickError

_PROBABILITY_FIELDS = (
    "drop", "delay", "duplicate", "reorder", "truncate", "corrupt",
    "reset",
)


@dataclass(frozen=True)
class FaultPlan:
    """Per-message fault probabilities plus their shape parameters.

    Attributes:
        seed: RNG seed; the same plan replays the same fault sequence.
        drop: probability a message silently disappears.
        delay: probability a message is delayed by *delay_s* seconds.
        duplicate: probability a message is delivered twice.
        reorder: probability a message is held and delivered after its
            successor (swapping adjacent messages).
        truncate: probability a message loses its tail (a uniform cut
            point leaves at least one byte, never the whole message).
        corrupt: probability *corrupt_bits* random bits flip.
        reset: probability the connection is torn down instead of
            delivering the message.
        delay_s: the injected delay, seconds.
        corrupt_bits: bits flipped per corrupted message.
    """

    seed: int = 0
    drop: float = 0.0
    delay: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    truncate: float = 0.0
    corrupt: float = 0.0
    reset: float = 0.0
    delay_s: float = 0.001
    corrupt_bits: int = 1

    def __post_init__(self):
        for name in _PROBABILITY_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FlickError(
                    "fault probability %s=%r is not in [0, 1]"
                    % (name, value)
                )
        if self.corrupt_bits < 1:
            raise FlickError("corrupt_bits must be at least 1")
        if self.delay_s < 0:
            raise FlickError("delay_s must be non-negative")

    # -- (de)serialization ------------------------------------------------

    def to_dict(self):
        return asdict(self)

    @classmethod
    def from_dict(cls, data):
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise FlickError(
                "unknown fault-plan keys: %s"
                % ", ".join(sorted(unknown))
            )
        return cls(**data)

    @classmethod
    def load(cls, path):
        """Load a plan from a JSON file (the --fault-plan format)."""
        with open(path, "r", encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except ValueError as error:
                raise FlickError(
                    "%s is not valid fault-plan JSON: %s" % (path, error)
                ) from error
        if not isinstance(data, dict):
            raise FlickError("%s: fault plan must be a JSON object" % path)
        return cls.from_dict(data)

    def save(self, path):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def injector(self):
        """A fresh stateful executor for this plan."""
        return FaultInjector(self)


@dataclass(frozen=True)
class Delivery:
    """One (possibly perturbed) message to deliver, after *delay_s*."""

    payload: bytes
    delay_s: float = 0.0


@dataclass(frozen=True)
class Outcome:
    """What the injector decided for one inbound message.

    ``deliveries`` is empty when the message was dropped or held for
    reordering; ``reset`` asks the caller to tear the connection down.
    """

    deliveries: tuple = ()
    reset: bool = False


class FaultInjector:
    """Stateful, seeded executor of a :class:`FaultPlan`.

    Feed each inbound message to :meth:`on_message` and act on the
    returned :class:`Outcome`.  The injector counts every fault it
    injects in :attr:`counts` so tests and benchmarks can assert on the
    realized fault mix, not just the probabilities.
    """

    def __init__(self, plan):
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._held = None  # Delivery awaiting its reorder partner
        self.counts = {
            name: 0
            for name in _PROBABILITY_FIELDS + ("messages", "delivered")
        }

    def _roll(self, probability):
        return probability > 0.0 and self._rng.random() < probability

    def perturb(self, payload):
        """Apply the payload-shape faults (truncate, corrupt) only.

        Returns the possibly-modified bytes; used for reply streams
        where drop/reorder semantics belong to the request side.
        """
        plan = self.plan
        data = bytes(payload)
        if self._roll(plan.truncate) and len(data) > 1:
            self.counts["truncate"] += 1
            data = data[:self._rng.randrange(1, len(data))]
        if self._roll(plan.corrupt) and data:
            self.counts["corrupt"] += 1
            mutable = bytearray(data)
            for _ in range(plan.corrupt_bits):
                index = self._rng.randrange(len(mutable))
                mutable[index] ^= 1 << self._rng.randrange(8)
            data = bytes(mutable)
        return data

    def on_message(self, payload):
        """Decide the fate of one inbound message."""
        plan = self.plan
        self.counts["messages"] += 1
        if self._roll(plan.reset):
            self.counts["reset"] += 1
            return Outcome(reset=True)
        if self._roll(plan.drop):
            self.counts["drop"] += 1
            return Outcome()
        data = self.perturb(payload)
        delay = 0.0
        if self._roll(plan.delay):
            self.counts["delay"] += 1
            delay = plan.delay_s
        deliveries = [Delivery(data, delay)]
        if self._roll(plan.duplicate):
            self.counts["duplicate"] += 1
            deliveries.append(Delivery(data, delay))
        if self._held is not None:
            # Release the held message *after* the current one: the two
            # adjacent messages arrive swapped.
            deliveries.append(self._held)
            self._held = None
        elif len(deliveries) == 1 and self._roll(plan.reorder):
            self.counts["reorder"] += 1
            self._held = deliveries[0]
            return Outcome()
        self.counts["delivered"] += len(deliveries)
        return Outcome(deliveries=tuple(deliveries))

    def drain(self):
        """Deliveries still held for reordering (call at stream end)."""
        if self._held is None:
            return ()
        held, self._held = self._held, None
        self.counts["delivered"] += 1
        return (held,)
