"""Deterministic fault injection for transports and servers.

This package turns "the network is hostile" into a first-class, seeded,
reproducible test fixture:

* :class:`FaultPlan` — a frozen, JSON-round-trippable spec of fault
  probabilities (drop, delay, duplicate, reorder, truncate, bit-flip
  corruption, connection reset).
* :class:`FaultInjector` — the stateful, seeded executor of a plan;
  every run with the same seed perturbs the same messages the same way.
* :class:`FaultyTransport` / :class:`FaultyAioTransport` — wrappers
  applying a plan to any blocking :class:`~repro.runtime.transport
  .Transport` or any async pool-like transport (``acall``/``asend``).

Servers accept a plan directly (``fault_plan=`` on
:class:`~repro.runtime.socket_transport.TcpServer` and
:class:`~repro.runtime.aio.server.AioTcpServer`, or ``flick serve
--fault-plan FILE``), perturbing inbound requests before dispatch.
"""

from repro.faults.plan import Delivery, FaultInjector, FaultPlan, Outcome
from repro.faults.transport import FaultyAioTransport, FaultyTransport

__all__ = [
    "Delivery",
    "FaultInjector",
    "FaultPlan",
    "FaultyAioTransport",
    "FaultyTransport",
    "Outcome",
]
