"""Simulated Mach 3 IPC between tasks on one host.

The paper's Figure 7 measures MIG and Flick stubs exchanging Mach messages
between two tasks on a 100 MHz Pentium.  Mach IPC cost is dominated by a
fixed per-message kernel path (port rights, header validation, scheduling
hand-off) plus a per-byte copy through the kernel.  This model charges both
on a virtual clock; the calibration constants approximate the paper's
platform (a null Mach RPC was on the order of 100 µs; kernel copy
bandwidth ~35 MB/s per its lmbench figures).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TransportError
from repro.encoding.buffer import MarshalBuffer
from repro.runtime.transport import Transport


@dataclass(frozen=True)
class MachIpcModel:
    """Virtual-clock cost model for one Mach message.

    Small messages are physically copied through the kernel; messages
    above :attr:`vm_copy_threshold` move by virtual copy (Mach's
    copy-on-write page remapping), costing :attr:`per_page_s` per 4 KB
    page instead of a per-byte copy.  The threshold is what produces the
    paper's Figure 7 crossover: beyond it, stub marshal CPU — not kernel
    copying — dominates the round trip.
    """

    name: str
    per_message_s: float
    copy_bandwidth_bytes_per_s: float
    vm_copy_threshold: int = 8192
    per_page_s: float = 5e-6
    page_size: int = 4096

    def transfer_time(self, size_bytes):
        if size_bytes > self.vm_copy_threshold:
            pages = -(-size_bytes // self.page_size)
            return self.per_message_s + pages * self.per_page_s
        return (
            self.per_message_s
            + size_bytes / self.copy_bandwidth_bytes_per_s
        )


#: Calibrated to the paper's 100MHz Pentium running CMU Mach 3.
MACH_IPC = MachIpcModel(
    name="Mach 3 IPC",
    per_message_s=100e-6,
    copy_bandwidth_bytes_per_s=35e6,
)

#: MIG pairs its send with the receive in a single combined kernel trap
#: (mach_msg with SEND|RCV), one of the specializations the paper credits
#: for MIG's small-message advantage.  The Figure 7 harness uses this
#: model for MIG-generated stubs.
MACH_IPC_COMBINED = MachIpcModel(
    name="Mach 3 IPC (combined send/receive trap)",
    per_message_s=50e-6,
    copy_bandwidth_bytes_per_s=35e6,
)


class MachIpcTransport(Transport):
    """Dispatch behind a simulated Mach IPC hop (one per direction)."""

    def __init__(self, dispatch, impl, model=MACH_IPC):
        self._dispatch = dispatch
        self._impl = impl
        self.model = model
        self._reply_buf = MarshalBuffer()
        self.simulated_seconds = 0.0
        self.bytes_carried = 0

    def reset_clock(self):
        self.simulated_seconds = 0.0
        self.bytes_carried = 0

    def call(self, request):
        self.simulated_seconds += self.model.transfer_time(len(request))
        self.bytes_carried += len(request)
        buffer = self._reply_buf
        buffer.reset()
        has_reply = self._dispatch(request, self._impl, buffer)
        if not has_reply:
            raise TransportError(
                "two-way call reached a oneway-only dispatch path"
            )
        reply = buffer.getvalue()
        self.simulated_seconds += self.model.transfer_time(len(reply))
        self.bytes_carried += len(reply)
        return reply

    def send(self, request):
        self.simulated_seconds += self.model.transfer_time(len(request))
        self.bytes_carried += len(request)
        buffer = self._reply_buf
        buffer.reset()
        self._dispatch(request, self._impl, buffer)
