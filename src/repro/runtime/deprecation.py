"""Deprecated-keyword plumbing shared by the runtime constructors.

The runtime grew in stages and its constructors drifted: the blocking
client transports called their read deadline ``timeout`` while the
asyncio layer said ``deadline``/``connect_timeout``, and the connection
pool said ``size`` where its sync facade said ``pool_size``.  The
constructors now share one vocabulary (``deadline``, ``connect_timeout``,
``pool_size``, ``max_record_size``, ``stats``, ``fault_plan``,
``max_pending``); the old spellings keep working through
:func:`renamed_kwarg` but warn.
"""

from __future__ import annotations

import warnings


def renamed_kwarg(owner, old_name, old_value, new_name, new_value,
                  default=None):
    """Resolve a renamed keyword argument.

    *old_value* / *new_value* are the values actually passed (``None``
    meaning "not given").  Passing the old name warns with a
    :class:`DeprecationWarning`; passing both is an error.  Returns the
    effective value, falling back to *default*.
    """
    if old_value is None:
        return default if new_value is None else new_value
    if new_value is not None:
        raise TypeError(
            "%s() got both %r and its deprecated alias %r"
            % (owner, new_name, old_name)
        )
    warnings.warn(
        "%s(%s=...) is deprecated; use %s=..." % (owner, old_name, new_name),
        DeprecationWarning, stacklevel=3,
    )
    return old_value
