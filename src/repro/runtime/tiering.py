"""Profile-guided tiered execution: recompile hot ops at runtime.

``BENCH_renderer.json`` proves no single renderer wins everywhere — the
closures renderer beats rendered source on struct arrays but loses
~2.5x on string-heavy payloads.  Instead of asking the operator to
guess, every operation starts on the cheap-to-compile tier-0 renderer
and the :class:`TieringEngine` closes the loop at runtime:

* an always-on hotness counter (:class:`repro.obs.profile
  .HotnessCounter` — calls plus payload bytes, two integer adds per
  call) trips the promotion threshold;
* the engine picks the renderer the ``flick profile`` cost model
  scores best for the op's *observed* payload shape (falling back to a
  structural hint from the naive type IR when the sampled profiler is
  off) and recompiles just that op in the background via
  :meth:`repro.core.handle.CompiledInterface.recompile`;
* the new codecs are **shadow-verified byte-identical** on first use:
  the old codec keeps serving while the new one runs against the same
  arguments into a scratch buffer; one mismatch reverts the op and
  pins it (byte fidelity is never negotiable);
* after the swap, the hotness timing window measures the new tier; if
  it is slower than the tier-0 baseline by ``revert_ratio`` the engine
  reverts ("recompile was slower") with hysteresis on retries.

Tier lifecycle per operation::

                      hot (score >= threshold)
        tier-0 ───────────────────────────────► shadow
          ▲  ▲                                    │
          │  │ reverted_slow (retry after         │ bytes verified
          │  │ hysteresis; pin after              ▼
          │  └───────────────────────────────── tier-1
          │            bytes mismatch             │
          └────────────── pin ◄───────────────────┘

Everything is observable: ``flick_tier_current{op,worker}`` (0 = the
compile-time renderer, 1 = recompiled) and
``flick_tier_recompiles_total{op,outcome,worker}`` with outcomes
``promoted``, ``skipped_same``, ``reverted_bytes``, ``reverted_slow``,
and ``recompile_failed``.  ``flick serve --tiering auto`` turns the
engine on; ``--tiering FILE`` loads a :class:`TierPolicy` JSON.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass, replace

from repro.encoding.buffer import MarshalBuffer
from repro.errors import FlickError
from repro.obs import profile as _profile

__all__ = ["TierPolicy", "TieringEngine", "resolve_policy"]


@dataclass(frozen=True)
class TierPolicy:
    """The tiering engine's knobs (JSON-loadable for ``--tiering FILE``).

    Attributes:
        threshold: hotness score (calls + payload bytes) an op must
            accrue before the engine considers recompiling it.  The
            default is 4 MiB-ish of traffic — hot enough that the
            recompile pays for itself, cold ops never pay anything.
        hysteresis: after a performance revert, the op must grow its
            score by this multiple of the score at revert time before
            the engine retries — so a borderline op cannot flap.
        revert_ratio: revert tier-1 when its timed window is this many
            times slower per byte than the tier-0 baseline.
        min_timed_samples: timed calls a window needs before the
            regression guard trusts it (both for the baseline and the
            tier-1 window).
        interval_s: background poll interval.
        max_retries: performance reverts tolerated before the op is
            pinned to tier-0 for good.
    """

    threshold: float = 4 * 1024 * 1024
    hysteresis: float = 2.0
    revert_ratio: float = 1.15
    min_timed_samples: int = 8
    interval_s: float = 0.25
    max_retries: int = 2

    def but(self, **changes):
        return replace(self, **changes)

    def to_json(self):
        return asdict(self)

    @classmethod
    def from_json(cls, data):
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise FlickError(
                "unknown tier-policy fields: %s"
                % ", ".join(sorted(unknown)))
        return cls(**data)

    @classmethod
    def load(cls, path):
        with open(path) as handle:
            return cls.from_json(json.load(handle))


def resolve_policy(spec):
    """CLI ``--tiering`` value -> policy (or None when tiering is off).

    ``None``/``"off"`` disable tiering, ``"auto"`` is the default
    policy, anything else is a policy JSON file path.
    """
    if spec in (None, "off"):
        return None
    if spec == "auto":
        return TierPolicy()
    return TierPolicy.load(spec)


class _OpTier:
    """Mutable tiering state for one operation."""

    __slots__ = ("op", "tier", "renderer", "state", "target",
                 "pending", "old", "required", "verified", "baseline",
                 "retries", "retry_at_score", "converged", "reason")

    def __init__(self, op, renderer):
        self.op = op
        self.tier = 0
        self.renderer = renderer      # currently serving renderer
        self.state = "tier0"          # tier0 | shadow | tier1 | pinned
        self.target = None
        self.pending = {}
        self.old = {}
        self.required = set()
        self.verified = set()
        self.baseline = None
        self.retries = 0
        self.retry_at_score = 0.0
        self.converged = False
        self.reason = ""


class TieringEngine:
    """Drives tier transitions for one compiled interface.

    Args:
        handle: the :class:`~repro.core.handle.CompiledInterface`
            being served (its module is the one whose codecs swap).
        policy: a :class:`TierPolicy`; None means the defaults.
        registry: optional :class:`~repro.obs.metrics.MetricsRegistry`
            receiving ``flick_tier_current`` and
            ``flick_tier_recompiles_total``.
        worker: label value distinguishing per-worker series when a
            supervisor aggregates many workers' metrics ("" for a
            single-process server; the supervisor passes the slot).

    The engine is synchronous at heart: :meth:`poll_once` runs one
    decision round (deterministic for tests); :meth:`start` runs it on
    a background daemon thread every ``policy.interval_s``.  Attach
    tiering *after* tracing and profiling so its wrappers sit
    outermost and survive profiler reconfiguration.
    """

    def __init__(self, handle, *, policy=None, registry=None, worker=""):
        self.handle = handle
        self.policy = policy or TierPolicy()
        self.module = handle.module
        self.worker = str(worker)
        self.hotness = _profile.HotnessCounter(self.module)
        self.ops = {}
        self._lock = threading.RLock()
        self._thread = None
        self._stop = threading.Event()
        self._callbacks = []
        self._attached = False
        self._tier_gauge = None
        self._recompiles = None
        if registry is not None:
            self._tier_gauge = registry.gauge(
                "flick_tier_current",
                "Current execution tier per op (0 = compile-time"
                " renderer, 1 = recompiled hot tier)",
                ("op", "worker"),
            )
            self._recompiles = registry.counter(
                "flick_tier_recompiles_total",
                "Tier transitions by outcome",
                ("op", "outcome", "worker"),
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def attach(self):
        """Install hotness wrappers; idempotent.  Returns self."""
        with self._lock:
            if self._attached:
                return self
            tier0 = self.handle.stubs.renderer
            for op in self.handle.operations():
                if self.hotness.wrap(op):
                    self.ops[op] = _OpTier(op, tier0)
                    self._set_gauge(op, 0)
            self._attached = True
        return self

    def subscribe(self, callback):
        """Call ``callback(op, names)`` after every commit/revert that
        rebound module entries (the gateway rebinds its plan here)."""
        self._callbacks.append(callback)

    def start(self):
        """Run :meth:`poll_once` on a background daemon thread."""
        self.attach()
        if self._thread is not None:
            return self
        self._stop.clear()

        def run():
            while not self._stop.wait(self.policy.interval_s):
                try:
                    self.poll_once()
                except Exception:
                    # A tiering bug must never take the server down;
                    # worst case the op stays on tier-0.
                    pass

        self._thread = threading.Thread(
            target=run, name="flick-tiering", daemon=True)
        self._thread.start()
        return self

    def stop(self):
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback):
        self.stop()
        return False

    # ------------------------------------------------------------------
    # The decision round
    # ------------------------------------------------------------------

    def poll_once(self):
        """One decision round; returns ``[(op, action), ...]``."""
        actions = []
        with self._lock:
            for op, state in self.ops.items():
                if state.state == "shadow" or state.state == "pinned":
                    continue
                hot = self.hotness.hotness(op)
                if state.state == "tier1":
                    action = self._check_regression(op, state, hot)
                elif state.converged:
                    action = None
                else:
                    action = self._consider_promotion(op, state, hot)
                if action:
                    actions.append((op, action))
        return actions

    def _consider_promotion(self, op, state, hot):
        needed = max(self.policy.threshold, state.retry_at_score)
        if hot.score < needed:
            return None
        target, reason = self._choose_renderer(op)
        state.reason = reason
        if target == state.renderer:
            # The cost model picked what the op is already running —
            # converged on tier-0, nothing to recompile.
            state.converged = True
            self._count(op, "skipped_same")
            return "skipped_same"
        return self._promote(op, state, hot, target)

    def _promote(self, op, state, hot, target):
        try:
            new = self.handle.recompile(op, renderer=target,
                                        install=False)
        except Exception:
            state.state = "pinned"
            self._count(op, "recompile_failed")
            return "recompile_failed"
        G = self.module.__dict__
        state.pending = new
        state.old = {name: G[name] for name in new if name in G}
        state.target = target
        window = hot.window
        state.baseline = (
            window.seconds_per_byte()
            if window.samples >= self.policy.min_timed_samples
            else None)
        required = [
            prefix + op for prefix, _form in _profile.HOT_PREFIXES
            if prefix + op in new and prefix + op in G
        ]
        state.required = set(required)
        state.verified = set()
        state.state = "shadow"
        for name in required:
            G[name] = self._make_shadow(
                op, state, name, state.old[name], new[name])
        # Early-bound consumers (the gateway's OpPlan) must pick the
        # shadow wrappers up too, or verification never runs for them.
        self._notify(op, tuple(required))
        return "shadow:%s" % target

    # -- shadow verification -------------------------------------------

    def _make_shadow(self, op, state, name, old, new):
        """A one-shot verifying wrapper: OLD serves (its bytes go on
        the wire), NEW runs against the same arguments on the side;
        the eligible first call decides commit or revert."""
        engine = self

        if name.startswith("_m_rep_ok_"):

            def shadow(b, _ctx, *args):
                start = b.length
                result = old(b, _ctx, *args)
                # Alignment padding depends on the absolute buffer
                # offset; only a start-of-buffer call (every dispatch
                # reply is one) compares equal buffers.
                if start == 0 and name not in state.verified:
                    try:
                        scratch = MarshalBuffer()
                        new(scratch, _ctx, *args)
                        ok = scratch.getvalue() == bytes(b.view())
                    except Exception:
                        ok = False
                    engine._shadow_note(op, state, name, ok)
                return result

        else:  # _u_req_

            def shadow(d, o):
                result = old(d, o)
                if name not in state.verified:
                    try:
                        ok = new(d, o) == result
                    except Exception:
                        ok = False
                    engine._shadow_note(op, state, name, ok)
                return result

        shadow.__wrapped__ = old
        return shadow

    def _shadow_note(self, op, state, name, ok):
        with self._lock:
            if state.state != "shadow":
                return
            if not ok:
                # Wrong bytes is codegen breakage, not workload noise:
                # revert and pin, never retry.
                self._revert(op, state, "reverted_bytes", pin=True)
                return
            state.verified.add(name)
            if state.required <= state.verified:
                self._commit(op, state)

    # -- transitions ----------------------------------------------------

    def _commit(self, op, state):
        G = self.module.__dict__
        for name, function in state.pending.items():
            G[name] = function
        self.hotness.wrap(op)
        self.hotness.hotness(op).reset_window()
        state.renderer = state.target
        state.tier = 1
        state.state = "tier1"
        self._set_gauge(op, 1)
        self._count(op, "promoted")
        self._notify(op, tuple(state.pending))

    def _revert(self, op, state, outcome, pin=False):
        G = self.module.__dict__
        for name, function in state.old.items():
            G[name] = function
        self.hotness.wrap(op)
        hot = self.hotness.hotness(op)
        hot.reset_window()
        names = tuple(state.old)
        state.pending = {}
        state.old = {}
        state.tier = 0
        state.renderer = self.handle.stubs.renderer
        state.retries += 1
        if pin or state.retries > self.policy.max_retries:
            state.state = "pinned"
        else:
            state.state = "tier0"
            state.retry_at_score = hot.score * self.policy.hysteresis
        self._set_gauge(op, 0)
        self._count(op, outcome)
        self._notify(op, names)
        return outcome

    def _check_regression(self, op, state, hot):
        if state.converged:
            return None
        window = hot.window
        if window.samples < self.policy.min_timed_samples:
            return None
        per_byte = window.seconds_per_byte()
        if (state.baseline is not None and per_byte is not None
                and per_byte > state.baseline
                * self.policy.revert_ratio):
            return self._revert(op, state, "reverted_slow")
        # The recompile held up; stop paying for the comparison.
        state.converged = True
        return None

    # -- renderer choice ------------------------------------------------

    def _choose_renderer(self, op):
        """The cost model on live profiles; structural hint fallback."""
        profiler = _profile.active()
        if profiler is not None:
            profiles = [profiler.profile(op, "request"),
                        profiler.profile(op, "reply")]
            renderer, reason, scores = _profile.renderer_hint(profiles)
            if scores:
                return renderer, "profiled: " + reason
        return self._structural_hint(op)

    def _structural_hint(self, op):
        """py/closures from the naive type IR alone.

        The same structural facts the cost model's coefficients encode:
        string/bytes channels favour inlined source, all-fixed layouts
        favour bulk struct packing.
        """
        thunk = getattr(self.module, "_flick_shapes", None)
        if thunk is None:
            return (self.handle.stubs.renderer,
                    "no shape information; keeping the current renderer")
        try:
            program = thunk()
            info = program.operations.get(op)
        except Exception:
            info = None
        if info is None:
            return (self.handle.stubs.renderer,
                    "no shape information; keeping the current renderer")
        channels = [info.get("request")]
        channels.extend(
            channel for _label, channel in (info.get("reply_arms") or ()))
        variable = any(
            _has_variable_text(node, program.types, set())
            for channel in channels if channel is not None
            for _name, node in channel.items)
        if variable:
            return ("py", "structural: string/bytes channels; inlined"
                          " source beats closure dispatch")
        return ("closures", "structural: fixed-layout channels; bulk"
                            " struct packing wins")

    # -- bookkeeping ----------------------------------------------------

    def tier_summary(self):
        """Per-op state for ``status`` replies and ``flick top``."""
        with self._lock:
            return {
                op: {
                    "tier": state.tier,
                    "renderer": state.renderer,
                    "state": state.state,
                    "score": self.hotness.hotness(op).score,
                    "reason": state.reason,
                }
                for op, state in sorted(self.ops.items())
            }

    def _set_gauge(self, op, tier):
        if self._tier_gauge is not None:
            self._tier_gauge.labels(op, self.worker).set(tier)

    def _count(self, op, outcome):
        if self._recompiles is not None:
            self._recompiles.labels(op, outcome, self.worker).inc()

    def _notify(self, op, names):
        for callback in self._callbacks:
            try:
                callback(op, names)
            except Exception:
                pass


def _has_variable_text(node, types, seen):
    from repro.mir import ops as m

    if isinstance(node, (m.TString, m.TBytes)):
        return not isinstance(node, m.TBytes) or \
            node.fixed_length is None
    if isinstance(node, m.TRef):
        if node.name in seen:
            return False
        seen.add(node.name)
        target = types.get(node.name)
        return target is not None and _has_variable_text(
            target, types, seen)
    if isinstance(node, (m.TFixedArray, m.TCountedArray, m.TOptional)):
        return node.element is not None and _has_variable_text(
            node.element, types, seen)
    if isinstance(node, (m.TStruct, m.TException)):
        return any(_has_variable_text(field.node, types, seen)
                   for field in node.fields)
    if isinstance(node, m.TUnion):
        return any(_has_variable_text(arm.node, types, seen)
                   for arm in node.arms)
    return False
