"""Virtual-clock network link models.

The paper measures end-to-end throughput over 10 Mbps Ethernet, 100 Mbps
Ethernet, and 640 Mbps Myrinet, and reports (via ``ttcp``) the *effective*
bandwidths those links deliver once the 1997 operating system's protocol
stack is accounted for: about 7.5, 70, and 84.5 Mbps respectively.  This
module substitutes a deterministic link model for the physical networks
(see DESIGN.md): transferring ``n`` bytes costs

    ``per_message_overhead + n / effective_bandwidth``

of *simulated* time, accumulated on a virtual clock.  The end-to-end
benchmark harness combines this simulated wire time with *measured* stub
CPU time; the paper's own analysis (section 4) attributes end-to-end
throughput to exactly these two components, so the crossover structure —
everyone wire-limited at 10 Mbps, marshal-limited stubs separating on fast
links — is preserved.

The per-message overhead represents per-packet protocol work and interrupt
handling; 1997-era null-RPC times over Ethernet were several hundred
microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TransportError
from repro.encoding.buffer import MarshalBuffer
from repro.runtime.transport import Transport


@dataclass(frozen=True)
class LinkModel:
    """A simulated network link.

    Attributes:
        name: display name.
        raw_bandwidth_bps: the advertised link rate (reported only).
        effective_bandwidth_bps: the ttcp-measured achievable rate; the
            model charges bytes against this.
        per_message_overhead_s: fixed simulated cost per message in each
            direction (protocol stack + interrupt + syscall).
    """

    name: str
    raw_bandwidth_bps: float
    effective_bandwidth_bps: float
    per_message_overhead_s: float

    def transfer_time(self, size_bytes):
        """Simulated seconds to move one *size_bytes* message one way."""
        return (
            self.per_message_overhead_s
            + size_bytes * 8.0 / self.effective_bandwidth_bps
        )


#: The paper's three networks, with its measured effective bandwidths.
ETHERNET_10 = LinkModel(
    name="10Mbps Ethernet",
    raw_bandwidth_bps=10e6,
    effective_bandwidth_bps=7.5e6,
    per_message_overhead_s=400e-6,
)
ETHERNET_100 = LinkModel(
    name="100Mbps Ethernet",
    raw_bandwidth_bps=100e6,
    effective_bandwidth_bps=70e6,
    per_message_overhead_s=300e-6,
)
MYRINET_640 = LinkModel(
    name="640Mbps Myrinet",
    raw_bandwidth_bps=640e6,
    effective_bandwidth_bps=84.5e6,
    per_message_overhead_s=250e-6,
)


class SimulatedNetworkTransport(Transport):
    """A loopback dispatch behind a simulated link.

    CPU time (marshaling, dispatch, unmarshaling) passes through and is
    measured by the caller with a real clock; wire time accumulates on
    :attr:`simulated_seconds`.  The end-to-end harness adds the two.
    """

    def __init__(self, dispatch, impl, link):
        self._dispatch = dispatch
        self._impl = impl
        self.link = link
        self._reply_buf = MarshalBuffer()
        self.simulated_seconds = 0.0
        self.bytes_carried = 0

    def reset_clock(self):
        self.simulated_seconds = 0.0
        self.bytes_carried = 0

    def call(self, request):
        size = len(request)
        self.simulated_seconds += self.link.transfer_time(size)
        self.bytes_carried += size
        buffer = self._reply_buf
        buffer.reset()
        has_reply = self._dispatch(request, self._impl, buffer)
        if not has_reply:
            raise TransportError(
                "two-way call reached a oneway-only dispatch path"
            )
        reply = buffer.getvalue()
        self.simulated_seconds += self.link.transfer_time(len(reply))
        self.bytes_carried += len(reply)
        return reply

    def send(self, request):
        size = len(request)
        self.simulated_seconds += self.link.transfer_time(size)
        self.bytes_carried += size
        buffer = self._reply_buf
        buffer.reset()
        self._dispatch(request, self._impl, buffer)
