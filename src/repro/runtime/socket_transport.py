"""Real socket transports: TCP (with record framing) and UDP.

These carry generated messages over the loopback (or any) network for the
examples and integration tests.  TCP framing follows ONC RPC's record
marking convention (RFC 1831 section 10): each record is preceded by a
4-byte big-endian word whose top bit marks the final fragment and whose low
31 bits give the fragment length.  UDP sends each message as one datagram.
"""

from __future__ import annotations

import socket
import struct
import threading

from repro.errors import TransportError
from repro.encoding.buffer import MarshalBuffer
from repro.runtime.transport import Transport

_LAST_FRAGMENT = 0x80000000
MAX_UDP_SIZE = 65000


def _send_record(sock, payload):
    header = struct.pack(">I", _LAST_FRAGMENT | len(payload))
    sock.sendall(header)
    sock.sendall(payload)


def _recv_exact(sock, size):
    chunks = []
    remaining = size
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise TransportError("connection closed mid-record")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_record(sock):
    fragments = []
    while True:
        (word,) = struct.unpack(">I", _recv_exact(sock, 4))
        length = word & ~_LAST_FRAGMENT
        fragments.append(_recv_exact(sock, length))
        if word & _LAST_FRAGMENT:
            return b"".join(fragments)


class TcpClientTransport(Transport):
    """A framed TCP connection to a :class:`TcpServer`."""

    def __init__(self, host, port, timeout=10.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def call(self, request):
        _send_record(self._sock, bytes(request))
        return _recv_record(self._sock)

    def send(self, request):
        _send_record(self._sock, bytes(request))

    def close(self):
        self._sock.close()


class TcpServer:
    """A threaded TCP server around a generated dispatch function.

    Each connection is served on its own thread; requests are dispatched
    in order per connection, matching ONC RPC over TCP semantics.
    """

    def __init__(self, dispatch, impl, host="127.0.0.1", port=0):
        self._dispatch = dispatch
        self._impl = impl
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(8)
        self.address = self._listener.getsockname()
        self._running = False
        self._thread = None

    def start(self):
        self._running = True
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()
        return self

    def _accept_loop(self):
        while self._running:
            try:
                connection, _peer = self._listener.accept()
            except OSError:
                return
            worker = threading.Thread(
                target=self._serve_connection, args=(connection,), daemon=True
            )
            worker.start()

    def _serve_connection(self, connection):
        buffer = MarshalBuffer()
        try:
            connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while True:
                try:
                    request = _recv_record(connection)
                except TransportError:
                    return
                buffer.reset()
                if self._dispatch(request, self._impl, buffer):
                    _send_record(connection, buffer.view())
        finally:
            connection.close()

    def stop(self):
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback):
        self.stop()
        return False


class UdpClientTransport(Transport):
    """Datagram transport; one message per datagram, like ONC over UDP."""

    def __init__(self, host, port, timeout=10.0):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.settimeout(timeout)
        self._address = (host, port)

    def call(self, request):
        payload = bytes(request)
        if len(payload) > MAX_UDP_SIZE:
            raise TransportError(
                "message of %d bytes exceeds the UDP limit" % len(payload)
            )
        self._sock.sendto(payload, self._address)
        reply, _peer = self._sock.recvfrom(65536)
        return reply

    def send(self, request):
        payload = bytes(request)
        if len(payload) > MAX_UDP_SIZE:
            raise TransportError(
                "message of %d bytes exceeds the UDP limit" % len(payload)
            )
        self._sock.sendto(payload, self._address)

    def close(self):
        self._sock.close()


class UdpServer:
    """A single-threaded UDP server around a generated dispatch."""

    def __init__(self, dispatch, impl, host="127.0.0.1", port=0):
        self._dispatch = dispatch
        self._impl = impl
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind((host, port))
        self.address = self._sock.getsockname()
        self._running = False
        self._thread = None

    def start(self):
        self._running = True
        self._sock.settimeout(0.2)
        self._thread = threading.Thread(target=self._serve_loop, daemon=True)
        self._thread.start()
        return self

    def _serve_loop(self):
        buffer = MarshalBuffer()
        while self._running:
            try:
                request, peer = self._sock.recvfrom(65536)
            except socket.timeout:
                continue
            except OSError:
                return
            buffer.reset()
            if self._dispatch(request, self._impl, buffer):
                self._sock.sendto(buffer.getvalue(), peer)

    def stop(self):
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        self._sock.close()

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback):
        self.stop()
        return False
