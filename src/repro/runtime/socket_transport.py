"""Real socket transports: TCP (with record framing) and UDP.

These carry generated messages over the loopback (or any) network for the
examples and integration tests.  TCP framing follows ONC RPC's record
marking convention (RFC 1831 section 10) via the shared codec in
:mod:`repro.runtime.framing`.  UDP sends each message as one datagram.

Both servers shut down gracefully: ``stop()`` closes the listening socket
(refusing new work), unblocks every worker, and joins all threads with a
timeout, so tests and examples do not leak threads.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

from repro.errors import (
    OverloadError,
    RuntimeFlickError,
    TransportError,
    WireFormatError,
)
from repro.encoding.buffer import MarshalBuffer
from repro.obs import propagation, trace
from repro.runtime.framing import (
    HEADER_SIZE,
    LAST_FRAGMENT,
    MAX_FRAGMENTS_PER_RECORD,
    MAX_RECORD_SIZE,
    encode_record,
)
from repro.runtime.deprecation import renamed_kwarg
from repro.runtime.transport import Transport

_LAST_FRAGMENT = LAST_FRAGMENT  # backward-compatible alias
MAX_UDP_SIZE = 65000


def _probe_op_key(op_names, request):
    """The human-readable operation key for *request* ("?" if opaque)."""
    from repro.runtime.aio.correlation import probe

    try:
        info = probe(request)
    except TransportError:
        return "?"
    return op_names.get(info.op_key, info.op_key)


def _request_op_key(stats, op_names, request):
    """The stats key for *request*, or None when stats are off."""
    if stats is None:
        return None
    return _probe_op_key(op_names, request)


def _inject_current_trace(payload):
    """Weave the caller's span into *payload* when tracing is on."""
    if trace.active() is not None:
        parent = trace.current_span()
        if parent is not None:
            return propagation.inject(payload, parent)
    return payload


def _send_record(sock, payload):
    sock.sendall(encode_record(payload))


def _recv_exact(sock, size, what="record"):
    chunks = []
    remaining = size
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except OSError as error:
            raise TransportError(
                "connection error while reading %s: %s" % (what, error)
            ) from error
        if not chunk:
            received = size - remaining
            if received:
                raise TransportError(
                    "connection closed mid-%s: got %d of %d bytes"
                    % (what, received, size)
                )
            raise TransportError("connection closed mid-%s" % what)
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_record(sock, max_record_size=MAX_RECORD_SIZE):
    fragments = []
    total = 0
    while True:
        header = _recv_exact(sock, HEADER_SIZE, "record header")
        (word,) = struct.unpack(">I", header)
        length = word & ~LAST_FRAGMENT
        total += length
        if total > max_record_size:
            raise WireFormatError(
                "record of %d+ bytes exceeds the %d-byte limit"
                % (total, max_record_size),
                field="record_size", limit=max_record_size, actual=total,
            )
        fragments.append(_recv_exact(sock, length, "record body"))
        if word & LAST_FRAGMENT:
            return b"".join(fragments)
        if len(fragments) >= MAX_FRAGMENTS_PER_RECORD:
            raise WireFormatError(
                "record spread over more than %d fragments"
                % MAX_FRAGMENTS_PER_RECORD,
                field="fragment_count", limit=MAX_FRAGMENTS_PER_RECORD,
                actual=len(fragments),
            )


def _check_udp_size(payload):
    if len(payload) > MAX_UDP_SIZE:
        raise TransportError(
            "message of %d bytes exceeds the %d-byte UDP datagram limit;"
            " use a TCP transport for large messages"
            % (len(payload), MAX_UDP_SIZE)
        )
    return payload


class TcpClientTransport(Transport):
    """A framed TCP connection to a :class:`TcpServer`.

    *deadline* bounds each blocking receive (and, unless
    *connect_timeout* is given, the connect), in seconds — the same
    vocabulary as :class:`~repro.runtime.aio.client.AioClientTransport`.
    The historical *timeout* keyword keeps working but warns.
    """

    def __init__(self, host, port, timeout=None, *, deadline=None,
                 connect_timeout=None):
        deadline = renamed_kwarg(
            "TcpClientTransport", "timeout", timeout, "deadline", deadline,
            default=10.0,
        )
        if connect_timeout is None:
            connect_timeout = deadline
        self._sock = socket.create_connection(
            (host, port), timeout=connect_timeout
        )
        self._sock.settimeout(deadline)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def call(self, request):
        payload = _inject_current_trace(bytes(request))
        with trace.span("send", bytes=len(payload)):
            _send_record(self._sock, payload)
        with trace.span("await.reply"):
            return _recv_record(self._sock)

    def send(self, request):
        payload = _inject_current_trace(bytes(request))
        with trace.span("send", bytes=len(payload)):
            _send_record(self._sock, payload)

    def close(self):
        self._sock.close()


class TcpServer:
    """A threaded TCP server around a generated dispatch function.

    Each connection is served on its own thread; requests are dispatched
    in order per connection, matching ONC RPC over TCP semantics.

    *stats* (an optional :class:`~repro.runtime.aio.stats.ServerStats`)
    records one observation per request, the same way the asyncio server
    does; *op_names* maps demux keys to display names for it.

    *error_encoder* (the stub module's ``encode_error_reply``) turns
    malformed requests and servant crashes into protocol error replies;
    without it both drop the connection (the historical behaviour).
    *fault_plan* (a :class:`repro.faults.FaultPlan`) injects faults into
    inbound requests for chaos testing.  *tiering* (a
    :class:`~repro.runtime.tiering.TieringEngine`, or an iterable of
    them) is started and stopped with the server.
    """

    def __init__(self, dispatch, impl, host="127.0.0.1", port=0, *,
                 stats=None, op_names=None, error_encoder=None,
                 fault_plan=None, max_record_size=MAX_RECORD_SIZE,
                 tiering=None):
        self._dispatch = dispatch
        self._impl = impl
        self.stats = stats
        self._op_names = op_names or {}
        self._error_encoder = error_encoder
        self._fault_plan = fault_plan
        self._max_record_size = max_record_size
        if tiering is None:
            self.tiering = ()
        elif hasattr(tiering, "poll_once"):
            self.tiering = (tiering,)
        else:
            self.tiering = tuple(tiering)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.address = self._listener.getsockname()
        self._running = False
        self._draining = False
        self._thread = None
        self._lock = threading.Lock()
        self._workers = []
        self._connections = set()
        self._busy = set()  # connections currently serving a request

    def start(self):
        self._running = True
        for engine in self.tiering:
            engine.start()
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()
        return self

    def _accept_loop(self):
        while self._running:
            try:
                connection, _peer = self._listener.accept()
            except OSError:
                return
            with self._lock:
                if not self._running:
                    connection.close()
                    return
                self._connections.add(connection)
                self._workers = [
                    worker for worker in self._workers if worker.is_alive()
                ]
                worker = threading.Thread(
                    target=self._serve_connection, args=(connection,),
                    daemon=True,
                )
                self._workers.append(worker)
            worker.start()

    def _serve_connection(self, connection):
        buffer = MarshalBuffer()
        injector = (
            self._fault_plan.injector() if self._fault_plan is not None
            else None
        )
        try:
            connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while True:
                if self._draining:
                    return
                try:
                    request = _recv_record(connection, self._max_record_size)
                except WireFormatError:
                    # Framing lost sync: nothing downstream can be
                    # trusted, so the only safe answer is a close.
                    if self.stats is not None:
                        self.stats.malformed.inc()
                    return
                except TransportError:
                    return
                # From here until the reply is written this connection is
                # in flight: drain() leaves it alone (its reply must be
                # delivered) and the loop exits before the *next* recv.
                with self._lock:
                    self._busy.add(connection)
                try:
                    if injector is None:
                        if not self._serve_request(
                                connection, request, buffer):
                            return
                        continue
                    outcome = injector.on_message(request)
                    if outcome.reset:
                        return
                    for delivery in outcome.deliveries:
                        if delivery.delay_s:
                            time.sleep(delivery.delay_s)
                        if not self._serve_request(
                                connection, delivery.payload, buffer):
                            return
                finally:
                    with self._lock:
                        self._busy.discard(connection)
        except OSError:
            pass
        finally:
            with self._lock:
                self._connections.discard(connection)
                self._busy.discard(connection)
            connection.close()

    def _serve_request(self, connection, request, buffer):
        """Serve one framed request.

        Returns True to keep serving the connection; False when it must
        be dropped (write failure, servant crash, or wire damage that
        could not be answered with a protocol error reply).
        """
        started = time.perf_counter()
        tracer = trace.active()
        op_key = None
        if self.stats is not None or tracer is not None:
            op_key = _probe_op_key(self._op_names, request)
        error = False
        try:
            if tracer is None:
                buffer.reset()
                if self._dispatch(request, self._impl, buffer):
                    _send_record(connection, buffer.view())
                return True
            with tracer.span("server.request", op=str(op_key),
                             parent=propagation.extract(request)):
                buffer.reset()
                with tracer.span("dispatch"):
                    has_reply = self._dispatch(request, self._impl, buffer)
                if has_reply:
                    with tracer.span("write"):
                        _send_record(connection, buffer.view())
            return True
        except OSError:
            error = True
            return False
        except RuntimeFlickError as exc:
            # Malformed or unsupported request; the record framing is
            # intact, so answer in-protocol and keep the connection.
            error = True
            if self.stats is not None:
                self.stats.malformed.inc()
            return self._reply_with_error(connection, request, exc, buffer)
        except Exception as exc:
            # The servant itself crashed: report a system error, then
            # drop the connection — its state is suspect.
            error = True
            if self.stats is not None:
                self.stats.servant_errors.inc()
            self._reply_with_error(connection, request, exc, buffer)
            return False
        finally:
            if self.stats is not None and op_key is not None:
                self.stats.record(
                    op_key, time.perf_counter() - started, error=error
                )

    def _reply_with_error(self, connection, request, error, buffer):
        """Send a protocol error reply; False when none can be built."""
        if self._error_encoder is None:
            return False
        buffer.reset()
        try:
            if not self._error_encoder(request, error, buffer):
                return False
            _send_record(connection, buffer.view())
            return True
        except Exception:  # a failing encoder must not kill the worker
            return False

    def drain(self, timeout=5.0):
        """Graceful bounded drain: refuse new work, deliver in-flight
        replies, then close.

        The SIGTERM path (``flick serve`` wires it up): the listener
        closes immediately (new connects are refused), idle connections
        are shut down, and connections mid-request get up to *timeout*
        seconds to finish — their replies are written before the close.
        Always leaves the server fully stopped.
        """
        deadline = time.monotonic() + timeout
        self._draining = True
        self._running = False
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            idle = [connection for connection in self._connections
                    if connection not in self._busy]
            workers = list(self._workers)
        for connection in idle:
            # Wake the worker blocked in recv() with EOF; its write side
            # stays open in case a request just landed (the reply must
            # still go out).
            try:
                connection.shutdown(socket.SHUT_RD)
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(
                timeout=max(0.0, deadline - time.monotonic()))
            self._thread = None
        for worker in workers:
            worker.join(timeout=max(0.05, deadline - time.monotonic()))
        # Anything still alive overran the drain budget: hard stop.
        self.stop(timeout=0.5)

    def stop(self, timeout=2.0):
        """Close the listener, unblock workers, and join all threads."""
        self._running = False
        try:
            # shutdown() before close(): a close alone does not wake a
            # thread blocked in accept() — the in-progress syscall keeps
            # the kernel socket alive, silently accepting connections.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            connections = list(self._connections)
            workers = list(self._workers)
        for connection in connections:
            # Shut down rather than close: wakes a worker blocked in
            # recv() with EOF instead of racing its file descriptor.
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        for worker in workers:
            worker.join(timeout=timeout)
        with self._lock:
            self._workers = []
        for engine in self.tiering:
            engine.stop()

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback):
        self.stop()
        return False


class UdpClientTransport(Transport):
    """Datagram transport; one message per datagram, like ONC over UDP.

    *deadline* bounds each blocking receive, in seconds; the historical
    *timeout* keyword keeps working but warns.
    """

    def __init__(self, host, port, timeout=None, *, deadline=None):
        deadline = renamed_kwarg(
            "UdpClientTransport", "timeout", timeout, "deadline", deadline,
            default=10.0,
        )
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.settimeout(deadline)
        self._address = (host, port)

    def call(self, request):
        payload = _check_udp_size(bytes(request))
        self._sock.sendto(payload, self._address)
        reply, _peer = self._sock.recvfrom(65536)
        return reply

    def send(self, request):
        payload = _check_udp_size(bytes(request))
        self._sock.sendto(payload, self._address)

    def close(self):
        self._sock.close()


class UdpServer:
    """A single-threaded UDP server around a generated dispatch.

    Takes the same optional *stats*/*op_names*/*error_encoder*/
    *fault_plan* as :class:`TcpServer`.  The serve loop never dies on a
    hostile datagram: malformed requests and servant crashes are
    answered with protocol error replies when an *error_encoder* is
    available and silently dropped otherwise (matching UDP loss
    semantics).  A fault plan's connection-reset outcome likewise
    degrades to a drop — UDP has no connection to reset.
    """

    def __init__(self, dispatch, impl, host="127.0.0.1", port=0, *,
                 stats=None, op_names=None, error_encoder=None,
                 fault_plan=None):
        self._dispatch = dispatch
        self._impl = impl
        self.stats = stats
        self._op_names = op_names or {}
        self._error_encoder = error_encoder
        self._fault_plan = fault_plan
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind((host, port))
        self.address = self._sock.getsockname()
        self._running = False
        self._thread = None

    def start(self):
        self._running = True
        self._sock.settimeout(0.2)
        self._thread = threading.Thread(target=self._serve_loop, daemon=True)
        self._thread.start()
        return self

    def _serve_loop(self):
        buffer = MarshalBuffer()
        injector = (
            self._fault_plan.injector() if self._fault_plan is not None
            else None
        )
        while self._running:
            try:
                request, peer = self._sock.recvfrom(65536)
            except socket.timeout:
                continue
            except OSError:
                return
            if injector is None:
                self._serve_datagram(request, peer, buffer)
                continue
            outcome = injector.on_message(request)
            if outcome.reset:
                continue  # no connection to reset; drop the datagram
            for delivery in outcome.deliveries:
                if delivery.delay_s:
                    time.sleep(delivery.delay_s)
                self._serve_datagram(delivery.payload, peer, buffer)

    def _serve_datagram(self, request, peer, buffer):
        started = time.perf_counter()
        op_key = _request_op_key(self.stats, self._op_names, request)
        error = False
        try:
            buffer.reset()
            if self._dispatch(request, self._impl, buffer):
                reply = buffer.getvalue()
                if len(reply) > MAX_UDP_SIZE:
                    # An oversized reply cannot be sent as one
                    # datagram; drop it rather than crash the serve
                    # loop (the client's recv will time out,
                    # mirroring UDP loss).
                    error = True
                    return
                self._sock.sendto(reply, peer)
        except OSError:
            error = True
        except RuntimeFlickError as exc:
            error = True
            if self.stats is not None:
                self.stats.malformed.inc()
            self._reply_with_error(request, exc, buffer, peer)
        except Exception as exc:
            # A servant crash must not kill the single serve loop;
            # answer with a system error (or drop, like UDP loss).
            error = True
            if self.stats is not None:
                self.stats.servant_errors.inc()
            self._reply_with_error(request, exc, buffer, peer)
        finally:
            if self.stats is not None and op_key is not None:
                self.stats.record(
                    op_key, time.perf_counter() - started, error=error
                )

    def _reply_with_error(self, request, error, buffer, peer):
        """Answer *peer* with a protocol error datagram, if possible."""
        if self._error_encoder is None:
            return False
        buffer.reset()
        try:
            if not self._error_encoder(request, error, buffer):
                return False
            reply = buffer.getvalue()
            if len(reply) > MAX_UDP_SIZE:
                return False
            self._sock.sendto(reply, peer)
            return True
        except Exception:  # never let the encoder kill the loop
            return False

    def drain(self, timeout=5.0):
        """Bounded graceful drain (the SIGTERM path).

        The serve loop is single-threaded and checks ``_running`` per
        datagram, so :meth:`stop` already finishes the in-flight
        datagram — and sends its reply — before the join returns; this
        alias exists so every server exposes the same drain verb.
        """
        self.stop(timeout=timeout)

    def stop(self, timeout=2.0):
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        self._sock.close()

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback):
        self.stop()
        return False
