"""Transport base class and the in-process loopback transport."""

from __future__ import annotations

import abc

from repro.errors import TransportError
from repro.encoding.buffer import MarshalBuffer


class Transport(abc.ABC):
    """What generated client proxies require of a transport."""

    @abc.abstractmethod
    def call(self, request):
        """Deliver *request* (bytes-like) and return the reply bytes."""

    @abc.abstractmethod
    def send(self, request):
        """Deliver *request* with no reply expected (oneway)."""

    def close(self):
        """Release any resources (default: nothing)."""


class LoopbackTransport(Transport):
    """Client and server in one process, no network: the fastest path.

    Useful for tests, examples, and for measuring pure stub overhead.  The
    server side is a generated ``dispatch`` function plus an implementation
    object; the reply marshal buffer is reused across calls, as a real
    single-threaded server loop would.
    """

    def __init__(self, dispatch, impl):
        self._dispatch = dispatch
        self._impl = impl
        self._reply_buf = MarshalBuffer()
        self.requests_handled = 0
        self.bytes_carried = 0

    def call(self, request):
        self.requests_handled += 1
        self.bytes_carried += len(request)
        buffer = self._reply_buf
        buffer.reset()
        has_reply = self._dispatch(request, self._impl, buffer)
        if not has_reply:
            raise TransportError(
                "two-way call reached a oneway-only dispatch path"
            )
        reply = buffer.getvalue()
        self.bytes_carried += len(reply)
        return reply

    def send(self, request):
        self.requests_handled += 1
        self.bytes_carried += len(request)
        buffer = self._reply_buf
        buffer.reset()
        self._dispatch(request, self._impl, buffer)
