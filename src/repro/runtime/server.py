"""Convenience server wrapper pairing generated stubs with a servant."""

from __future__ import annotations

from repro.encoding.buffer import MarshalBuffer
from repro.runtime.transport import LoopbackTransport
from repro.runtime.socket_transport import TcpServer, UdpServer


class StubServer:
    """Binds a generated stub module's dispatch to an implementation.

    Provides direct (in-process) serving plus helpers to expose the same
    servant over TCP or UDP.
    """

    def __init__(self, module, impl):
        self.module = module
        self.impl = impl
        self._buffer = MarshalBuffer()

    def serve_bytes(self, request):
        """Serve one raw request; returns reply bytes or None (oneway)."""
        self._buffer.reset()
        if self.module.dispatch(request, self.impl, self._buffer):
            return self._buffer.getvalue()
        return None

    def loopback_transport(self):
        """An in-process transport bound to this servant."""
        return LoopbackTransport(self.module.dispatch, self.impl)

    def tcp_server(self, host="127.0.0.1", port=0):
        return TcpServer(self.module.dispatch, self.impl, host, port)

    def udp_server(self, host="127.0.0.1", port=0):
        return UdpServer(self.module.dispatch, self.impl, host, port)
