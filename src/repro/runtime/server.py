"""Convenience server wrapper pairing generated stubs with a servant."""

from __future__ import annotations

from repro.encoding.buffer import MarshalBuffer
from repro.runtime.transport import LoopbackTransport
from repro.runtime.socket_transport import TcpServer, UdpServer


def operation_names(module):
    """Map a stub module's demux keys to operation names (for stats).

    Stub modules generated with ``hash_demux`` expose ``_HANDLERS``,
    whose values are the per-operation handlers ``_h_<operation>``;
    modules compiled with the if-chain demux simply get raw keys.
    """
    handlers = getattr(module, "_HANDLERS", None)
    if not handlers:
        return {}
    names = {}
    for key, handler in handlers.items():
        name = getattr(handler, "__name__", "")
        names[key] = name[3:] if name.startswith("_h_") else str(key)
    return names


class StubServer:
    """Binds a generated stub module's dispatch to an implementation.

    Provides direct (in-process) serving plus helpers to expose the same
    servant over TCP or UDP — blocking or concurrent (asyncio).
    """

    def __init__(self, module, impl):
        self.module = module
        self.impl = impl
        self._buffer = MarshalBuffer()

    @property
    def error_encoder(self):
        """The stub module's ``encode_error_reply`` (None on old stubs)."""
        return getattr(self.module, "encode_error_reply", None)

    def serve_bytes(self, request):
        """Serve one raw request; returns reply bytes or None (oneway).

        Mirrors what the socket servers do on failures: dispatch errors
        are answered with a protocol-correct error reply when the stub
        module provides ``encode_error_reply``.  The exception is
        re-raised only when no reply can be built (no encoder, a oneway
        request, or an unparseable header) — the in-process equivalent
        of dropping the connection.
        """
        self._buffer.reset()
        try:
            if self.module.dispatch(request, self.impl, self._buffer):
                return self._buffer.getvalue()
            return None
        except Exception as error:
            encoder = self.error_encoder
            if encoder is not None:
                self._buffer.reset()
                if encoder(request, error, self._buffer):
                    return self._buffer.getvalue()
            raise

    def loopback_transport(self):
        """An in-process transport bound to this servant."""
        return LoopbackTransport(self.module.dispatch, self.impl)

    def tcp_server(self, host="127.0.0.1", port=0, **kwargs):
        """A blocking threaded TCP server for this servant.

        Keyword arguments (``stats`` in particular) are forwarded to
        :class:`~repro.runtime.socket_transport.TcpServer`; stats get
        human-readable operation names resolved from the stub module.
        """
        kwargs.setdefault("op_names", operation_names(self.module))
        kwargs.setdefault("error_encoder", self.error_encoder)
        return TcpServer(
            self.module.dispatch, self.impl, host, port, **kwargs
        )

    def udp_server(self, host="127.0.0.1", port=0, **kwargs):
        kwargs.setdefault("op_names", operation_names(self.module))
        kwargs.setdefault("error_encoder", self.error_encoder)
        return UdpServer(
            self.module.dispatch, self.impl, host, port, **kwargs
        )

    def aio_server(self, host="127.0.0.1", port=0, **kwargs):
        """A concurrent asyncio server for this servant.

        Keyword arguments are forwarded to
        :class:`~repro.runtime.aio.server.AioTcpServer`; stats get
        human-readable operation names resolved from the stub module.
        """
        from repro.runtime.aio import AioTcpServer

        kwargs.setdefault("op_names", operation_names(self.module))
        kwargs.setdefault("error_encoder", self.error_encoder)
        return AioTcpServer(
            self.module.dispatch, self.impl, host, port, **kwargs
        )
