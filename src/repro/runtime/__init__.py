"""Runtime support for generated stubs: transports and server loops.

Generated client proxies talk to a *transport* exposing ``call(request)``
(request/reply) and ``send(request)`` (oneway); servers pair a generated
``dispatch`` function with an implementation object.  Transports range from
an in-process loopback, through real TCP/UDP sockets, to the virtual-clock
link models used to reproduce the paper's end-to-end experiments.
"""

from repro.runtime.transport import LoopbackTransport, Transport
from repro.runtime.simnet import (
    ETHERNET_10,
    ETHERNET_100,
    MYRINET_640,
    LinkModel,
    SimulatedNetworkTransport,
)
from repro.runtime.machipc import MACH_IPC, MachIpcTransport
from repro.runtime.flukeipc import FLUKE_IPC, FlukeIpcTransport
from repro.runtime.socket_transport import (
    TcpClientTransport,
    TcpServer,
    UdpClientTransport,
    UdpServer,
)
from repro.runtime.framing import RecordDecoder, encode_record
from repro.runtime.server import StubServer, operation_names
from repro.runtime.aio import (
    AioClientTransport,
    AioTcpServer,
    CallOptions,
    ConnectionPool,
    RetryPolicy,
    ServeOptions,
    ServerStats,
)
from repro.runtime.tiering import TieringEngine, TierPolicy, \
    resolve_policy

__all__ = [
    "AioClientTransport",
    "AioTcpServer",
    "CallOptions",
    "ConnectionPool",
    "RecordDecoder",
    "RetryPolicy",
    "ServeOptions",
    "ServerStats",
    "encode_record",
    "operation_names",
    "ETHERNET_10",
    "ETHERNET_100",
    "FLUKE_IPC",
    "FlukeIpcTransport",
    "LinkModel",
    "LoopbackTransport",
    "MACH_IPC",
    "MachIpcTransport",
    "MYRINET_640",
    "SimulatedNetworkTransport",
    "StubServer",
    "TcpClientTransport",
    "TcpServer",
    "TierPolicy",
    "TieringEngine",
    "Transport",
    "UdpClientTransport",
    "UdpServer",
    "resolve_policy",
]
