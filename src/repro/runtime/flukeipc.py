"""Simulated Fluke kernel IPC.

Fluke IPC (paper section 3.2) passes the first several message words in
machine registers; small messages never touch memory at all.  The model
here peels :data:`REGISTER_WORDS` words off each message as the "register
window" — transferred at a fixed, very low cost — and charges only the
remainder against the kernel's copy path.  This reproduces the property
the paper exploits: small-message round trips approach the bare kernel
trap cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TransportError
from repro.encoding.buffer import MarshalBuffer
from repro.encoding.fluke import REGISTER_WORDS
from repro.runtime.transport import Transport


@dataclass(frozen=True)
class FlukeIpcModel:
    """Virtual-clock cost model for one Fluke IPC transfer."""

    name: str
    per_message_s: float
    copy_bandwidth_bytes_per_s: float
    register_bytes: int = REGISTER_WORDS * 4

    def transfer_time(self, size_bytes):
        buffered = max(0, size_bytes - self.register_bytes)
        return self.per_message_s + buffered / self.copy_bandwidth_bytes_per_s


#: Fluke's IPC path was several times leaner than Mach's.
FLUKE_IPC = FlukeIpcModel(
    name="Fluke IPC",
    per_message_s=20e-6,
    copy_bandwidth_bytes_per_s=35e6,
)


class FlukeIpcTransport(Transport):
    """Dispatch behind a simulated Fluke IPC hop.

    The register window is simulated concretely as well: the first words of
    each message are carried in a Python list (the "registers") and
    reassembled on the far side, exercising the same code path a real
    register-window transport would.
    """

    def __init__(self, dispatch, impl, model=FLUKE_IPC):
        self._dispatch = dispatch
        self._impl = impl
        self.model = model
        self._reply_buf = MarshalBuffer()
        self.simulated_seconds = 0.0
        self.bytes_carried = 0

    def reset_clock(self):
        self.simulated_seconds = 0.0
        self.bytes_carried = 0

    def _transfer(self, message):
        """Split into (registers, buffer) and reassemble — the simulated
        kernel path."""
        window = self.model.register_bytes
        registers = bytes(message[:window])
        remainder = bytes(message[window:])
        self.simulated_seconds += self.model.transfer_time(len(message))
        self.bytes_carried += len(message)
        return registers + remainder

    def call(self, request):
        delivered = self._transfer(request)
        buffer = self._reply_buf
        buffer.reset()
        has_reply = self._dispatch(delivered, self._impl, buffer)
        if not has_reply:
            raise TransportError(
                "two-way call reached a oneway-only dispatch path"
            )
        return self._transfer(buffer.getvalue())

    def send(self, request):
        delivered = self._transfer(request)
        buffer = self._reply_buf
        buffer.reset()
        self._dispatch(delivered, self._impl, buffer)
