"""Graceful-shutdown signal wiring for the serving CLI verbs.

``flick serve`` / ``flick gateway`` historically relied on
``KeyboardInterrupt`` for shutdown, which only covers an interactive
ctrl-C.  Orchestrators speak SIGTERM (and SIGHUP for configuration
reload), so :class:`SignalDriver` maps:

* ``SIGTERM`` / ``SIGINT`` → the shutdown event (callers then *drain*:
  finish in-flight replies, refuse new work, exit 0);
* ``SIGHUP`` → an optional callback (the supervisor's zero-downtime
  schema rollout; ignored when no callback is given).

Signal handlers can only be installed from the main thread; when the
caller runs elsewhere (tests drive ``flick serve`` on a worker thread),
installation degrades to a plain waitable event and ctrl-C keeps
working through ``KeyboardInterrupt`` as before.
"""

from __future__ import annotations

import signal
import threading


class SignalDriver:
    """Maps process signals onto an event (+ optional SIGHUP callback)."""

    def __init__(self, on_hup=None):
        self._shutdown = threading.Event()
        self._on_hup = on_hup
        self._previous = {}
        self.installed = False
        self.last_signal = None

    def install(self):
        """Install handlers; harmless off the main thread."""
        handled = [signal.SIGTERM, signal.SIGINT]
        if hasattr(signal, "SIGHUP"):
            handled.append(signal.SIGHUP)
        try:
            for signum in handled:
                if (hasattr(signal, "SIGHUP")
                        and signum == signal.SIGHUP):
                    self._previous[signum] = signal.signal(
                        signum, self._handle_hup)
                else:
                    self._previous[signum] = signal.signal(
                        signum, self._handle_shutdown)
            self.installed = True
        except ValueError:
            # Not the main thread: leave process signal handling alone.
            self.uninstall()
        return self

    def uninstall(self):
        previous, self._previous = self._previous, {}
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass
        self.installed = False

    # -- handlers (run in the main thread, keep them tiny) -------------

    def _handle_shutdown(self, signum, _frame):
        self.last_signal = signum
        self._shutdown.set()

    def _handle_hup(self, signum, _frame):
        self.last_signal = signum
        if self._on_hup is not None:
            self._on_hup()

    # -- caller API ----------------------------------------------------

    def request_shutdown(self):
        self._shutdown.set()

    @property
    def shutdown_requested(self):
        return self._shutdown.is_set()

    def wait(self, timeout=None):
        """Block until shutdown is requested (or *timeout* elapses).

        Returns True when a shutdown was requested.  Waits in slices so
        ``KeyboardInterrupt`` still lands promptly when no handler
        could be installed.
        """
        if timeout is not None:
            return self._shutdown.wait(timeout)
        while not self._shutdown.wait(3600):
            pass
        return True

    def __enter__(self):
        return self.install()

    def __exit__(self, exc_type, exc_value, traceback):
        self.uninstall()
        return False
