"""The RFC 1831 record-marking codec, shared by every stream transport.

ONC RPC's record marking (RFC 1831 section 10) frames each message as a
sequence of fragments; each fragment is preceded by a 4-byte big-endian
word whose top bit marks the final fragment and whose low 31 bits give the
fragment length.  The blocking TCP transport, the asyncio runtime, and the
tests all share this one implementation so that framing behavior — and its
failure modes — are identical everywhere.

Two entry points:

* :func:`encode_record` frames a payload (optionally splitting it into
  several fragments, which peers must accept).
* :class:`RecordDecoder` is an incremental push parser: ``feed()`` it byte
  chunks as they arrive and it yields complete records, independent of how
  the payload was fragmented by the sender or the network.
"""

from __future__ import annotations

import struct

from repro.errors import WireFormatError

#: High bit of the record-marking word: this fragment is the last one.
LAST_FRAGMENT = 0x80000000

#: Size of the record-marking word.
HEADER_SIZE = 4

#: Refuse records larger than this (a malicious or corrupt header would
#: otherwise make a receiver buffer up to 2 GiB per record).
MAX_RECORD_SIZE = 64 * 1024 * 1024

#: Refuse records spread over absurdly many empty fragments (a peer
#: streaming zero-length non-final fragments would otherwise pin the
#: connection forever without ever completing a record).
MAX_FRAGMENTS_PER_RECORD = 4096


def encode_record(payload, max_fragment=None):
    """Frame *payload* (bytes-like) as one record; returns ``bytes``.

    ``max_fragment`` splits the payload into fragments of at most that
    many bytes — wire-legal per RFC 1831 and used by the fragmentation
    tests; receivers reassemble transparently.
    """
    data = bytes(payload)
    if max_fragment is None or len(data) <= max_fragment:
        return struct.pack(">I", LAST_FRAGMENT | len(data)) + data
    if max_fragment <= 0:
        raise ValueError("max_fragment must be positive")
    parts = []
    for start in range(0, len(data), max_fragment):
        piece = data[start:start + max_fragment]
        word = len(piece)
        if start + max_fragment >= len(data):
            word |= LAST_FRAGMENT
        parts.append(struct.pack(">I", word))
        parts.append(piece)
    return b"".join(parts)


class RecordDecoder:
    """Incremental record-marking parser.

    Feed arbitrary byte chunks; complete records come back in order.  The
    decoder enforces :data:`MAX_RECORD_SIZE` and
    :data:`MAX_FRAGMENTS_PER_RECORD`, raising :class:`WireFormatError`
    (a :class:`~repro.errors.TransportError`) with the offending length on
    violation — the connection is then unusable, framing has lost sync.
    """

    __slots__ = ("_buffer", "_fragments", "_record_size", "_fragment_count",
                 "max_record_size")

    def __init__(self, max_record_size=MAX_RECORD_SIZE):
        self._buffer = bytearray()
        self._fragments = []
        self._record_size = 0
        self._fragment_count = 0
        self.max_record_size = max_record_size

    def feed(self, data):
        """Consume *data*; return the list of completed records."""
        self._buffer.extend(data)
        records = []
        while True:
            if len(self._buffer) < HEADER_SIZE:
                return records
            (word,) = struct.unpack_from(">I", self._buffer, 0)
            length = word & ~LAST_FRAGMENT
            if self._record_size + length > self.max_record_size:
                raise WireFormatError(
                    "record of %d+ bytes exceeds the %d-byte limit"
                    % (self._record_size + length, self.max_record_size),
                    field="record_size",
                    limit=self.max_record_size,
                    actual=self._record_size + length,
                )
            if len(self._buffer) < HEADER_SIZE + length:
                return records
            fragment = bytes(self._buffer[HEADER_SIZE:HEADER_SIZE + length])
            del self._buffer[:HEADER_SIZE + length]
            self._fragments.append(fragment)
            self._record_size += length
            self._fragment_count += 1
            if word & LAST_FRAGMENT:
                records.append(b"".join(self._fragments))
                self._fragments = []
                self._record_size = 0
                self._fragment_count = 0
            elif self._fragment_count >= MAX_FRAGMENTS_PER_RECORD:
                raise WireFormatError(
                    "record spread over more than %d fragments"
                    % MAX_FRAGMENTS_PER_RECORD,
                    field="fragment_count",
                    limit=MAX_FRAGMENTS_PER_RECORD,
                    actual=self._fragment_count,
                )

    @property
    def pending_bytes(self):
        """Bytes buffered toward an incomplete record (diagnostics)."""
        return len(self._buffer) + self._record_size

    def at_record_boundary(self):
        """True when no partial record is buffered (clean EOF check)."""
        return not self._buffer and not self._fragments
