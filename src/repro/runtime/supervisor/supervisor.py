"""The supervisor: spawn, restart, and roll workers over one address.

See the package docstring for the model.  The supervisor owns:

* the **listen address** — with ``SO_REUSEPORT`` it binds a placeholder
  socket (bound, never listening) that pins the concrete port while
  each worker binds its own listening socket to it; without the option
  it binds the one listener itself and children inherit the fd;
* the **fleet** — one slot per worker; a monitor thread reaps crashed
  workers and respawns them with exponential per-slot backoff
  (deterministic: ``base * 2**(failures-1)``, capped, reset after a
  stable-uptime window);
* the **schema generation** — ``rollout()`` re-reads the IDL file,
  diffs it against the running generation with :func:`repro.compat
  .diff_texts` under the serving protocol, and replaces workers one at
  a time (graceful drain, then spawn, then wait ready) only when the
  verdict is ``WIRE_IDENTICAL`` or ``DECODE_COMPATIBLE``.  A
  ``BREAKING`` schema is refused with the full report and the running
  generation keeps serving.  Generation schemas are written to
  content-hashed side-by-side files, so a worker's config names
  exactly the bytes it compiled;
* the **aggregated view** — worker metrics sum into one Prometheus
  exposition (:func:`merge_prometheus`) under the supervisor's own
  restart/rollout/up metrics, and live payload-shape profiles merge
  via :meth:`ProfileSnapshot.merge`.
"""

from __future__ import annotations

import glob
import hashlib
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

from repro.errors import FlickError, TransportError
from repro.obs.metrics import MetricsRegistry, parse_prometheus
from repro.runtime.supervisor.config import WorkerConfig
from repro.runtime.supervisor.control import ControlClient

#: Map diff exit codes onto verdict names for rollout outcomes.
_VERDICTS = {0: "WIRE_IDENTICAL", 1: "DECODE_COMPATIBLE", 2: "BREAKING"}


def merge_prometheus(texts):
    """Sum several Prometheus expositions into one.

    Counter and histogram series (including cumulative ``_bucket``
    lines, which stay cumulative under addition) sum across workers;
    ``*_sample_rate`` gauges take the max (every worker reports its
    configured rate).  ``# HELP``/``# TYPE`` lines are preserved from
    the first exposition that carries them.
    """
    meta = {}
    emitted_meta = set()
    values = {}
    order = []
    for text in texts:
        for line in text.splitlines():
            if line.startswith("#"):
                parts = line.split(None, 3)
                if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                    meta.setdefault(parts[2], {}).setdefault(
                        parts[1], line)
        for name, series in parse_prometheus(text).items():
            if name not in values:
                values[name] = {}
                order.append(name)
            for labels, value in series.items():
                if name.endswith("_sample_rate"):
                    values[name][labels] = max(
                        values[name].get(labels, 0.0), value)
                else:
                    values[name][labels] = (
                        values[name].get(labels, 0.0) + value)
    lines = []
    for name in order:
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in meta:
                family = name[:-len(suffix)]
                break
        if family in meta and family not in emitted_meta:
            emitted_meta.add(family)
            for kind in ("HELP", "TYPE"):
                if kind in meta[family]:
                    lines.append(meta[family][kind])
        for labels in sorted(values[name]):
            value = values[name][labels]
            text_value = ("%d" % value if value == int(value)
                          else repr(value))
            if labels:
                label_text = "{%s}" % ",".join(
                    '%s="%s"' % (key, _escape_label(val))
                    for key, val in labels)
            else:
                label_text = ""
            lines.append("%s%s %s" % (name, label_text, text_value))
    return "\n".join(lines) + "\n"


def _escape_label(value):
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


class _WorkerHandle:
    """One slot's live state."""

    __slots__ = ("slot", "process", "control", "pid", "generation",
                 "started_at", "failures", "respawn_at", "expected_exit")

    def __init__(self, slot):
        self.slot = slot
        self.process = None
        self.control = None
        self.pid = None
        self.generation = 0
        self.started_at = 0.0
        self.failures = 0
        self.respawn_at = None
        self.expected_exit = False


class Supervisor:
    """Run N workers over one listen address; restart and roll them.

    Args:
        template: the :class:`WorkerConfig` shared by every slot (the
            supervisor fills in slot, generation, fds, and the
            resolved port).
        workers: fleet size.
        idl_path: the operator-visible IDL file.  ``rollout()``
            re-reads it; the running generation is a content-hashed
            copy, so editing this file never changes what live workers
            compiled.
        restart_backoff: base seconds before restarting a crashed
            worker; doubles per consecutive failure.
        backoff_cap: upper bound on the restart delay.
        stable_after: uptime after which a slot's failure count resets.
        ready_timeout: seconds to wait for a spawned worker to accept.
        profile_path: when set, workers profile payload shapes and the
            merged snapshot lands here at :meth:`stop`.
        report: callable for operator-facing lines (default: print).
        force_inherited_listener: use the inherited-fd fallback even
            where ``SO_REUSEPORT`` exists (exercised by tests).
    """

    def __init__(self, template, workers, *, idl_path,
                 restart_backoff=0.5, backoff_cap=8.0, stable_after=5.0,
                 ready_timeout=30.0, profile_path=None, report=None,
                 force_inherited_listener=False):
        if workers < 1:
            raise FlickError("--workers must be at least 1")
        self.template = template
        self.workers = workers
        self.idl_path = idl_path
        self.restart_backoff = restart_backoff
        self.backoff_cap = backoff_cap
        self.stable_after = stable_after
        self.ready_timeout = ready_timeout
        self.profile_path = profile_path
        self._report = report or (lambda line: print(line, flush=True))
        self._force_inherited = force_inherited_listener
        self.host = template.host
        self.port = template.port
        self.generation = 0
        self.backend_name = template.backend
        self.interface_name = None
        self.restart_log = []  # (monotonic, slot, exit_code, delay)
        self._handles = []
        self._lock = threading.RLock()
        self._stop_event = threading.Event()
        self._rollout_requested = threading.Event()
        self._stopping = False
        self._monitor_thread = None
        self._placeholder = None
        self._listener = None
        self._listen_fd = None
        self._workdir = None
        self._profile_dir = None
        self._current_text = None
        self._generation_path = None
        self.registry = MetricsRegistry()
        self._restarts = self.registry.counter(
            "flick_supervisor_restarts_total",
            "Workers restarted after an unexpected exit", ("slot",))
        self._rollouts = self.registry.counter(
            "flick_supervisor_rollouts_total",
            "Schema rollouts by outcome", ("outcome",))
        self._worker_up = self.registry.gauge(
            "flick_supervisor_worker_up",
            "1 while the slot's worker process is running", ("slot",))
        self._gen_gauge = self.registry.gauge(
            "flick_supervisor_generation",
            "Schema generation currently serving")
        self._workers_gauge = self.registry.gauge(
            "flick_supervisor_workers", "Configured fleet size")

    # -- lifecycle ------------------------------------------------------

    def start(self):
        """Resolve the address, validate the schema, spawn the fleet."""
        self._workdir = tempfile.mkdtemp(prefix="flick-supervisor-")
        if self.profile_path is not None:
            self._profile_dir = os.path.join(self._workdir, "profiles")
            os.makedirs(self._profile_dir, exist_ok=True)
        with open(self.idl_path) as handle:
            self._current_text = handle.read()
        self._resolve_schema()
        self._generation_path = self._write_generation(
            self._current_text)
        self._setup_listen()
        self._workers_gauge.set(self.workers)
        self._gen_gauge.set(0)
        with self._lock:
            for slot in range(self.workers):
                handle = _WorkerHandle(slot)
                self._handles.append(handle)
                self._spawn(handle, self.generation)
        self._wait_all_ready()
        self._monitor_thread = threading.Thread(
            target=self._monitor, name="flick-supervisor", daemon=True)
        self._monitor_thread.start()
        return self

    def _resolve_schema(self):
        """Compile once in-parent: fail fast and learn the protocol."""
        from repro.runtime.supervisor.worker import _compile_one

        template = self.template
        if template.kind == "gateway":
            result = _compile_one(
                self.idl_path, template.lang,
                interface=template.interface, pgen=None,
                backend=template.backend)
        else:
            result = _compile_one(
                self.idl_path, template.lang,
                interface=template.interface, pgen=template.pgen,
                backend=template.backend)
        self.backend_name = result.stubs.backend_name
        self.interface_name = result.stubs.interface_name

    def _write_generation(self, text):
        """A content-hashed side-by-side copy of one schema version."""
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]
        suffix = os.path.splitext(self.idl_path)[1] or ".idl"
        path = os.path.join(self._workdir, "schema-%s%s"
                            % (digest, suffix))
        if not os.path.exists(path):
            with open(path, "w") as handle:
                handle.write(text)
        return path

    def _setup_listen(self):
        """Pin the concrete port; pick the sharing strategy."""
        use_reuseport = (hasattr(socket, "SO_REUSEPORT")
                         and not self._force_inherited)
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if use_reuseport:
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self.host, self.port))
            self.port = sock.getsockname()[1]
            if use_reuseport:
                # Bound but never listening: holds the port (and the
                # reuseport group) across worker restarts without
                # receiving connections itself.
                self._placeholder = sock
            else:
                sock.listen(128)
                self._listener = sock
                self._listen_fd = sock.fileno()
        except OSError:
            sock.close()
            raise

    def _spawn(self, handle, generation, generation_path=None):
        parent_sock, child_sock = socket.socketpair()
        sys_paths = list(self.template.sys_paths)
        if not sys_paths:
            sys_paths = [os.getcwd()]
        config = self.template.but(
            slot=handle.slot, generation=generation,
            idl_path=generation_path or self._generation_path,
            host=self.host,
            port=self.port, listen_fd=self._listen_fd,
            control_fd=child_sock.fileno(),
            profile_dir=self._profile_dir, sys_paths=sys_paths)
        config_path = os.path.join(
            self._workdir, "worker-%d.json" % handle.slot)
        config.save(config_path)
        src_path = os.path.dirname(os.path.dirname(os.path.abspath(
            __import__("repro").__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src_path] + ([env["PYTHONPATH"]]
                          if env.get("PYTHONPATH") else []))
        pass_fds = [child_sock.fileno()]
        if self._listen_fd is not None:
            pass_fds.append(self._listen_fd)
        handle.process = subprocess.Popen(
            [sys.executable, "-m", "repro.runtime.supervisor.worker",
             config_path],
            pass_fds=pass_fds, env=env)
        child_sock.close()
        handle.control = ControlClient(parent_sock)
        handle.pid = handle.process.pid
        handle.generation = generation
        handle.started_at = time.monotonic()
        handle.respawn_at = None
        handle.expected_exit = False
        self._worker_up.labels(str(handle.slot)).set(1)

    def _wait_ready(self, handle, timeout=None):
        deadline = time.monotonic() + (timeout or self.ready_timeout)
        while time.monotonic() < deadline:
            code = handle.process.poll()
            if code is not None:
                raise FlickError(
                    "worker slot=%d exited with code %s during startup"
                    % (handle.slot, code))
            try:
                status = handle.control.status(timeout=1.0)
            except TransportError:
                time.sleep(0.05)
                continue
            if status.get("accepting"):
                return
            time.sleep(0.05)
        raise FlickError(
            "worker slot=%d did not become ready within %.1fs"
            % (handle.slot, timeout or self.ready_timeout))

    def _wait_all_ready(self):
        for handle in self._handles:
            self._wait_ready(handle)

    # -- crash supervision ---------------------------------------------

    def _monitor(self):
        while not self._stop_event.wait(0.1):
            if self._rollout_requested.is_set():
                self._rollout_requested.clear()
                try:
                    self.rollout()
                except Exception as error:
                    self._report("schema rollout failed: %s" % error)
            with self._lock:
                if not self._stopping:
                    self._reap_and_respawn()

    def _reap_and_respawn(self):
        now = time.monotonic()
        for handle in self._handles:
            if handle.process is None:
                if handle.respawn_at is not None \
                        and now >= handle.respawn_at:
                    self._spawn(handle, self.generation)
                    self._report(
                        "worker slot=%d restarted (pid %d, attempt %d)"
                        % (handle.slot, handle.pid, handle.failures))
                continue
            code = handle.process.poll()
            if code is None:
                if handle.failures and \
                        now - handle.started_at > self.stable_after:
                    handle.failures = 0
                continue
            handle.control.close()
            self._worker_up.labels(str(handle.slot)).set(0)
            if handle.expected_exit:
                handle.process = None
                continue
            handle.failures += 1
            delay = min(
                self.restart_backoff * (2 ** (handle.failures - 1)),
                self.backoff_cap)
            self._restarts.labels(str(handle.slot)).inc()
            self.restart_log.append((now, handle.slot, code, delay))
            handle.process = None
            handle.respawn_at = now + delay
            self._report(
                "worker slot=%d pid=%s exited with code %s;"
                " restarting in %.2fs"
                % (handle.slot, handle.pid, code, delay))

    # -- schema rollout -------------------------------------------------

    def request_rollout(self):
        """Schedule a rollout on the monitor thread (the SIGHUP path)."""
        self._rollout_requested.set()

    def rollout(self):
        """Re-read the IDL, gate on the compat verdict, roll the fleet.

        Returns ``{"outcome", "verdict", "report"}`` where outcome is
        ``rolled`` (every worker now serves the new generation),
        ``refused`` (BREAKING — nothing changed), or ``failed`` (a
        replacement worker never became ready; its slot was respawned
        on the old generation and remaining slots were left alone).
        """
        from repro.compat import diff_texts
        from repro.compat.report import diff_exit_code, diff_report_text

        with self._lock:
            with open(self.idl_path) as handle:
                new_text = handle.read()
            old_label = "generation-%d(running)" % self.generation
            try:
                diffs = diff_texts(
                    self._current_text, new_text, self.template.lang,
                    interface=self.template.interface,
                    protocols=(self.backend_name,),
                    old_name=old_label, new_name=self.idl_path)
            except FlickError as error:
                self._rollouts.labels("refused").inc()
                report = "new schema does not compile: %s" % error
                self._report("schema rollout refused: %s" % report)
                return {"outcome": "refused", "verdict": "ERROR",
                        "report": report}
            code = diff_exit_code(diffs)
            verdict = _VERDICTS[code]
            report = diff_report_text(diffs, old_label, self.idl_path)
            if code >= 2:
                self._rollouts.labels("refused").inc()
                self._report(
                    "schema rollout refused (BREAKING); the running"
                    " generation keeps serving:\n%s" % report)
                return {"outcome": "refused", "verdict": verdict,
                        "report": report}
            new_generation = self.generation + 1
            generation_path = self._write_generation(new_text)
            self._report(
                "schema rollout: %s -> generation %d (%s); rolling %d"
                " worker(s)" % (self.idl_path, new_generation, verdict,
                                len(self._handles)))
            for handle in self._handles:
                if not self._replace_worker(
                        handle, generation_path, new_generation):
                    self._rollouts.labels("failed").inc()
                    self._report(
                        "schema rollout failed at slot %d; slot"
                        " respawned on generation %d, remaining slots"
                        " untouched" % (handle.slot, self.generation))
                    return {"outcome": "failed", "verdict": verdict,
                            "report": report}
            self.generation = new_generation
            self._current_text = new_text
            self._generation_path = generation_path
            self._gen_gauge.set(new_generation)
            self._rollouts.labels("rolled").inc()
            self._report("schema rollout complete: generation %d (%s)"
                         % (new_generation, verdict))
            return {"outcome": "rolled", "verdict": verdict,
                    "report": report}

    def _replace_worker(self, handle, generation_path, generation):
        """Drain one worker, spawn its successor, wait for readiness.

        Returns False when the successor never became ready (the slot
        is respawned on the current generation instead).
        """
        process = handle.process
        handle.expected_exit = True
        if process is not None:
            try:
                handle.control.drain(
                    timeout=self.template.drain_timeout + 2.0)
            except TransportError:
                pass  # already dead; the wait below sorts it out
            try:
                process.wait(timeout=self.template.drain_timeout + 5.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        handle.control.close()
        self._worker_up.labels(str(handle.slot)).set(0)
        handle.process = None
        try:
            self._spawn(handle, generation, generation_path)
            self._wait_ready(handle)
            return True
        except FlickError as error:
            self._report("replacement worker slot=%d failed: %s"
                         % (handle.slot, error))
            if handle.process is not None:
                handle.process.kill()
                handle.process.wait()
                handle.process = None
            self._spawn(handle, self.generation)
            try:
                self._wait_ready(handle)
            except FlickError:
                pass  # the monitor keeps restarting it
            return False

    # -- aggregated views -----------------------------------------------

    def _live_controls(self):
        with self._lock:
            return [(handle.slot, handle.control)
                    for handle in self._handles
                    if handle.process is not None
                    and handle.control is not None
                    and not handle.control.closed]

    def metrics_text(self):
        """One exposition: supervisor metrics + summed worker metrics."""
        texts = [self.registry.render_prometheus()]
        for _slot, control in self._live_controls():
            try:
                texts.append(control.metrics_text(timeout=2.0))
            except TransportError:
                continue
        return merge_prometheus(texts)

    def profile_json(self):
        """Workers' live profile snapshots merged, or None."""
        from repro.obs.profile import ProfileSnapshot

        merged = None
        for _slot, control in self._live_controls():
            try:
                data = control.profile_json(timeout=2.0)
            except TransportError:
                continue
            if data is None:
                continue
            snapshot = ProfileSnapshot.from_json(data)
            if merged is None:
                merged = snapshot
            else:
                merged.merge(snapshot)
        return None if merged is None else merged.to_json()

    def status(self):
        """Per-slot status dicts (unreachable slots report alive=False)."""
        rows = []
        with self._lock:
            handles = list(self._handles)
        for handle in handles:
            row = {"slot": handle.slot, "pid": handle.pid,
                   "generation": handle.generation,
                   "alive": handle.process is not None
                   and handle.process.poll() is None}
            if row["alive"] and not handle.control.closed:
                try:
                    row.update(handle.control.status(timeout=1.0))
                except TransportError:
                    row["alive"] = False
            rows.append(row)
        return rows

    def healthy(self):
        """Liveness: the supervisor itself is running."""
        return (not self._stopping
                and self._monitor_thread is not None
                and self._monitor_thread.is_alive())

    def ready(self):
        """Readiness: every slot is accepting and not draining."""
        rows = self.status()
        if len(rows) < self.workers:
            return False
        return all(row["alive"] and row.get("accepting")
                   and not row.get("draining") for row in rows)

    # -- shutdown -------------------------------------------------------

    def stop(self):
        """SIGTERM the fleet, merge profiles, clean up."""
        self._stopping = True
        self._stop_event.set()
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=10.0)
            self._monitor_thread = None
        with self._lock:
            for handle in self._handles:
                if handle.process is not None \
                        and handle.process.poll() is None:
                    handle.expected_exit = True
                    handle.process.send_signal(signal.SIGTERM)
            for handle in self._handles:
                if handle.process is None:
                    continue
                try:
                    handle.process.wait(
                        timeout=self.template.drain_timeout + 5.0)
                except subprocess.TimeoutExpired:
                    handle.process.kill()
                    handle.process.wait()
                if handle.control is not None:
                    handle.control.close()
                self._worker_up.labels(str(handle.slot)).set(0)
                handle.process = None
        merged_profile = self._merge_profiles()
        for sock in (self._placeholder, self._listener):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        self._placeholder = self._listener = None
        if self._workdir is not None:
            shutil.rmtree(self._workdir, ignore_errors=True)
            self._workdir = None
        return merged_profile

    def _merge_profiles(self):
        """Fold every worker's ``profile.<pid>.json`` into one file."""
        if self._profile_dir is None or self.profile_path is None:
            return None
        from repro.obs.profile import ProfileSnapshot

        merged = None
        paths = sorted(glob.glob(
            os.path.join(self._profile_dir, "profile.*.json")))
        for path in paths:
            try:
                snapshot = ProfileSnapshot.load(path)
            except (OSError, ValueError):
                continue
            if merged is None:
                merged = snapshot
            else:
                merged.merge(snapshot)
        if merged is not None:
            merged.save(self.profile_path)
        return merged

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback):
        self.stop()
        return False
