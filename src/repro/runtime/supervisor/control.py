"""The per-worker control channel: newline-delimited JSON over a
socketpair.

The supervisor creates one ``socket.socketpair()`` per worker and passes
the child end's file descriptor in the worker's config.  Commands flow
parent → worker, one JSON object per line; each command gets exactly one
JSON-object reply echoing the command's ``seq`` number.  The channel
doubles as a liveness signal: the worker exits when it reads EOF (the
parent died), and the parent treats a closed channel as a dead worker.
Because EOF carries that meaning, a *timed-out* reply must not tear the
channel down — a worker may simply be busy (cold start, a long drain) —
so the client leaves the socket open and uses ``seq`` to discard the
stale reply when it eventually lands.

Commands the worker answers (see
:mod:`repro.runtime.supervisor.worker`):

``status``
    ``{"ok": true, "pid", "slot", "generation", "accepting",
    "in_flight", "draining"}``
``metrics``
    ``{"ok": true, "text": <Prometheus exposition>}``
``profile``
    ``{"ok": true, "snapshot": <ProfileSnapshot JSON> | null}``
``drain``
    Stop accepting, reply ``{"ok": true}`` immediately, then finish
    in-flight requests and exit 0.  The early reply lets the supervisor
    overlap the old worker's drain with spawning its replacement.
"""

from __future__ import annotations

import json
import socket
import threading
import time

from repro.errors import TransportError

#: Cap on a single control line; anything longer is a protocol bug.
MAX_LINE = 8 * 1024 * 1024


class ControlClient:
    """The parent-process side of one worker's control channel.

    Blocking, strictly request/reply, and locked so the monitor thread
    and the aggregated HTTP endpoint can share it safely.
    """

    def __init__(self, sock):
        self._sock = sock
        self._sock.setblocking(True)
        self._buffer = b""
        self._lock = threading.Lock()
        self._seq = 0
        self.closed = False

    def request(self, cmd, timeout=5.0, **fields):
        """Send one command, return its decoded reply.

        Raises :class:`TransportError` when the worker is unreachable.
        Only EOF and torn-channel errors close the channel; a timed-out
        reply leaves it open (the worker is busy, not dead — closing
        would read as parent death and make it exit) and the late reply
        is discarded by its ``seq`` on the next request.
        """
        self._seq += 1
        seq = self._seq
        message = dict(fields, cmd=cmd, seq=seq)
        payload = json.dumps(message).encode("utf-8") + b"\n"
        deadline = time.monotonic() + timeout
        with self._lock:
            if self.closed:
                raise TransportError("control channel is closed")
            try:
                self._sock.settimeout(timeout)
                self._sock.sendall(payload)
            except OSError as error:
                self.close()
                raise TransportError(
                    "control channel failed: %s" % error) from error
            while True:
                try:
                    line = self._read_line(deadline)
                except TimeoutError:
                    raise TransportError(
                        "control reply timed out (%s seq %d)"
                        % (cmd, seq)) from None
                except (OSError, ValueError) as error:
                    self.close()
                    raise TransportError(
                        "control channel failed: %s" % error) from error
                try:
                    reply = json.loads(line)
                except ValueError as error:
                    self.close()
                    raise TransportError(
                        "malformed control reply: %s" % error) from error
                if reply.get("seq") in (None, seq):
                    return reply
                # A late reply to an earlier, timed-out request.

    def _read_line(self, deadline):
        while b"\n" not in self._buffer:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError("control reply deadline")
            if len(self._buffer) > MAX_LINE:
                raise ValueError("control reply exceeds %d bytes"
                                 % MAX_LINE)
            self._sock.settimeout(remaining)
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("control channel EOF")
            self._buffer += chunk
        line, _, self._buffer = self._buffer.partition(b"\n")
        return line

    # -- command conveniences ------------------------------------------

    def status(self, timeout=5.0):
        return self.request("status", timeout=timeout)

    def metrics_text(self, timeout=5.0):
        return self.request("metrics", timeout=timeout).get("text", "")

    def profile_json(self, timeout=5.0):
        return self.request("profile", timeout=timeout).get("snapshot")

    def drain(self, timeout=5.0):
        return self.request("drain", timeout=timeout)

    def close(self):
        self.closed = True
        try:
            self._sock.close()
        except OSError:
            pass
