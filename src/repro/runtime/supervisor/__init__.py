"""Multi-process supervised serving with zero-downtime schema rollout.

``flick serve --workers N`` (and ``flick gateway --workers N``) runs a
*supervisor*: a parent process that owns the listen address, spawns N
worker processes sharing it (``SO_REUSEPORT`` accept sharding, or an
inherited listener where the option is missing), and keeps the fleet
serving through crashes and schema changes:

* a worker that dies is restarted with exponential backoff per slot;
  in-flight calls on the dead worker fail over via the client runtime's
  retry and stale-connection handling;
* ``SIGHUP`` re-reads the IDL file, diffs the running schema against it
  with the :mod:`repro.compat` engine, and — only when the verdict is
  ``WIRE_IDENTICAL`` or ``DECODE_COMPATIBLE`` — rolls new workers in
  one at a time with a graceful drain, so some workers always accept;
  a ``BREAKING`` change is refused with the full compat report and the
  old generation keeps serving;
* per-worker ``ServerStats`` and payload-shape profiles aggregate onto
  one ``/metrics`` + ``/profile`` endpoint, next to ``/healthz``
  (liveness) and ``/readyz`` (readiness: every worker accepting).

The pieces: :mod:`~repro.runtime.supervisor.config` is the JSON contract
between parent and worker; :mod:`~repro.runtime.supervisor.control` the
per-worker control channel; :mod:`~repro.runtime.supervisor.worker` the
worker entry point (``python -m repro.runtime.supervisor.worker``);
:mod:`~repro.runtime.supervisor.supervisor` the parent;
:mod:`~repro.runtime.supervisor.endpoint` the aggregated HTTP endpoint.
"""

from repro.runtime.supervisor.config import WorkerConfig
from repro.runtime.supervisor.control import ControlClient
from repro.runtime.supervisor.supervisor import (
    Supervisor,
    merge_prometheus,
)
from repro.runtime.supervisor.endpoint import SupervisorHttpServer

__all__ = [
    "ControlClient",
    "merge_prometheus",
    "Supervisor",
    "SupervisorHttpServer",
    "WorkerConfig",
]
