"""The JSON contract between the supervisor and its workers.

A worker process is spawned as ``python -m
repro.runtime.supervisor.worker CONFIG.json``; everything it needs —
what to compile, how to bind, which inherited file descriptors are the
shared listener and the control channel — travels in one
:class:`WorkerConfig` file the parent writes per spawn.  Keeping the
contract on disk (rather than pickled over a pipe) makes a worker
independently launchable for debugging: copy the file, run the module.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Optional


@dataclass
class WorkerConfig:
    """Everything one worker process needs to serve its share.

    Attributes:
        kind: ``"serve"`` (stub server) or ``"gateway"`` (protocol
            bridge).
        idl_path: the generation's IDL file (a content-named copy the
            supervisor wrote; never the operator's mutable original).
        lang: IDL language (``corba``/``oncrpc``) or None to detect.
        pgen, backend, interface: the compile selection, as for
            ``flick serve``.
        impl: ``module:Class`` servant spec (serve kind only).
        host, port: the shared listen address.  The supervisor resolves
            port 0 to a concrete port before the first spawn so every
            worker binds the same one.
        listen_fd: inherited listener file descriptor, or None when the
            worker should bind its own ``SO_REUSEPORT`` socket.
        control_fd: inherited socketpair end for the control channel.
        slot: stable worker index (restart metrics are labelled by it).
        generation: schema generation this worker serves.
        max_concurrency, dispatch_mode, max_pending: asyncio-server
            knobs, as for ``flick serve --aio``.
        drain_timeout: seconds granted to in-flight work at drain.
        profile_dir: when set, enable the payload-shape profiler and
            write ``profile.<pid>.json`` there at exit.
        profile_sample: profiler sampling rate (1/N).
        sys_paths: extra ``sys.path`` entries (the parent's working
            directory, so ``--impl`` specs resolve the same way).
        upstream_host, upstream_port, upstream_backend,
        upstream_idl_path, pool_size, fuse: gateway-kind settings
            mirroring ``flick gateway``.
        tiering: profile-guided tiered execution, as for ``flick serve
            --tiering``: ``"off"``, ``"auto"``, or a TierPolicy JSON
            file path.  Each worker runs its own engine; its tier
            metrics carry the worker's slot as the ``worker`` label so
            the supervisor's summed /metrics keeps them distinct.
    """

    kind: str = "serve"
    idl_path: str = ""
    lang: Optional[str] = None
    pgen: Optional[str] = None
    backend: Optional[str] = None
    interface: Optional[str] = None
    impl: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 0
    listen_fd: Optional[int] = None
    control_fd: int = -1
    slot: int = 0
    generation: int = 0
    max_concurrency: int = 64
    dispatch_mode: str = "thread"
    max_pending: Optional[int] = None
    drain_timeout: float = 5.0
    profile_dir: Optional[str] = None
    profile_sample: int = 64
    sys_paths: list = field(default_factory=list)
    upstream_host: Optional[str] = None
    upstream_port: Optional[int] = None
    upstream_backend: Optional[str] = None
    upstream_idl_path: Optional[str] = None
    pool_size: int = 4
    fuse: bool = True
    tiering: str = "off"

    def but(self, **changes):
        """A copy with *changes* applied (the template-to-slot step)."""
        return replace(self, **changes)

    def to_json(self):
        return asdict(self)

    @classmethod
    def from_json(cls, data):
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                "unknown worker-config fields: %s"
                % ", ".join(sorted(unknown)))
        return cls(**data)

    def save(self, path):
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)

    @classmethod
    def load(cls, path):
        with open(path) as handle:
            return cls.from_json(json.load(handle))
