"""The supervisor's aggregated HTTP endpoint.

One tiny HTTP/1.0 server (the :class:`~repro.obs.http
.MetricsHttpServer` idiom) exposing the whole fleet:

``GET /metrics``
    Supervisor restart/rollout/up metrics plus every worker's
    ``ServerStats``, summed into one Prometheus exposition.
``GET /profile``
    The workers' live payload-shape profiles merged into one
    :class:`~repro.obs.profile.ProfileSnapshot` JSON (404 while
    profiling is off).
``GET /healthz``
    Liveness: 200 while the supervisor runs, regardless of worker
    state — a crashed worker is the supervisor's job, not the
    orchestrator's.
``GET /readyz``
    Readiness: 200 only when **every** worker is accepting and none is
    draining; 503 otherwise (a rolling schema swap flickers this, by
    design).

Aggregation needs blocking control-channel round-trips, so each request
runs its handler on the default executor instead of the event loop.
"""

from __future__ import annotations

import asyncio
import threading

#: Cap on request-head size; anything longer is not a scraper.
MAX_REQUEST_BYTES = 8192


class SupervisorHttpServer:
    """Serves the fleet's aggregated observability endpoints."""

    def __init__(self, supervisor, host="127.0.0.1", port=0):
        self.supervisor = supervisor
        self._host = host
        self._port = port
        self.address = None
        self._server = None
        self._loop = None
        self._thread = None
        self._stop_event = None
        self._start_error = None

    # -- responses ------------------------------------------------------

    def _respond(self, path):
        """(status, content_type, body) for one GET; runs off-loop."""
        supervisor = self.supervisor
        if path == b"/metrics":
            body = supervisor.metrics_text().encode("utf-8")
            return (b"200 OK",
                    b"text/plain; version=0.0.4; charset=utf-8", body)
        if path == b"/profile":
            import json

            merged = supervisor.profile_json()
            if merged is None:
                return (b"404 Not Found",
                        b"text/plain; charset=utf-8",
                        b"profiling is off\n")
            return (b"200 OK", b"application/json; charset=utf-8",
                    json.dumps(merged, sort_keys=True).encode("utf-8"))
        if path == b"/healthz":
            if supervisor.healthy():
                return (b"200 OK", b"text/plain; charset=utf-8",
                        b"ok\n")
            return (b"503 Service Unavailable",
                    b"text/plain; charset=utf-8", b"stopping\n")
        if path == b"/readyz":
            if supervisor.ready():
                return (b"200 OK", b"text/plain; charset=utf-8",
                        b"ready\n")
            return (b"503 Service Unavailable",
                    b"text/plain; charset=utf-8", b"not ready\n")
        return (b"404 Not Found", b"text/plain; charset=utf-8",
                b"try /metrics /profile /healthz /readyz\n")

    # -- async API ------------------------------------------------------

    async def start_async(self):
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port)
        self.address = self._server.sockets[0].getsockname()
        return self

    async def aclose(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(self, reader, writer):
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                ConnectionError, OSError):
            writer.close()
            return
        if len(head) > MAX_REQUEST_BYTES:
            writer.close()
            return
        request_line = head.split(b"\r\n", 1)[0].split(b" ")
        path = request_line[1] if len(request_line) >= 2 else b""
        clean_path = path.split(b"?", 1)[0]
        try:
            if request_line[:1] == [b"GET"]:
                status, content_type, body = \
                    await self._loop.run_in_executor(
                        None, self._respond, clean_path)
            else:
                status = b"404 Not Found"
                content_type = b"text/plain; charset=utf-8"
                body = b"GET only\n"
            writer.write(b"HTTP/1.0 " + status + b"\r\n"
                         b"Content-Type: " + content_type + b"\r\n"
                         b"Content-Length: " + str(len(body)).encode()
                         + b"\r\n"
                         b"Connection: close\r\n\r\n" + body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    # -- sync facade ----------------------------------------------------

    def start(self):
        """Serve on a background event-loop thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("supervisor endpoint already started")
        started = threading.Event()
        self._start_error = None

        def run():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self._run_on_thread(started))
            finally:
                started.set()
                asyncio.set_event_loop(None)
                loop.close()

        self._thread = threading.Thread(
            target=run, name="flick-supervisor-http", daemon=True)
        self._thread.start()
        started.wait()
        if self._start_error is not None:
            error, self._start_error = self._start_error, None
            self._thread.join()
            self._thread = None
            raise error
        return self

    async def _run_on_thread(self, started):
        self._stop_event = asyncio.Event()
        try:
            await self.start_async()
        except Exception as error:
            self._start_error = error
            return
        finally:
            started.set()
        await self._stop_event.wait()
        await self.aclose()

    def stop(self, timeout=5.0):
        if self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=timeout)
        self._thread = None

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback):
        self.stop()
        return False
