"""The supervised worker process: ``python -m
repro.runtime.supervisor.worker CONFIG.json``.

A worker compiles its generation's IDL, binds its share of the listen
address (its own ``SO_REUSEPORT`` socket, or the listener inherited
from the parent), and serves it with the asyncio runtime while
answering the parent's control channel (status / metrics / profile /
drain).  ``SIGTERM`` and a ``drain`` command mean the same thing:
refuse new accepts, finish in-flight replies within the drain timeout,
write the profile snapshot (when profiling), exit 0.  EOF on the
control channel means the parent died; the worker drains and exits so
a half-killed fleet never lingers.
"""

from __future__ import annotations

import asyncio
import importlib
import json
import os
import signal
import socket
import sys

from repro.errors import FlickError
from repro.runtime.supervisor.config import WorkerConfig


def _load_servant(spec, stub_module):
    """Instantiate a ``module:Class`` servant (as ``flick serve`` does)."""
    module_name, separator, class_name = spec.partition(":")
    if not separator or not module_name or not class_name:
        raise FlickError(
            "worker impl must look like module:Class, not %r" % spec)
    try:
        impl_module = importlib.import_module(module_name)
    except ImportError as error:
        raise FlickError(
            "cannot import servant module %r: %s" % (module_name, error))
    try:
        impl_class = getattr(impl_module, class_name)
    except AttributeError:
        raise FlickError(
            "module %r has no class %r" % (module_name, class_name))
    try:
        return impl_class(stub_module)
    except TypeError:
        return impl_class()


def _compile_one(path, lang, *, interface, pgen, backend):
    """Compile one interface from *path* (mirrors the serve verb)."""
    from repro import api

    with open(path) as handle:
        text = handle.read()
    if lang is None:
        lang = api.detect_lang(text, name=path)
    if interface:
        return api.compile(
            text, lang, interface=interface, name=path,
            presentation=pgen, backend=backend)
    by_name = api.compile_all(
        text, lang, name=path, presentation=pgen, backend=backend)
    if not by_name:
        raise FlickError("%s defines no interfaces" % path)
    if len(by_name) > 1:
        raise FlickError(
            "%s defines several interfaces (%s); the supervisor must"
            " pin one" % (path, ", ".join(sorted(by_name))))
    return next(iter(by_name.values()))


def open_listen_socket(config):
    """The worker's share of the listen address.

    Either adopt the parent's listener (``listen_fd``), or bind an own
    ``SO_REUSEPORT`` socket to the already-resolved address — kernels
    then shard incoming connections across the workers' accept queues.
    """
    if config.listen_fd is not None:
        return socket.socket(fileno=config.listen_fd)
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((config.host, config.port))
        sock.listen(128)
    except OSError:
        sock.close()
        raise
    return sock


def _make_tiering(config, handle, stats):
    """The worker's tiering engine for *handle*, or None when off.

    The slot number becomes the ``worker`` metric label, so the
    supervisor's merged /metrics keeps every worker's
    ``flick_tier_current`` series distinct instead of summing them
    into nonsense.
    """
    from repro.runtime.tiering import TieringEngine, resolve_policy

    policy = resolve_policy(getattr(config, "tiering", "off"))
    if policy is None:
        return None
    if getattr(handle.stubs, "backend_instance", None) is None:
        return None
    return TieringEngine(
        handle, policy=policy, registry=stats.registry,
        worker=str(config.slot))


def build_server(config, listen_sock, stats):
    """The configured :class:`AioTcpServer` (serve) or gateway server."""
    from repro import obs

    if config.kind == "gateway":
        from repro.gateway import AioGatewayServer, build_plan

        ingress = _compile_one(
            config.idl_path, config.lang, interface=config.interface,
            pgen=None, backend=config.backend)
        egress = _compile_one(
            config.upstream_idl_path or config.idl_path, config.lang,
            interface=config.interface, pgen=None,
            backend=config.upstream_backend)
        plan = build_plan(ingress, egress, fuse=config.fuse)
        if config.profile_dir:
            obs.profile.configure(
                sample=config.profile_sample, registry=stats.registry)
        engine = _make_tiering(config, ingress, stats)
        return AioGatewayServer(
            plan, config.upstream_host, config.upstream_port,
            pool_size=config.pool_size, host=config.host,
            port=config.port, stats=stats,
            max_concurrency=config.max_concurrency,
            max_pending=config.max_pending,
            drain_timeout=config.drain_timeout,
            listen_sock=listen_sock,
            tiering=engine,
        )
    from repro.runtime import StubServer

    result = _compile_one(
        config.idl_path, config.lang, interface=config.interface,
        pgen=config.pgen, backend=config.backend)
    stub_module = result.module
    impl = _load_servant(config.impl, stub_module)
    if config.profile_dir:
        obs.profile.configure(
            sample=config.profile_sample, registry=stats.registry)
        obs.profile.instrument_stub_module(stub_module)
    # After the profiler: the engine's hotness wrappers must sit
    # outermost so every call is counted.
    engine = _make_tiering(config, result, stats)
    return StubServer(stub_module, impl).aio_server(
        config.host, config.port,
        max_concurrency=config.max_concurrency,
        dispatch_mode=config.dispatch_mode,
        max_pending=config.max_pending,
        drain_timeout=config.drain_timeout,
        stats=stats, listen_sock=listen_sock,
        tiering=engine,
    )


async def _control_loop(reader, writer, server, config, stats, state,
                        stop):
    """Answer parent commands until EOF (parent death) or drain."""
    from repro.obs import profile as obs_profile

    while True:
        try:
            line = await reader.readline()
        except (ConnectionError, OSError):
            line = b""
        if not line:
            stop.set()  # the parent is gone; do not serve headless
            return
        try:
            message = json.loads(line)
        except ValueError:
            continue
        cmd = message.get("cmd")
        if cmd == "status":
            reply = {
                "ok": True,
                "pid": os.getpid(),
                "slot": config.slot,
                "generation": config.generation,
                "accepting": server.accepting,
                "in_flight": server.in_flight,
                "draining": state["draining"],
            }
            if server.tiering:
                tiers = {}
                for engine in server.tiering:
                    tiers.update(engine.tier_summary())
                reply["tiers"] = tiers
        elif cmd == "metrics":
            reply = {"ok": True,
                     "text": stats.registry.render_prometheus()}
        elif cmd == "profile":
            profiler = obs_profile.active()
            reply = {
                "ok": True,
                "snapshot": (profiler.snapshot().to_json()
                             if profiler is not None else None),
            }
        elif cmd == "drain":
            state["draining"] = True
            await server.drain_async()
            reply = {"ok": True, "pid": os.getpid()}
        else:
            reply = {"ok": False, "error": "unknown command %r" % (cmd,)}
        if message.get("seq") is not None:
            reply["seq"] = message["seq"]
        try:
            writer.write(json.dumps(reply).encode("utf-8") + b"\n")
            await writer.drain()
        except (ConnectionError, OSError):
            stop.set()
            return
        if cmd == "drain":
            stop.set()
            return


async def amain(config):
    from repro.obs import profile as obs_profile
    from repro.runtime import ServerStats

    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    stats = ServerStats()
    listen_sock = open_listen_socket(config)
    server = build_server(config, listen_sock, stats)
    state = {"draining": False}
    await server.start_async()
    control_sock = socket.socket(fileno=config.control_fd)
    reader, writer = await asyncio.open_connection(sock=control_sock)
    control_task = loop.create_task(
        _control_loop(reader, writer, server, config, stats, state,
                      stop))
    print("flick worker slot=%d pid=%d gen=%d serving %s:%d"
          % (config.slot, os.getpid(), config.generation,
             config.host, config.port), flush=True)
    await stop.wait()
    state["draining"] = True
    await server.aclose(drain=True)
    if config.profile_dir:
        snapshot = obs_profile.shutdown()
        if snapshot is not None:
            snapshot.save(os.path.join(
                config.profile_dir, "profile.%d.json" % os.getpid()))
    control_task.cancel()
    try:
        writer.close()
    except Exception:
        pass
    return 0


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.runtime.supervisor.worker"
              " CONFIG.json", file=sys.stderr)
        return 2
    config = WorkerConfig.load(argv[0])
    for path in reversed(config.sys_paths):
        if path and path not in sys.path:
            sys.path.insert(0, path)
    try:
        return asyncio.run(amain(config))
    except KeyboardInterrupt:
        return 0
    except FlickError as error:
        print("flick worker: error: %s" % error, file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
