"""The asyncio RPC server: concurrent serving of generated stub modules.

:class:`AioTcpServer` serves the *same* generated ``dispatch`` functions
and the *same* record-marked wire traffic as the blocking
:class:`~repro.runtime.socket_transport.TcpServer`, but concurrently:

* many connections multiplex onto one event loop;
* many requests per connection run **in flight at once** (pipelining) —
  replies carry the protocol's own correlation id (ONC XID / GIOP
  request_id, echoed by the generated dispatch), so they may legally
  complete out of order and blocking clients still interoperate because a
  serial client only ever has one id outstanding;
* each dispatch runs either on a worker thread pool (safe for blocking
  servants) or inline on the loop (fastest for CPU-light servants);
* a semaphore caps in-flight requests: when full, the server stops
  *reading*, so TCP flow control pushes back on aggressive clients;
* shutdown is graceful: stop accepting, drain in-flight requests with a
  timeout, then close connections.

The server is usable from asyncio code (``await server.start_async()`` /
``await server.aclose()``) and from synchronous code (``start()`` /
``stop()`` / ``with server:`` run the event loop on a daemon thread),
mirroring the blocking servers' context-manager idiom.
"""

from __future__ import annotations

import asyncio
import contextvars
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.encoding.buffer import MarshalBuffer
from repro.errors import OverloadError, RuntimeFlickError, TransportError
from repro.obs import propagation, trace
from repro.runtime.framing import MAX_RECORD_SIZE, RecordDecoder, \
    encode_record
from repro.runtime.aio.correlation import probe

#: Marshal buffers retained per connection for reuse across requests.
BUFFER_POOL_LIMIT = 32

#: Socket read chunk size.
READ_CHUNK = 65536


class _Connection:
    """Per-connection serving state."""

    __slots__ = ("reader", "writer", "decoder", "write_lock", "buffers",
                 "tasks")

    def __init__(self, reader, writer, max_record_size):
        self.reader = reader
        self.writer = writer
        self.decoder = RecordDecoder(max_record_size)
        self.write_lock = asyncio.Lock()
        self.buffers = []
        self.tasks = set()

    def take_buffer(self):
        if self.buffers:
            return self.buffers.pop()
        return MarshalBuffer()

    def give_buffer(self, buffer):
        if len(self.buffers) < BUFFER_POOL_LIMIT:
            buffer.reset()
            self.buffers.append(buffer)


class AioTcpServer:
    """An asyncio server around a generated dispatch function.

    Args:
        dispatch: the stub module's ``dispatch(request, impl, buffer)``.
        impl: the servant.
        host, port: bind address; port 0 picks a free port.
        max_concurrency: cap on server-wide in-flight requests; reading
            stops while the cap is reached (backpressure).
        dispatch_mode: ``"thread"`` (default) runs each dispatch on a
            thread pool sized *max_concurrency* so blocking servants
            still interleave; ``"inline"`` runs dispatch directly on the
            event loop — fastest when servants never block.
        stats: an optional :class:`~repro.runtime.aio.stats.ServerStats`.
        op_names: optional mapping from demux keys to display names for
            stats (see :func:`repro.runtime.server.operation_names`).
        drain_timeout: seconds granted to in-flight requests at shutdown.
        max_record_size: per-record framing limit.
        error_encoder: the stub module's ``encode_error_reply(request,
            error, buffer)``.  When present, malformed requests and
            servant crashes are answered with protocol-correct error
            replies instead of dropping the connection; without it the
            historical close-on-error behaviour is kept.
        max_pending: overload bound — when all *max_concurrency* slots
            are busy, at most this many further requests wait for one;
            beyond that requests are shed with a protocol error reply
            (``None`` queues unboundedly via backpressure).
        fault_plan: an optional :class:`repro.faults.FaultPlan` applied
            to inbound requests (chaos testing of this server's clients).
        listen_sock: an already-bound ``socket.socket`` to accept on
            instead of binding *host*/*port* — how supervised workers
            share one address (their own ``SO_REUSEPORT`` socket, or a
            listener inherited from the parent process).
        tiering: a :class:`~repro.runtime.tiering.TieringEngine` (or an
            iterable of them — the gateway runs one per side) whose
            background poll thread is started and stopped with the
            server's own lifecycle.
    """

    def __init__(self, dispatch, impl, host="127.0.0.1", port=0, *,
                 max_concurrency=64, dispatch_mode="thread", stats=None,
                 op_names=None, drain_timeout=5.0,
                 max_record_size=MAX_RECORD_SIZE, error_encoder=None,
                 max_pending=None, fault_plan=None, listen_sock=None,
                 tiering=None):
        if dispatch_mode not in ("thread", "inline"):
            raise ValueError(
                "dispatch_mode must be 'thread' or 'inline', not %r"
                % (dispatch_mode,)
            )
        self._dispatch = dispatch
        self._impl = impl
        self._host = host
        self._port = port
        self.max_concurrency = max_concurrency
        self.dispatch_mode = dispatch_mode
        self.stats = stats
        self._op_names = op_names or {}
        self.drain_timeout = drain_timeout
        self.max_record_size = max_record_size
        self.error_encoder = error_encoder
        self.max_pending = max_pending
        self.fault_plan = fault_plan
        self.listen_sock = listen_sock
        if tiering is None:
            self.tiering = ()
        elif hasattr(tiering, "poll_once"):
            self.tiering = (tiering,)
        else:
            self.tiering = tuple(tiering)
        self._injector = None
        self._pending_waiters = 0
        self.address = None
        # Async state (valid between start_async and aclose).
        self._server = None
        self._loop = None
        self._executor = None
        self._semaphore = None
        self._connections = set()
        self._tasks = set()
        self._closing = False
        # Sync-facade state.
        self._thread = None
        self._stop_event = None
        self._start_error = None

    # ------------------------------------------------------------------
    # Async API
    # ------------------------------------------------------------------

    async def start_async(self):
        """Bind and start accepting; returns self."""
        self._loop = asyncio.get_running_loop()
        self._semaphore = asyncio.Semaphore(self.max_concurrency)
        self._pending_waiters = 0
        if self.fault_plan is not None:
            self._injector = self.fault_plan.injector()
        if self.dispatch_mode == "thread":
            self._executor = ThreadPoolExecutor(
                max_workers=self.max_concurrency,
                thread_name_prefix="flick-aio",
            )
        self._closing = False
        if self.listen_sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=self.listen_sock
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self._host, self._port
            )
        self.address = self._server.sockets[0].getsockname()
        for engine in self.tiering:
            engine.start()
        return self

    @property
    def accepting(self):
        """True while the listener is open and not draining."""
        return self._server is not None and not self._closing

    @property
    def in_flight(self):
        """Requests currently being served (draining waits on these)."""
        return len(self._tasks)

    async def drain_async(self):
        """Stop accepting new connections; keep in-flight work running.

        The first half of :meth:`aclose`, exposed separately so a
        supervised worker can refuse new accepts the moment a rollout
        (or SIGTERM) arrives, finish its in-flight replies, and only
        then tear connections down.
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def aclose(self, drain=True):
        """Graceful shutdown: refuse new work, drain in-flight, close."""
        await self.drain_async()
        if drain and self._tasks:
            done, pending = await asyncio.wait(
                set(self._tasks), timeout=self.drain_timeout
            )
            for task in pending:
                task.cancel()
            del done
        for connection in list(self._connections):
            connection.writer.close()
        # Give transports a tick to run their close callbacks.
        await asyncio.sleep(0)
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None
        for engine in self.tiering:
            engine.stop()
        self._server = None

    async def __aenter__(self):
        return await self.start_async()

    async def __aexit__(self, exc_type, exc_value, traceback):
        await self.aclose()
        return False

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer):
        connection = _Connection(reader, writer, self.max_record_size)
        self._connections.add(connection)
        try:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                import socket as _socket

                sock.setsockopt(_socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1)
            while not self._closing:
                data = await reader.read(READ_CHUNK)
                if not data:
                    break
                try:
                    records = connection.decoder.feed(data)
                except TransportError:
                    if self.stats is not None:
                        self.stats.malformed.inc()
                    break  # framing lost sync; drop the connection
                if not await self._admit_records(connection, records):
                    break  # injected connection reset
            # Half-close: the peer may still be waiting on in-flight
            # replies after shutting down its write side.
            if connection.tasks:
                await asyncio.wait(set(connection.tasks))
        except (ConnectionError, asyncio.CancelledError, OSError):
            pass
        finally:
            self._connections.discard(connection)
            writer.close()

    async def _admit_records(self, connection, records):
        """Run fault injection and overload shedding, then start tasks.

        Returns False when an injected fault calls for a connection
        reset (the caller drops the connection).
        """
        injector = self._injector
        for record in records:
            if injector is not None:
                outcome = injector.on_message(record)
                if outcome.reset:
                    return False
                deliveries = outcome.deliveries
            else:
                deliveries = ((record, 0.0),)
            for delivery in deliveries:
                if injector is not None:
                    payload, delay_s = delivery.payload, delivery.delay_s
                else:
                    payload, delay_s = delivery
                if delay_s:
                    await asyncio.sleep(delay_s)
                if not await self._admit_one(connection, payload):
                    continue  # shed; answered with an overload reply
        return True

    async def _admit_one(self, connection, record):
        """Shed or admit one record; admitted records become tasks."""
        if (self.max_pending is not None
                and self._semaphore.locked()
                and self._pending_waiters >= self.max_pending):
            if self.stats is not None:
                self.stats.shed.inc()
            buffer = connection.take_buffer()
            try:
                await self._send_error_reply(
                    connection, record,
                    OverloadError("server overloaded; try again"),
                    buffer, close_on_failure=False,
                )
            finally:
                connection.give_buffer(buffer)
            return False
        # Backpressure: block here (stopping further reads) until an
        # in-flight slot frees up.
        self._pending_waiters += 1
        try:
            await self._semaphore.acquire()
        finally:
            self._pending_waiters -= 1
        task = self._loop.create_task(
            self._serve_request(connection, record)
        )
        connection.tasks.add(task)
        self._tasks.add(task)
        task.add_done_callback(connection.tasks.discard)
        task.add_done_callback(self._tasks.discard)
        return True

    async def _send_error_reply(self, connection, record, error, buffer,
                                close_on_failure=True):
        """Answer *record* with a protocol error reply for *error*.

        Falls back to closing the connection (the pre-hardening
        behaviour) when no encoder is configured, the request is too
        damaged to answer (the encoder returns False — e.g. a oneway or
        an unparseable header), or encoding itself fails.
        """
        buffer.reset()
        encoded = False
        if self.error_encoder is not None:
            try:
                encoded = self.error_encoder(record, error, buffer)
            except Exception:  # a buggy encoder must not kill the loop
                encoded = False
        if not encoded:
            if close_on_failure:
                connection.writer.close()
            return False
        try:
            payload = encode_record(buffer.view())
            async with connection.write_lock:
                connection.writer.write(payload)
                await connection.writer.drain()
            return True
        except (ConnectionError, OSError):
            return False

    async def _serve_request(self, connection, record):
        tracer = trace.active()
        if tracer is None:
            await self._serve_one(connection, record, None)
            return
        # Join the client's trace if the request carries a context.
        with tracer.span("server.request",
                         parent=propagation.extract(record)) as span:
            await self._serve_one(connection, record, span)

    async def _invoke(self, record, buffer, span):
        """Produce the reply for one admitted record; returns has_reply.

        The default runs the generated ``dispatch`` on the executor (or
        inline); subclasses that answer a record some other way — the
        protocol gateway forwards it upstream — override this single
        seam and inherit all of the connection, shedding, fault, error
        reply, and tracing machinery.
        """
        if self._executor is not None:
            if span is not None:
                # Executor threads do not inherit this task's
                # contextvars; carry them over so the stub's
                # decode/encode spans nest here.
                context = contextvars.copy_context()
                return await self._loop.run_in_executor(
                    self._executor, context.run,
                    self._dispatch, record, self._impl, buffer,
                )
            return await self._loop.run_in_executor(
                self._executor, self._dispatch, record, self._impl,
                buffer,
            )
        return self._dispatch(record, self._impl, buffer)

    async def _serve_one(self, connection, record, span):
        started = time.perf_counter()
        op_key = None
        error = False
        buffer = connection.take_buffer()
        try:
            if self.stats is not None or span is not None:
                with trace.span("demux"):
                    try:
                        info = probe(record)
                        op_key = self._op_names.get(
                            info.op_key, info.op_key
                        )
                    except TransportError:
                        op_key = "?"
                if span is not None and op_key is not None:
                    span.set(op=str(op_key))
            try:
                with trace.span("dispatch"):
                    has_reply = await self._invoke(record, buffer, span)
            except RuntimeFlickError as exc:
                # Malformed or unsupported request.  The wire stayed in
                # sync (framing delivered a whole record), so answer
                # with a protocol error reply and keep serving the
                # connection; pipelined peers are unaffected.
                error = True
                if self.stats is not None:
                    self.stats.malformed.inc()
                if span is not None:
                    span.set(error=type(exc).__name__)
                await self._send_error_reply(connection, record, exc,
                                             buffer)
                return
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                # The servant itself crashed: an implementation bug, not
                # wire damage.  Report it as a system error and close
                # the connection — its state is suspect.
                error = True
                if self.stats is not None:
                    self.stats.servant_errors.inc()
                if span is not None:
                    span.set(error=type(exc).__name__,
                             error_detail=str(exc))
                await self._send_error_reply(connection, record, exc,
                                             buffer)
                connection.writer.close()
                return
            if has_reply:
                payload = encode_record(buffer.view())
                with trace.span("write", bytes=len(payload)):
                    async with connection.write_lock:
                        connection.writer.write(payload)
                        await connection.writer.drain()
        except (ConnectionError, asyncio.CancelledError, OSError):
            error = True
        finally:
            connection.give_buffer(buffer)
            self._semaphore.release()
            if self.stats is not None and op_key is not None:
                self.stats.record(
                    op_key, time.perf_counter() - started, error=error
                )

    # ------------------------------------------------------------------
    # Sync facade (event loop on a daemon thread)
    # ------------------------------------------------------------------

    def start(self):
        """Start serving on a background event-loop thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        started = threading.Event()
        self._start_error = None

        def run():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self._run_on_thread(started))
            finally:
                started.set()  # in case startup itself failed
                asyncio.set_event_loop(None)
                loop.close()

        self._thread = threading.Thread(
            target=run, name="flick-aio-server", daemon=True
        )
        self._thread.start()
        started.wait()
        if self._start_error is not None:
            error, self._start_error = self._start_error, None
            self._thread.join()
            self._thread = None
            raise error
        return self

    async def _run_on_thread(self, started):
        self._stop_event = asyncio.Event()
        try:
            await self.start_async()
        except Exception as error:  # surfaced by start()
            self._start_error = error
            return
        finally:
            started.set()
        await self._stop_event.wait()
        await self.aclose()

    def drain(self, timeout=None):
        """Bounded graceful drain (the SIGTERM path).

        :meth:`stop` already refuses new work and drains in-flight
        requests (``aclose`` grants them *drain_timeout* seconds); this
        alias gives every server the same drain verb.
        """
        self.stop(timeout=timeout)

    def stop(self, timeout=None):
        """Gracefully stop a server started with :meth:`start`."""
        if self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(
            timeout=timeout if timeout is not None
            else self.drain_timeout + 5.0
        )
        self._thread = None

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback):
        self.stop()
        return False
