"""The concurrent client runtime: multiplexed connections with pooling.

Three layers, outermost first:

* :class:`AioClientTransport` — a synchronous
  :class:`~repro.runtime.transport.Transport` (so every generated client
  proxy works unchanged) that drives a shared background event loop.
  Many threads may call through one transport simultaneously; their
  requests multiplex over the pool's connections.
* :class:`ConnectionPool` — asyncio-native: owns up to *size* multiplexed
  connections, routes each call to the least-loaded one, reconnects lazily,
  and applies :class:`~repro.runtime.aio.options.CallOptions` (deadlines,
  retry with exponential backoff for idempotent work).
* :class:`AioConnection` — one framed TCP connection carrying many
  in-flight requests.  Correlation rides in the protocol's own id field
  (ONC XID / GIOP request_id): the connection stamps a connection-unique
  id into each outgoing request and restores the caller's original id on
  the reply, so generated stubs — which verify ids themselves — never
  observe the remapping, and the wire stays byte-compatible with blocking
  peers.

Cancellation: cancelling a task blocked in :meth:`AioConnection.acall`
(or a deadline expiring) unregisters the pending entry; a late reply for
an unknown id is counted and dropped, and the connection stays usable.
"""

from __future__ import annotations

import asyncio
import threading

from repro.errors import (
    CircuitOpenError,
    DeadlineError,
    RemoteCallError,
    StaleConnectionError,
    TransportError,
    WireFormatError,
)
from repro.obs import propagation, trace
from repro.runtime.framing import MAX_RECORD_SIZE, RecordDecoder, \
    encode_record
from repro.runtime.transport import Transport
from repro.runtime.aio.correlation import probe, reply_error, rewrite_id
from repro.runtime.aio.options import CallOptions

READ_CHUNK = 65536


class AioConnection:
    """One framed TCP connection multiplexing many in-flight calls."""

    def __init__(self, reader, writer, max_record_size=MAX_RECORD_SIZE,
                 stats=None):
        self._reader = reader
        self._writer = writer
        self._decoder = RecordDecoder(max_record_size)
        self._write_lock = asyncio.Lock()
        self._pending = {}  # wire id -> (future, original id)
        self._next_id = 0
        self._closed = False
        self._close_reason = None
        self._stats = stats
        self._completed = 0  # calls answered over this connection
        self.orphan_replies = 0
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def open(cls, host, port, *, connect_timeout=10.0,
                   max_record_size=MAX_RECORD_SIZE, stats=None):
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), connect_timeout
            )
        except asyncio.TimeoutError:
            raise TransportError(
                "timed out connecting to %s:%s" % (host, port)
            ) from None
        except OSError as error:
            raise TransportError(
                "cannot connect to %s:%s: %s" % (host, port, error)
            ) from error
        sock = writer.get_extra_info("socket")
        if sock is not None:
            import socket as _socket

            sock.setsockopt(_socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1)
        return cls(reader, writer, max_record_size, stats=stats)

    # ------------------------------------------------------------------

    @property
    def in_flight(self):
        return len(self._pending)

    @property
    def closed(self):
        return self._closed

    def _allocate_id(self):
        # Connection-unique: skip ids still pending (the counter wraps at
        # 2^32, the width of both XID and GIOP request_id).
        while True:
            self._next_id = (self._next_id + 1) & 0xFFFFFFFF
            if self._next_id not in self._pending:
                return self._next_id

    async def _read_loop(self):
        reason = "connection closed by peer"
        wire_error = None
        try:
            while True:
                data = await self._reader.read(READ_CHUNK)
                if not data:
                    break
                for record in self._decoder.feed(data):
                    self._route_reply(record)
        except (ConnectionError, OSError) as error:
            reason = "connection lost: %s" % error
        except WireFormatError as error:
            # The reply stream itself is garbage; surface the structured
            # error to pending callers (it is never retried).
            reason = str(error)
            wire_error = error
        except TransportError as error:
            reason = str(error)
        except asyncio.CancelledError:
            reason = "connection closed"
        finally:
            self._fail_pending(reason, wire_error)

    def _route_reply(self, record):
        try:
            info = probe(record)
        except TransportError:
            self._count_orphan()
            return
        entry = self._pending.pop(info.correlation_id, None)
        if entry is None:
            # Deadline expired or the call was cancelled; drop the late
            # reply (counted so tests and diagnostics can see it).
            self._count_orphan()
            return
        future, original_id = entry
        if not future.done():
            future.set_result(rewrite_id(record, info, original_id))

    def _count_orphan(self):
        self.orphan_replies += 1
        if self._stats is not None:
            self._stats.orphan_replies.inc()

    def _fail_pending(self, reason, wire_error=None):
        self._closed = True
        self._close_reason = reason
        pending, self._pending = self._pending, {}
        for future, _original in pending.values():
            if not future.done():
                future.set_exception(
                    wire_error if wire_error is not None
                    else TransportError(reason)
                )
        try:
            self._writer.close()
        except (ConnectionError, OSError):  # pragma: no cover
            pass

    # ------------------------------------------------------------------

    async def acall(self, payload, deadline=None):
        """Send a two-way request; await and return its reply bytes."""
        if self._closed:
            raise TransportError(
                self._close_reason or "connection is closed"
            )
        tracer = trace.active()
        if tracer is not None:
            parent = trace.current_span()
            if parent is not None:
                payload = propagation.inject(payload, parent)
        info = probe(payload)
        wire_id = self._allocate_id()
        data = rewrite_id(payload, info, wire_id)
        future = asyncio.get_running_loop().create_future()
        self._pending[wire_id] = (future, info.correlation_id)
        try:
            try:
                with trace.span("send", bytes=len(data)):
                    async with self._write_lock:
                        self._writer.write(encode_record(data))
                        await self._writer.drain()
            except (ConnectionError, OSError) as error:
                # The connection died under the send.  Drop our own
                # pending entry first (its future must not receive the
                # blanket failure below — we raise right here), then
                # fail whatever else was in flight and close.
                self._pending.pop(wire_id, None)
                reused = self._completed > 0
                self._fail_pending("connection lost during send: %s"
                                   % error)
                if reused:
                    raise StaleConnectionError(
                        "pooled connection to %s was dead at send"
                        " time: %s" % (self._peer_name(), error)
                    ) from error
                raise TransportError(
                    "connection lost during send: %s" % error
                ) from error
            with trace.span("await.reply"):
                if deadline is None:
                    result = await future
                else:
                    try:
                        result = await asyncio.wait_for(future, deadline)
                    except asyncio.TimeoutError:
                        if self._stats is not None:
                            self._stats.deadline_expiries.inc()
                        raise DeadlineError(
                            "call exceeded its %.3fs deadline" % deadline
                        ) from None
            self._completed += 1
            return result
        finally:
            self._pending.pop(wire_id, None)

    def _peer_name(self):
        try:
            peer = self._writer.get_extra_info("peername")
        except Exception:
            peer = None
        return "%s:%s" % peer[:2] if peer else "peer"

    async def asend(self, payload):
        """Send a oneway request (no reply expected)."""
        if self._closed:
            raise TransportError(
                self._close_reason or "connection is closed"
            )
        if trace.active() is not None:
            parent = trace.current_span()
            if parent is not None:
                payload = propagation.inject(payload, parent)
        try:
            with trace.span("send", bytes=len(payload)):
                async with self._write_lock:
                    self._writer.write(encode_record(bytes(payload)))
                    await self._writer.drain()
        except (ConnectionError, OSError) as error:
            reused = self._completed > 0
            self._fail_pending("connection lost during send: %s" % error)
            if reused:
                raise StaleConnectionError(
                    "pooled connection to %s was dead at send time: %s"
                    % (self._peer_name(), error)
                ) from error
            raise TransportError(
                "connection lost during send: %s" % error
            ) from error

    async def aclose(self):
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._fail_pending("connection closed")


class ConnectionPool:
    """A pool of multiplexed connections with deadlines and retries.

    Connections are created lazily up to *pool_size*; each call goes to
    the least-loaded live connection.  Failed connections are discarded
    and re-established on demand.  ``connector`` is injectable for
    tests.  The historical *size* keyword keeps working but warns.
    """

    def __init__(self, host, port, *, pool_size=None, connect_timeout=10.0,
                 options=None, connector=None,
                 max_record_size=MAX_RECORD_SIZE, stats=None,
                 breaker=None, size=None):
        from repro.runtime.deprecation import renamed_kwarg

        pool_size = renamed_kwarg(
            "ConnectionPool", "size", size, "pool_size", pool_size,
            default=4,
        )
        self.host = host
        self.port = port
        self.size = max(1, pool_size)
        self.connect_timeout = connect_timeout
        self.options = options or CallOptions()
        self._connector = connector or self._default_connector
        self._max_record_size = max_record_size
        self._connections = []
        self._connect_lock = asyncio.Lock()
        self._closed = False
        self.stats = stats
        self.breaker = breaker
        if breaker is not None and stats is not None:
            breaker.bind_stats(stats)

    @property
    def pool_size(self):
        """The connection cap (the canonical name for :attr:`size`)."""
        return self.size

    async def _default_connector(self):
        return await AioConnection.open(
            self.host, self.port, connect_timeout=self.connect_timeout,
            max_record_size=self._max_record_size, stats=self.stats,
        )

    def _update_gauges(self):
        stats = self.stats
        if stats is None:
            return
        live = [c for c in self._connections if not c.closed]
        stats.open_connections.set(len(live))
        stats.in_flight.set(sum(c.in_flight for c in live))

    async def _get_connection(self):
        if self._closed:
            raise TransportError("connection pool is closed")
        self._connections = [
            connection for connection in self._connections
            if not connection.closed
        ]
        if self._connections and len(self._connections) >= self.size:
            return min(self._connections, key=lambda c: c.in_flight)
        # Prefer an idle existing connection over dialing a new one.
        for connection in self._connections:
            if connection.in_flight == 0:
                return connection
        async with self._connect_lock:
            if self._closed:
                raise TransportError("connection pool is closed")
            self._connections = [
                connection for connection in self._connections
                if not connection.closed
            ]
            if len(self._connections) < self.size:
                connection = await self._connector()
                self._connections.append(connection)
                return connection
        return min(self._connections, key=lambda c: c.in_flight)

    # ------------------------------------------------------------------

    def _attempts(self, options):
        if options.retry is None:
            return 1
        return max(1, options.retry.max_attempts)

    async def acall(self, payload, options=None, parent=None):
        """Two-way call with the pool's (or the given) options applied.

        *parent* optionally names the span this call nests under — the
        sync facade captures it on the caller's thread, where the proxy
        wrapper's ``call`` span lives, and hands it across the loop
        boundary explicitly (contextvars do not follow
        ``run_coroutine_threadsafe``).
        """
        tracer = trace.active()
        if tracer is None:
            return await self._acall_attempts(payload, options)
        with tracer.span("transport.call", parent=parent):
            return await self._acall_attempts(payload, options)

    async def _acall_attempts(self, payload, options):
        options = options or self.options
        attempts = self._attempts(options)
        stats = self.stats
        breaker = self.breaker
        last_error = None
        for attempt in range(attempts):
            if attempt:
                if stats is not None:
                    stats.retries.inc()
                await asyncio.sleep(options.retry.delay(attempt - 1))
            if breaker is not None and not breaker.allow():
                if stats is not None:
                    stats.breaker_rejections.inc()
                last_error = CircuitOpenError(
                    "circuit breaker is open; failing fast"
                )
                continue  # backoff, then probe again
            wrote_request = False
            try:
                # A connection that died while pooled fails instantly at
                # send time (StaleConnectionError: the request was never
                # delivered).  Idempotent calls get a free immediate
                # retry on a fresh connection — no backoff sleep, no
                # attempt consumed, and a full per-attempt deadline —
                # bounded by the pool size (every pooled connection
                # could be stale after a server restart).
                stale_budget = max(1, self.size)
                while True:
                    with trace.span("pool.acquire"):
                        connection = await self._get_connection()
                    self._update_gauges()
                    wrote_request = True  # past here the server may run it
                    try:
                        result = await connection.acall(
                            payload, deadline=options.deadline
                        )
                    except StaleConnectionError:
                        wrote_request = False  # the send never landed
                        if options.idempotent and stale_budget > 0:
                            if stats is not None:
                                stats.transport_errors.inc()
                            stale_budget -= 1
                            continue
                        raise  # the outer handler counts and classifies
                    break
                # A protocol error reply (GARBAGE_ARGS, MARSHAL, ...)
                # means the request never reached the servant; surface
                # it here so idempotent calls retry through transient
                # request corruption instead of failing in the stub.
                error = reply_error(result)
                if error is not None:
                    raise error
                if breaker is not None:
                    breaker.record_success()
                return result
            except DeadlineError as error:
                if breaker is not None:
                    breaker.record_failure()
                # By default an expired deadline spends the whole call's
                # budget; retry_deadlines opts idempotent calls into
                # per-attempt deadlines (lossy-network tolerance).
                if not (options.retry_deadlines and options.idempotent):
                    raise
                last_error = error
            except WireFormatError:
                # The peer answered with bytes that violate the
                # protocol; the same request fails the same way, so
                # retrying buys nothing — surface it immediately.
                if breaker is not None:
                    breaker.record_failure()
                if stats is not None:
                    stats.wire_format_errors.inc()
                raise
            except RemoteCallError as error:
                # A protocol-level error *reply*: the peer is healthy
                # (it parsed and answered), so the breaker sees success;
                # idempotent calls may retry (the request bytes may have
                # been damaged in transit).
                if breaker is not None:
                    breaker.record_success()
                if stats is not None:
                    stats.remote_errors.inc()
                last_error = error
                if not options.idempotent:
                    raise
            except TransportError as error:
                if breaker is not None:
                    breaker.record_failure()
                last_error = error
                if stats is not None:
                    stats.transport_errors.inc()
                # Connect failures are always retryable (nothing was
                # sent); post-send failures only for idempotent calls.
                if wrote_request and not options.idempotent:
                    raise
        raise last_error

    async def asend(self, payload, options=None):
        """Oneway send; always retryable (the issue's oneway semantics)."""
        options = options or self.options
        attempts = self._attempts(options)
        last_error = None
        payload = bytes(payload)
        for attempt in range(attempts):
            if attempt:
                await asyncio.sleep(options.retry.delay(attempt - 1))
            try:
                connection = await self._get_connection()
                await connection.asend(payload)
                return
            except TransportError as error:
                last_error = error
        raise last_error

    async def aclose(self):
        self._closed = True
        connections, self._connections = self._connections, []
        for connection in connections:
            await connection.aclose()

    @property
    def open_connections(self):
        return sum(
            1 for connection in self._connections if not connection.closed
        )


class _EventLoopThread:
    """A lazily-created background event loop shared by sync facades."""

    _shared = None
    _shared_lock = threading.Lock()

    def __init__(self):
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="flick-aio-client", daemon=True
        )
        self._thread.start()

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def run(self, coroutine, timeout=None):
        """Run *coroutine* on the loop; block for (and return) its result."""
        future = asyncio.run_coroutine_threadsafe(coroutine, self.loop)
        try:
            return future.result(timeout)
        except asyncio.TimeoutError:
            raise DeadlineError("call timed out") from None

    @classmethod
    def shared(cls):
        with cls._shared_lock:
            if cls._shared is None or not cls._shared._thread.is_alive():
                cls._shared = cls()
            return cls._shared


class AioClientTransport(Transport):
    """A synchronous Transport backed by the concurrent runtime.

    Drop-in for :class:`~repro.runtime.socket_transport.TcpClientTransport`
    — generated proxies work unchanged — but safe to share across threads:
    concurrent calls multiplex over a pool of connections instead of
    serializing.  Per-call deadlines and retry policy come from
    :class:`~repro.runtime.aio.options.CallOptions`; :meth:`options`
    derives a view with different options over the same pool.
    """

    def __init__(self, host, port, *, pool_size=1, options=None,
                 deadline=None, connect_timeout=10.0, loop_thread=None,
                 stats=None, breaker=None,
                 max_record_size=MAX_RECORD_SIZE):
        self._runner = loop_thread or _EventLoopThread.shared()
        options = options or CallOptions()
        if deadline is not None:
            # The common case deserves a direct spelling: a per-call
            # deadline without constructing CallOptions by hand.
            options = options.but(deadline=deadline)
        self._options = options
        self.stats = stats
        self._pool = ConnectionPool(
            host, port, pool_size=pool_size,
            connect_timeout=connect_timeout, options=self._options,
            max_record_size=max_record_size, stats=stats, breaker=breaker,
        )

    # The Transport interface --------------------------------------------

    def call(self, request):
        # Capture the caller-thread span (the proxy wrapper's "call")
        # here; the coroutine runs on the loop thread where the caller's
        # contextvars are invisible.
        return self._runner.run(
            self._pool.acall(bytes(request), self._options,
                             parent=trace.current_span())
        )

    def send(self, request):
        self._runner.run(self._pool.asend(bytes(request), self._options))

    def close(self):
        self._runner.run(self._pool.aclose())

    # Extras -------------------------------------------------------------

    def options(self, **changes):
        """A view over the same pool with changed :class:`CallOptions`.

        Example: ``client = Client(transport.options(deadline=0.2,
        idempotent=True))``.
        """
        return _OptionedTransport(self, self._options.but(**changes))

    @property
    def pool(self):
        """The underlying :class:`ConnectionPool` (async-native access)."""
        return self._pool


class _OptionedTransport(Transport):
    """A shallow view of an :class:`AioClientTransport` with its own
    :class:`CallOptions`; shares the pool and connections."""

    def __init__(self, base, options):
        self._base = base
        self._options = options

    def call(self, request):
        return self._base._runner.run(
            self._base._pool.acall(bytes(request), self._options,
                                   parent=trace.current_span())
        )

    def send(self, request):
        self._base._runner.run(
            self._base._pool.asend(bytes(request), self._options)
        )

    def close(self):
        """Closing a view is a no-op; close the base transport instead."""

    def options(self, **changes):
        return _OptionedTransport(self._base, self._options.but(**changes))
