"""Policy objects for the concurrent runtime: retries, deadlines, serving.

These are plain frozen dataclasses so they can be shared between threads,
embedded in CLI plumbing (``flick serve``), and compared in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for retryable failures.

    A call is retried only when it is safe: connection establishment
    failures (no request was ever written), oneway sends, and two-way
    calls explicitly marked idempotent via :class:`CallOptions`.  Deadline
    expiry is never retried — the time budget is already spent.
    """

    max_attempts: int = 3
    base_delay: float = 0.02
    multiplier: float = 2.0
    max_delay: float = 1.0

    def delay(self, attempt):
        """Backoff before retry number *attempt* (0-based)."""
        return min(self.base_delay * (self.multiplier ** attempt),
                   self.max_delay)


@dataclass(frozen=True)
class CallOptions:
    """Per-call knobs a client transport applies to every request.

    Attributes:
        deadline: seconds allowed per attempt (connect + send + reply);
            ``None`` disables the deadline.
        idempotent: marks two-way calls as safe to retry after transport
            failures that may have executed the request (read-only
            operations).  Oneway sends are always treated as retryable.
        retry: the backoff schedule; ``None`` disables retries entirely.
        retry_deadlines: also retry idempotent calls whose *per-attempt*
            deadline expired (e.g. the request was dropped by a lossy
            network).  Off by default: the historical semantics treat an
            expired deadline as the call's whole budget being spent.
    """

    deadline: Optional[float] = None
    idempotent: bool = False
    retry: Optional[RetryPolicy] = RetryPolicy()
    retry_deadlines: bool = False

    def but(self, **changes):
        """A copy with *changes* applied."""
        return replace(self, **changes)


@dataclass(frozen=True)
class ServeOptions:
    """Configuration for the ``flick serve`` verb and server helpers.

    Attributes:
        host/port: bind address (port 0 picks a free port).
        aio: serve with the asyncio runtime instead of the blocking
            thread-per-connection server.
        max_concurrency: in-flight request cap for the asyncio server
            (backpressure: reading stops while the limit is reached).
        dispatch_mode: ``"thread"`` runs each dispatch in a worker-thread
            pool sized ``max_concurrency`` (safe for blocking servants);
            ``"inline"`` runs dispatch on the event loop (fastest for
            non-blocking, CPU-light servants).
        stats: collect and report per-operation metrics.
        drain_timeout: seconds granted to in-flight requests at shutdown.
        trace_path: write finished spans to this JSONL file (enables
            tracing for the process).
        metrics_port: serve Prometheus metrics on this port (0 picks a
            free port; None disables the endpoint).
        max_pending: asyncio-server overload bound — when all
            *max_concurrency* slots are busy, at most this many further
            requests wait; beyond it requests are shed with a protocol
            error reply (None queues unboundedly via backpressure).
        fault_plan: path to a :class:`repro.faults.FaultPlan` JSON file
            applied to inbound requests (chaos testing).
    """

    host: str = "127.0.0.1"
    port: int = 0
    aio: bool = False
    max_concurrency: int = 64
    dispatch_mode: str = "thread"
    stats: bool = False
    drain_timeout: float = 5.0
    trace_path: Optional[str] = None
    metrics_port: Optional[int] = None
    max_pending: Optional[int] = None
    fault_plan: Optional[str] = None
