"""Client-side circuit breaker: fail fast while a peer is down.

The classic three-state machine:

* **closed** — calls flow; consecutive transport failures are counted.
* **open** — after *failure_threshold* consecutive failures the breaker
  rejects calls instantly (:class:`~repro.errors.CircuitOpenError`)
  for *recovery_time* seconds, so a dead peer costs nothing per call
  and gets no thundering herd on revival.
* **half-open** — after the cooldown, up to *half_open_max* probe calls
  are let through; one success closes the breaker, one failure reopens
  it (restarting the cooldown).

Wired into :class:`~repro.runtime.aio.client.ConnectionPool` (pass
``breaker=CircuitBreaker()``); state transitions are mirrored into
:class:`~repro.runtime.aio.stats.ClientStats` when one is bound.
The breaker is driven from a single event loop, so no locking.
"""

from __future__ import annotations

import time

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Gauge encoding of the state for /metrics.
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Consecutive-failure breaker with timed half-open recovery."""

    def __init__(self, failure_threshold=5, recovery_time=1.0,
                 half_open_max=1, clock=time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.half_open_max = max(1, half_open_max)
        self._clock = clock
        self._state = CLOSED
        self._failures = 0
        self._opened_at = None
        self._half_open_inflight = 0
        self._stats = None
        self.opens = 0
        self.rejections = 0

    # -- observability ----------------------------------------------------

    def bind_stats(self, stats):
        """Mirror state changes into a ClientStats; returns self."""
        self._stats = stats
        if stats is not None:
            stats.breaker_state.set(STATE_CODES[self._state])
        return self

    @property
    def state(self):
        """The current state, advancing open → half-open on its own."""
        if (self._state == OPEN
                and self._clock() - self._opened_at >= self.recovery_time):
            self._transition(HALF_OPEN)
            self._half_open_inflight = 0
        return self._state

    def _transition(self, state):
        self._state = state
        if self._stats is not None:
            self._stats.breaker_state.set(STATE_CODES[state])

    # -- the protocol used by ConnectionPool ------------------------------

    def allow(self):
        """May a call proceed right now?  (Counts a probe if half-open.)"""
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN:
            if self._half_open_inflight < self.half_open_max:
                self._half_open_inflight += 1
                return True
            self.rejections += 1
            return False
        self.rejections += 1
        return False

    def record_success(self):
        if self._state == HALF_OPEN:
            self._half_open_inflight = 0
            self._transition(CLOSED)
        self._failures = 0

    def record_failure(self):
        if self._state == HALF_OPEN:
            self._reopen()
            return
        self._failures += 1
        if self._state == CLOSED and self._failures >= self.failure_threshold:
            self._reopen()

    def _reopen(self):
        self._failures = 0
        self._half_open_inflight = 0
        self._opened_at = self._clock()
        self.opens += 1
        if self._stats is not None:
            self._stats.breaker_opens.inc()
        self._transition(OPEN)
