"""Header probes: correlation ids and operation keys in raw messages.

The concurrent runtime multiplexes many in-flight requests over one
connection.  Rather than invent a new envelope (which would break
interoperability with the blocking transports and with foreign ONC/GIOP
peers), correlation rides in the id field the protocols already carry:
the ONC RPC **XID** and the GIOP **request_id**.  Servers echo the id into
the reply — the generated dispatch functions already do this — so a
multiplexing client only needs to (a) stamp a connection-unique id into
each outgoing request, and (b) route each incoming reply by its id.

Generated stubs patch their own ids and verify them on replies
(``_check_reply``), so the client transport *rewrites* the id on the way
out and restores the original on the way back; stubs remain byte-level
oblivious to multiplexing, and blocking peers interoperate unchanged.

This module knows just enough of each protocol's header layout to find
the id field and (for stats) the operation key; bodies are never touched.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import TransportError

ONC_CALL = 0
ONC_REPLY = 1
GIOP_REQUEST = 0
GIOP_REPLY = 1


@dataclass(frozen=True)
class MessageInfo:
    """Where a message's correlation id lives, and what the message is.

    Attributes:
        protocol: ``"oncrpc"`` or ``"giop"``.
        kind: ``"call"`` or ``"reply"``.
        correlation_id: the id currently stored in the header.
        id_offset: byte offset of the 4-byte id field.
        id_format: the struct format for the id (endianness-aware).
        op_key: the demux key for calls (ONC procedure number or GIOP
            operation name bytes); ``None`` for replies.
        expects_reply: for GIOP requests, the ``response_expected`` flag;
            ONC calls always expect one at this layer (oneway ONC
            operations simply never read it).
    """

    protocol: str
    kind: str
    correlation_id: int
    id_offset: int
    id_format: str
    op_key: Optional[Union[int, bytes]] = None
    expects_reply: bool = True


def probe(payload):
    """Classify *payload* and locate its correlation id.

    Raises :class:`TransportError` for messages that are neither ONC RPC
    nor GIOP — such traffic cannot be multiplexed (there is no id field
    to correlate on) and callers should fall back to a serial transport.
    """
    data = bytes(payload) if not isinstance(payload, (bytes, bytearray)) \
        else payload
    if len(data) >= 12 and bytes(data[0:4]) == b"GIOP":
        return _probe_giop(data)
    if len(data) >= 8:
        return _probe_onc(data)
    raise TransportError(
        "message too short to correlate (%d bytes)" % len(data)
    )


def _probe_onc(data):
    xid, message_type = struct.unpack_from(">II", data, 0)
    if message_type == ONC_CALL:
        if len(data) < 24:
            raise TransportError("truncated ONC RPC call header")
        procedure = struct.unpack_from(">I", data, 20)[0]
        return MessageInfo("oncrpc", "call", xid, 0, ">I", procedure)
    if message_type == ONC_REPLY:
        return MessageInfo("oncrpc", "reply", xid, 0, ">I")
    raise TransportError(
        "not an ONC RPC message (type %d)" % message_type
    )


def _skip_giop_service_contexts(data, endian):
    """Offset just past the service-context list starting at byte 12."""
    count = struct.unpack_from(endian + "I", data, 12)[0]
    offset = 16
    for _ in range(count):
        if offset + 8 > len(data):
            raise TransportError("truncated GIOP service context")
        length = struct.unpack_from(endian + "I", data, offset + 4)[0]
        offset += 8 + length
        offset += -offset % 4
    return offset


def _probe_giop(data):
    endian = "<" if data[6] else ">"
    message_type = data[7]
    if message_type == GIOP_REQUEST:
        offset = _skip_giop_service_contexts(data, endian)
        if offset + 5 > len(data):
            raise TransportError("truncated GIOP Request header")
        request_id = struct.unpack_from(endian + "I", data, offset)[0]
        expects_reply = bool(data[offset + 4])
        # Skip the response_expected octet and the object key to reach
        # the operation name (the stub modules' demux key, sans NUL).
        position = offset + 5
        position += -position % 4
        key_length = struct.unpack_from(endian + "I", data, position)[0]
        position += 4 + key_length
        position += -position % 4
        op_length = struct.unpack_from(endian + "I", data, position)[0]
        op_key = bytes(data[position + 4:position + 3 + op_length])
        return MessageInfo("giop", "call", request_id, offset, endian + "I",
                           op_key, expects_reply)
    if message_type == GIOP_REPLY:
        offset = _skip_giop_service_contexts(data, endian)
        if offset + 4 > len(data):
            raise TransportError("truncated GIOP Reply header")
        request_id = struct.unpack_from(endian + "I", data, offset)[0]
        return MessageInfo("giop", "reply", request_id, offset, endian + "I")
    raise TransportError("unsupported GIOP message type %d" % message_type)


def reply_correlation_id(payload):
    """The correlation id of a reply message (fast path for readers)."""
    return probe(payload).correlation_id


def rewrite_id(payload, info, new_id):
    """Return *payload* with the correlation id replaced by *new_id*."""
    data = bytearray(payload)
    struct.pack_into(info.id_format, data, info.id_offset, new_id)
    return bytes(data)
