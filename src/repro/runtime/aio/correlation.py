"""Header probes: correlation ids and operation keys in raw messages.

The concurrent runtime multiplexes many in-flight requests over one
connection.  Rather than invent a new envelope (which would break
interoperability with the blocking transports and with foreign ONC/GIOP
peers), correlation rides in the id field the protocols already carry:
the ONC RPC **XID** and the GIOP **request_id**.  Servers echo the id into
the reply — the generated dispatch functions already do this — so a
multiplexing client only needs to (a) stamp a connection-unique id into
each outgoing request, and (b) route each incoming reply by its id.

Generated stubs patch their own ids and verify them on replies
(``_check_reply``), so the client transport *rewrites* the id on the way
out and restores the original on the way back; stubs remain byte-level
oblivious to multiplexing, and blocking peers interoperate unchanged.

This module knows just enough of each protocol's header layout to find
the id field and (for stats) the operation key; bodies are never touched.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import RemoteCallError, TransportError

ONC_CALL = 0
ONC_REPLY = 1
GIOP_REQUEST = 0
GIOP_REPLY = 1
GIOP_MESSAGE_ERROR = 6

#: The reply-status sentinel generated GIOP stubs use for CORBA system
#: exceptions (see repro.backend.iiop.SYSTEM_EXCEPTION_STATUS).
_GIOP_SYSTEM_EXCEPTION = 0x7FFFFFFF

_ONC_ACCEPT_ERRORS = {
    1: "PROG_UNAVAIL",
    2: "PROG_MISMATCH",
    3: "PROC_UNAVAIL",
    4: "GARBAGE_ARGS",
    5: "SYSTEM_ERR",
}


@dataclass(frozen=True)
class MessageInfo:
    """Where a message's correlation id lives, and what the message is.

    Attributes:
        protocol: ``"oncrpc"`` or ``"giop"``.
        kind: ``"call"`` or ``"reply"``.
        correlation_id: the id currently stored in the header.
        id_offset: byte offset of the 4-byte id field.
        id_format: the struct format for the id (endianness-aware).
        op_key: the demux key for calls (ONC procedure number or GIOP
            operation name bytes); ``None`` for replies.
        expects_reply: for GIOP requests, the ``response_expected`` flag;
            ONC calls always expect one at this layer (oneway ONC
            operations simply never read it).
    """

    protocol: str
    kind: str
    correlation_id: int
    id_offset: int
    id_format: str
    op_key: Optional[Union[int, bytes]] = None
    expects_reply: bool = True


def probe(payload):
    """Classify *payload* and locate its correlation id.

    Raises :class:`TransportError` for messages that are neither ONC RPC
    nor GIOP — such traffic cannot be multiplexed (there is no id field
    to correlate on) and callers should fall back to a serial transport.
    """
    data = bytes(payload) if not isinstance(payload, (bytes, bytearray)) \
        else payload
    if len(data) >= 12 and bytes(data[0:4]) == b"GIOP":
        return _probe_giop(data)
    if len(data) >= 8:
        return _probe_onc(data)
    raise TransportError(
        "message too short to correlate (%d bytes)" % len(data)
    )


def _probe_onc(data):
    xid, message_type = struct.unpack_from(">II", data, 0)
    if message_type == ONC_CALL:
        if len(data) < 24:
            raise TransportError("truncated ONC RPC call header")
        procedure = struct.unpack_from(">I", data, 20)[0]
        return MessageInfo("oncrpc", "call", xid, 0, ">I", procedure)
    if message_type == ONC_REPLY:
        return MessageInfo("oncrpc", "reply", xid, 0, ">I")
    raise TransportError(
        "not an ONC RPC message (type %d)" % message_type
    )


def _skip_giop_service_contexts(data, endian):
    """Offset just past the service-context list starting at byte 12."""
    count = struct.unpack_from(endian + "I", data, 12)[0]
    offset = 16
    for _ in range(count):
        if offset + 8 > len(data):
            raise TransportError("truncated GIOP service context")
        length = struct.unpack_from(endian + "I", data, offset + 4)[0]
        offset += 8 + length
        offset += -offset % 4
    return offset


def _probe_giop(data):
    endian = "<" if data[6] else ">"
    message_type = data[7]
    if message_type == GIOP_REQUEST:
        offset = _skip_giop_service_contexts(data, endian)
        if offset + 5 > len(data):
            raise TransportError("truncated GIOP Request header")
        request_id = struct.unpack_from(endian + "I", data, offset)[0]
        expects_reply = bool(data[offset + 4])
        # Skip the response_expected octet and the object key to reach
        # the operation name (the stub modules' demux key, sans NUL).
        position = offset + 5
        position += -position % 4
        key_length = struct.unpack_from(endian + "I", data, position)[0]
        position += 4 + key_length
        position += -position % 4
        op_length = struct.unpack_from(endian + "I", data, position)[0]
        op_key = bytes(data[position + 4:position + 3 + op_length])
        return MessageInfo("giop", "call", request_id, offset, endian + "I",
                           op_key, expects_reply)
    if message_type == GIOP_REPLY:
        offset = _skip_giop_service_contexts(data, endian)
        if offset + 4 > len(data):
            raise TransportError("truncated GIOP Reply header")
        request_id = struct.unpack_from(endian + "I", data, offset)[0]
        return MessageInfo("giop", "reply", request_id, offset, endian + "I")
    raise TransportError("unsupported GIOP message type %d" % message_type)


def reply_correlation_id(payload):
    """The correlation id of a reply message (fast path for readers)."""
    return probe(payload).correlation_id


def reply_error(payload):
    """The protocol-level error a reply carries, or None.

    Lets the retry loop in :class:`~repro.runtime.aio.client
    .ConnectionPool` classify replies *before* handing them to the
    generated stub: a protocol error reply (ONC MSG_DENIED or a non-zero
    accept_stat; a GIOP MessageError or system exception) means the
    request never reached the servant's normal path, so idempotent calls
    may retry it.  User exceptions are NOT errors at this layer — they
    are successful replies the stub must decode.  Replies too garbled to
    classify also return None; the stub's hardened decode rejects them
    with the richer :class:`~repro.errors.WireFormatError`.
    """
    data = bytes(payload) if not isinstance(payload, (bytes, bytearray)) \
        else payload
    try:
        if len(data) >= 12 and bytes(data[0:4]) == b"GIOP":
            return _giop_reply_error(data)
        if len(data) >= 12:
            return _onc_reply_error(data)
    except struct.error:
        return None
    return None


def _onc_reply_error(data):
    message_type, reply_stat = struct.unpack_from(">II", data, 4)
    if message_type != ONC_REPLY:
        return None
    if reply_stat == 1:  # MSG_DENIED
        (reject_stat,) = struct.unpack_from(">I", data, 12)
        if reject_stat == 0 and len(data) >= 24:
            low, high = struct.unpack_from(">II", data, 16)
            return RemoteCallError(
                "server denied the call: RPC version mismatch"
                " (supports %d through %d)" % (low, high),
                protocol="oncrpc", code="RPC_MISMATCH",
            )
        return RemoteCallError(
            "server denied the call: authentication error",
            protocol="oncrpc", code="AUTH_ERROR",
        )
    if reply_stat != 0:
        return None  # not a well-formed reply; let the stub reject it
    flavor, length = struct.unpack_from(">II", data, 12)
    if length > 400:
        return None
    offset = 20 + length + (-length % 4)
    (accept_stat,) = struct.unpack_from(">I", data, offset)
    code = _ONC_ACCEPT_ERRORS.get(accept_stat)
    if code is None:
        return None
    return RemoteCallError(
        "server answered %s" % code, protocol="oncrpc", code=code,
    )


def _giop_reply_error(data):
    if data[7] == GIOP_MESSAGE_ERROR:
        return RemoteCallError(
            "server answered with GIOP MessageError",
            protocol="giop", code="GIOP::MessageError",
        )
    if data[7] != GIOP_REPLY:
        return None
    endian = "<" if data[6] else ">"
    try:
        offset = _skip_giop_service_contexts(data, endian)
    except TransportError:
        return None
    if offset + 8 > len(data):
        return None
    (status,) = struct.unpack_from(endian + "I", data, offset + 4)
    if status != _GIOP_SYSTEM_EXCEPTION:
        return None  # success or a user exception: the stub decodes it
    body = offset + 8
    try:
        (id_length,) = struct.unpack_from(endian + "I", data, body)
        if id_length > 256 or body + 4 + id_length > len(data):
            raise struct.error("bad exception id")
        repo_id = bytes(
            data[body + 4:body + 4 + id_length]
        ).rstrip(b"\x00").decode("latin-1")
        tail = body + 4 + id_length + (-(body + 4 + id_length) % 4)
        minor, completed = struct.unpack_from(endian + "II", data, tail)
    except struct.error:
        repo_id, minor, completed = "IDL:omg.org/CORBA/UNKNOWN:1.0", 0, 2
    return RemoteCallError(
        "server raised %s (minor %d, completed %d)"
        % (repo_id, minor, completed),
        protocol="giop", code=repo_id, minor=minor, completed=completed,
    )


def rewrite_id(payload, info, new_id):
    """Return *payload* with the correlation id replaced by *new_id*."""
    data = bytearray(payload)
    struct.pack_into(info.id_format, data, info.id_offset, new_id)
    return bytes(data)
