"""Runtime metrics: per-operation server stats, client-runtime stats.

Both are thin, stable facades over :class:`repro.obs.metrics
.MetricsRegistry` — the generalized registry grew out of the original
``ServerStats`` here, and this module keeps the ergonomic server-side
API (``record``/``snapshot``/``format_table``) while exposing the
registry itself for Prometheus scraping (``flick serve
--metrics-port``).

``ServerStats`` is recorded by *both* server runtimes now — the asyncio
:class:`~repro.runtime.aio.server.AioTcpServer` and the blocking
:class:`~repro.runtime.socket_transport.TcpServer`/
:class:`~repro.runtime.socket_transport.UdpServer` — one observation per
dispatched request.  ``ClientStats`` counts the client runtime's
failure-path events (retries, deadline expiries, orphan replies) and
tracks pool occupancy.

``flick serve --stats`` prints :meth:`ServerStats.format_table` on
shutdown.
"""

from __future__ import annotations

from repro.obs.metrics import (  # re-exported for backward compatibility
    BUCKET_BOUNDS,
    LatencyHistogram,
    MetricsRegistry,
)

__all__ = ["BUCKET_BOUNDS", "ClientStats", "LatencyHistogram",
           "ServerStats"]


def _label(op_key):
    """A printable label for a demux key (int, bytes, or name)."""
    if isinstance(op_key, (bytes, bytearray, memoryview)):
        return bytes(op_key).decode("latin-1")
    return str(op_key)


class ServerStats:
    """Thread-safe per-operation metrics for a server.

    Keys are demux keys (ONC procedure numbers, GIOP operation names) or,
    when the server was built through :meth:`StubServer.aio_server` /
    :meth:`StubServer.tcp_server`, the human-readable operation names
    resolved from the stub module.  The backing registry is exposed as
    :attr:`registry` for Prometheus exposition.
    """

    def __init__(self, registry=None):
        self.registry = registry or MetricsRegistry()
        self._requests = self.registry.counter(
            "flick_server_requests_total", "Requests dispatched", ("op",)
        )
        self._errors = self.registry.counter(
            "flick_server_errors_total", "Requests that failed", ("op",)
        )
        self._latency = self.registry.histogram(
            "flick_server_latency_seconds",
            "Request service time (read to reply written)", ("op",),
        )
        # Wire-hardening counters (unlabelled: these fire before or
        # outside per-operation accounting).
        self.malformed = self.registry.counter(
            "flick_server_malformed_frames_total",
            "Frames rejected as malformed, answered with protocol errors",
        )
        self.shed = self.registry.counter(
            "flick_server_shed_total",
            "Requests shed by overload protection",
        )
        self.servant_errors = self.registry.counter(
            "flick_server_servant_errors_total",
            "Dispatches that raised an unexpected implementation error",
        )

    def record(self, op_key, seconds, error=False):
        op = _label(op_key)
        self._requests.labels(op).inc()
        if error:
            self._errors.labels(op).inc()
        self._latency.labels(op).observe(seconds)

    def snapshot(self):
        """A plain-dict view: op -> calls/errors/mean/p50/p95/p99/max."""
        errors = {
            key[0]: child.value for key, child in self._errors.collect()
        }
        result = {}
        for key, histogram in self._latency.collect():
            op = key[0]
            result[op] = {
                "calls": histogram.total,
                "errors": errors.get(op, 0),
                "mean_s": histogram.mean,
                "p50_s": histogram.percentile(50),
                "p95_s": histogram.percentile(95),
                "p99_s": histogram.percentile(99),
                "max_s": histogram.max,
            }
        return result

    @property
    def total_calls(self):
        return sum(
            child.value for _key, child in self._requests.collect()
        )

    @property
    def total_errors(self):
        return sum(child.value for _key, child in self._errors.collect())

    def format_table(self):
        """A printable table of the snapshot."""
        snapshot = self.snapshot()
        header = ("operation", "calls", "errors", "mean", "p50", "p95",
                  "p99", "max")
        rows = [header]
        for op_key in sorted(snapshot, key=str):
            data = snapshot[op_key]
            rows.append((
                str(op_key),
                str(data["calls"]),
                str(data["errors"]),
                _fmt_seconds(data["mean_s"]),
                _fmt_seconds(data["p50_s"]),
                _fmt_seconds(data["p95_s"]),
                _fmt_seconds(data["p99_s"]),
                _fmt_seconds(data["max_s"]),
            ))
        widths = [
            max(len(row[column]) for row in rows)
            for column in range(len(header))
        ]
        lines = []
        for index, row in enumerate(rows):
            lines.append("  ".join(
                cell.ljust(width) if column == 0 else cell.rjust(width)
                for column, (cell, width) in enumerate(zip(row, widths))
            ))
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        return "\n".join(lines)


class ClientStats:
    """Client-runtime counters: the failure paths and pool occupancy.

    Handed to :class:`~repro.runtime.aio.client.ConnectionPool` /
    :class:`~repro.runtime.aio.client.AioClientTransport`; recording is
    skipped entirely when no stats object is attached.
    """

    def __init__(self, registry=None):
        self.registry = registry or MetricsRegistry()
        self.retries = self.registry.counter(
            "flick_client_retries_total",
            "Call attempts beyond the first",
        )
        self.deadline_expiries = self.registry.counter(
            "flick_client_deadline_expiries_total",
            "Calls that exceeded their deadline",
        )
        self.orphan_replies = self.registry.counter(
            "flick_client_orphan_replies_total",
            "Replies whose caller had already given up",
        )
        self.transport_errors = self.registry.counter(
            "flick_client_transport_errors_total",
            "Connection-level failures observed by calls",
        )
        self.open_connections = self.registry.gauge(
            "flick_client_pool_connections",
            "Open connections in the pool",
        )
        self.in_flight = self.registry.gauge(
            "flick_client_in_flight_requests",
            "Requests awaiting replies across the pool",
        )
        self.wire_format_errors = self.registry.counter(
            "flick_client_wire_format_errors_total",
            "Replies rejected as malformed (never retried)",
        )
        self.remote_errors = self.registry.counter(
            "flick_client_remote_errors_total",
            "Protocol-level error replies received from servers",
        )
        self.breaker_state = self.registry.gauge(
            "flick_client_breaker_state",
            "Circuit breaker state (0=closed, 1=half-open, 2=open)",
        )
        self.breaker_opens = self.registry.counter(
            "flick_client_breaker_opens_total",
            "Times the circuit breaker tripped open",
        )
        self.breaker_rejections = self.registry.counter(
            "flick_client_breaker_rejections_total",
            "Calls refused instantly by an open breaker",
        )


def _fmt_seconds(seconds):
    if seconds >= 1.0:
        return "%.2fs" % seconds
    if seconds >= 1e-3:
        return "%.2fms" % (seconds * 1e3)
    return "%.0fus" % (seconds * 1e6)
