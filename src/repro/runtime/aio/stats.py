"""Server metrics: per-operation call counts, errors, latency histograms.

The asyncio server records one observation per dispatched request; stats
objects are cheap enough to leave on in production (one lock acquisition
and a handful of integer increments per request).  Latencies land in
log-spaced buckets, which keeps the memory footprint constant while still
supporting meaningful percentile estimates over many orders of magnitude
(an in-process dispatch takes microseconds; a slow servant, seconds).

``flick serve --stats`` prints :meth:`ServerStats.format_table` on
shutdown.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

#: Histogram bucket upper bounds, seconds (log-spaced, 1-3-10 ladder).
BUCKET_BOUNDS = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0,
    10.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile estimates."""

    __slots__ = ("counts", "total", "sum_seconds", "max_seconds")

    def __init__(self):
        self.counts = [0] * (len(BUCKET_BOUNDS) + 1)
        self.total = 0
        self.sum_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds):
        self.counts[bisect_left(BUCKET_BOUNDS, seconds)] += 1
        self.total += 1
        self.sum_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def percentile(self, q):
        """The upper bound of the bucket holding the *q*-th percentile."""
        if not self.total:
            return 0.0
        rank = max(1, int(self.total * q / 100.0 + 0.5))
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                if index < len(BUCKET_BOUNDS):
                    return BUCKET_BOUNDS[index]
                return self.max_seconds
        return self.max_seconds

    @property
    def mean(self):
        return self.sum_seconds / self.total if self.total else 0.0


class OperationStats:
    """Counters for one operation."""

    __slots__ = ("calls", "errors", "histogram")

    def __init__(self):
        self.calls = 0
        self.errors = 0
        self.histogram = LatencyHistogram()


class ServerStats:
    """Thread-safe per-operation metrics for a server.

    Keys are demux keys (ONC procedure numbers, GIOP operation names) or,
    when the server was built through :meth:`StubServer.aio_server`, the
    human-readable operation names resolved from the stub module.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._operations = {}

    def record(self, op_key, seconds, error=False):
        with self._lock:
            stats = self._operations.get(op_key)
            if stats is None:
                stats = self._operations[op_key] = OperationStats()
            stats.calls += 1
            if error:
                stats.errors += 1
            stats.histogram.observe(seconds)

    def snapshot(self):
        """A plain-dict view: op -> calls/errors/mean/p50/p95/p99/max."""
        with self._lock:
            result = {}
            for op_key, stats in self._operations.items():
                histogram = stats.histogram
                result[op_key] = {
                    "calls": stats.calls,
                    "errors": stats.errors,
                    "mean_s": histogram.mean,
                    "p50_s": histogram.percentile(50),
                    "p95_s": histogram.percentile(95),
                    "p99_s": histogram.percentile(99),
                    "max_s": histogram.max_seconds,
                }
            return result

    @property
    def total_calls(self):
        with self._lock:
            return sum(stats.calls for stats in self._operations.values())

    @property
    def total_errors(self):
        with self._lock:
            return sum(stats.errors for stats in self._operations.values())

    def format_table(self):
        """A printable table of the snapshot."""
        snapshot = self.snapshot()
        header = ("operation", "calls", "errors", "mean", "p50", "p95",
                  "p99", "max")
        rows = [header]
        for op_key in sorted(snapshot, key=str):
            data = snapshot[op_key]
            rows.append((
                str(op_key),
                str(data["calls"]),
                str(data["errors"]),
                _fmt_seconds(data["mean_s"]),
                _fmt_seconds(data["p50_s"]),
                _fmt_seconds(data["p95_s"]),
                _fmt_seconds(data["p99_s"]),
                _fmt_seconds(data["max_s"]),
            ))
        widths = [
            max(len(row[column]) for row in rows)
            for column in range(len(header))
        ]
        lines = []
        for index, row in enumerate(rows):
            lines.append("  ".join(
                cell.ljust(width) if column == 0 else cell.rjust(width)
                for column, (cell, width) in enumerate(zip(row, widths))
            ))
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        return "\n".join(lines)


def _fmt_seconds(seconds):
    if seconds >= 1.0:
        return "%.2fs" % seconds
    if seconds >= 1e-3:
        return "%.2fms" % (seconds * 1e3)
    return "%.0fus" % (seconds * 1e6)
