"""The concurrent RPC runtime: asyncio serving, multiplexing, pooling.

This package serves the same generated stub modules and the same wire
formats as the blocking transports in :mod:`repro.runtime` — the same
bytes travel the wire, correlation rides in the protocols' own id fields
(ONC XID, GIOP request_id), and blocking and concurrent peers
interoperate freely.  See ``docs/INTERNALS.md`` section 6 for the design.

Quick tour::

    from repro.runtime.aio import AioTcpServer, AioClientTransport

    server = AioTcpServer(module.dispatch, impl).start()   # or: async with
    transport = AioClientTransport(*server.address, pool_size=4)
    client = module.Test_MailClient(transport)             # unchanged stubs
    client.avg([1, 2, 3])

    fast = module.Test_MailClient(
        transport.options(deadline=0.25, idempotent=True)
    )
"""

from repro.runtime.aio.breaker import CircuitBreaker
from repro.runtime.aio.client import (
    AioClientTransport,
    AioConnection,
    ConnectionPool,
)
from repro.runtime.aio.correlation import (
    MessageInfo,
    probe,
    reply_error,
    rewrite_id,
)
from repro.runtime.aio.options import CallOptions, RetryPolicy, ServeOptions
from repro.runtime.aio.server import AioTcpServer
from repro.runtime.aio.stats import ClientStats, LatencyHistogram, \
    ServerStats

__all__ = [
    "AioClientTransport",
    "AioConnection",
    "AioTcpServer",
    "CallOptions",
    "CircuitBreaker",
    "ClientStats",
    "ConnectionPool",
    "LatencyHistogram",
    "MessageInfo",
    "RetryPolicy",
    "ServeOptions",
    "ServerStats",
    "probe",
    "reply_error",
    "rewrite_id",
]
