"""The paper's benchmark workloads (section 4).

Three methods, each taking one input array:

1. ``ints`` — an array of (4-byte) integers;
2. ``rects`` — an array of rectangle structures, each holding two
   coordinate substructures of two integers;
3. ``dirents`` — an array of variable-size directory entries: a
   variable-length name string followed by a fixed UNIX-stat-like
   structure of 136 bytes (30 4-byte integers and one 16-byte character
   array).  As in the paper, the generated entries encode to exactly 256
   bytes each under XDR.

Array sizes swept: 64 B – 4 MB for ints and rects, 256 B – 512 KB for
directory entries.
"""

from repro.workloads.definitions import (
    BENCH_IDL_CORBA,
    BENCH_IDL_ONC,
    BENCH_PYSCHEMA,
    DIR_ENTRY_ENCODED_SIZE,
    DIR_NAME_LENGTH,
    INT_SIZES,
    DIR_SIZES,
    MIG_BENCH_IDL,
    make_dir_entries,
    make_int_array,
    make_rect_array,
    dir_entry_count,
    int_count,
    rect_count,
)

__all__ = [
    "BENCH_IDL_CORBA",
    "BENCH_IDL_ONC",
    "BENCH_PYSCHEMA",
    "DIR_ENTRY_ENCODED_SIZE",
    "DIR_NAME_LENGTH",
    "DIR_SIZES",
    "INT_SIZES",
    "MIG_BENCH_IDL",
    "dir_entry_count",
    "int_count",
    "make_dir_entries",
    "make_int_array",
    "make_rect_array",
    "rect_count",
]
