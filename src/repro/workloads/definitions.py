"""IDL sources and value generators for the paper's workloads."""

from __future__ import annotations

#: The benchmark interface in CORBA IDL (drives the CORBA-family
#: compilers: Flick-IIOP, ORBeline-style, ILU-style, PowerRPC-style).
BENCH_IDL_CORBA = """
module Bench {
  struct Coord { long x, y; };
  struct Rect { Coord ul; Coord lr; };
  struct Stat {
    long f00, f01, f02, f03, f04, f05, f06, f07, f08, f09;
    long f10, f11, f12, f13, f14, f15, f16, f17, f18, f19;
    long f20, f21, f22, f23, f24, f25, f26, f27, f28, f29;
    octet tag[16];
  };
  struct DirEnt { string name; Stat st; };
  typedef sequence<long> IntSeq;
  typedef sequence<Rect> RectSeq;
  typedef sequence<DirEnt> DirSeq;
  interface Bench {
    void ints(in IntSeq a);
    void rects(in RectSeq a);
    void dirents(in DirSeq a);
  };
};
"""

#: The same contract in ONC RPC IDL (drives rpcgen-style and Flick-XDR).
BENCH_IDL_ONC = """
struct coord { int x; int y; };
struct rect { coord ul; coord lr; };
struct stat_info {
  int f00; int f01; int f02; int f03; int f04;
  int f05; int f06; int f07; int f08; int f09;
  int f10; int f11; int f12; int f13; int f14;
  int f15; int f16; int f17; int f18; int f19;
  int f20; int f21; int f22; int f23; int f24;
  int f25; int f26; int f27; int f28; int f29;
  opaque tag[16];
};
struct dirent { string name<>; stat_info st; };
typedef int int_seq<>;
typedef rect rect_seq<>;
typedef dirent dir_seq<>;
program BENCH {
  version BENCHV {
    void ints(int_seq) = 1;
    void rects(rect_seq) = 2;
    void dirents(dir_seq) = 3;
  } = 1;
} = 0x20000042;
"""

#: The same contract as a native-Python dataclass schema (drives the
#: pyschema front end; record names mirror the ONC source so the value
#: builders below apply with ``record_prefix=""``).
BENCH_PYSCHEMA = '''
from dataclasses import dataclass
from typing import Annotated

from repro.pyschema import Fixed, i32, interface


@dataclass
class coord:
    x: i32
    y: i32


@dataclass
class rect:
    ul: coord
    lr: coord


@dataclass
class stat_info:
    f00: i32; f01: i32; f02: i32; f03: i32; f04: i32
    f05: i32; f06: i32; f07: i32; f08: i32; f09: i32
    f10: i32; f11: i32; f12: i32; f13: i32; f14: i32
    f15: i32; f16: i32; f17: i32; f18: i32; f19: i32
    f20: i32; f21: i32; f22: i32; f23: i32; f24: i32
    f25: i32; f26: i32; f27: i32; f28: i32; f29: i32
    tag: Annotated[bytes, Fixed(16)]


@dataclass
class dirent:
    name: str
    st: stat_info


@interface
class Bench:
    def ints(self, a: list[i32]) -> None: ...
    def rects(self, a: list[rect]) -> None: ...
    def dirents(self, a: list[dirent]) -> None: ...
'''

#: MIG can only express the integer-array method (paper, Figure 7).
MIG_BENCH_IDL = """
subsystem bench 4400;
type int_array = array[*:1048576] of int;
routine ints(server : mach_port_t; a : int_array);
"""

#: Message sizes the paper sweeps (bytes of payload).
INT_SIZES = (64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304)
DIR_SIZES = (256, 1024, 4096, 16384, 65536, 262144, 524288)

#: One XDR-encoded directory entry occupies exactly 256 bytes: 4 (name
#: length) + 116 (name, padded to 4) + 30*4 (integers) + 16 (tag).
DIR_NAME_LENGTH = 116
DIR_ENTRY_ENCODED_SIZE = 256


def int_count(payload_bytes):
    """Number of 4-byte integers filling *payload_bytes*."""
    return max(1, payload_bytes // 4)


def rect_count(payload_bytes):
    """Number of 16-byte rectangles filling *payload_bytes*."""
    return max(1, payload_bytes // 16)


def dir_entry_count(payload_bytes):
    """Number of 256-byte directory entries filling *payload_bytes*."""
    return max(1, payload_bytes // DIR_ENTRY_ENCODED_SIZE)


def make_int_array(payload_bytes):
    """The integer-array workload for a target payload size."""
    count = int_count(payload_bytes)
    return [(index * 2654435761) & 0x7FFFFFFF for index in range(count)]


def make_rect_array(module, payload_bytes, record_prefix="Bench_"):
    """The rectangle workload, built from *module*'s record classes.

    ``record_prefix`` selects the naming scheme ("Bench_" for the CORBA
    source, "" for the ONC source whose records are lowercase).
    """
    rect_class, coord_class = _rect_classes(module, record_prefix)
    count = rect_count(payload_bytes)
    return [
        rect_class(
            coord_class(index, index + 1),
            coord_class(index + 2, index + 3),
        )
        for index in range(count)
    ]


def _rect_classes(module, record_prefix):
    if hasattr(module, record_prefix + "Rect"):
        return (
            getattr(module, record_prefix + "Rect"),
            getattr(module, record_prefix + "Coord"),
        )
    return module.rect, module.coord


def make_dir_entries(module, payload_bytes, record_prefix="Bench_"):
    """The directory-entry workload: 256 encoded bytes per entry."""
    count = dir_entry_count(payload_bytes)
    if hasattr(module, record_prefix + "DirEnt"):
        entry_class = getattr(module, record_prefix + "DirEnt")
        stat_class = getattr(module, record_prefix + "Stat")
    else:
        entry_class = module.dirent
        stat_class = module.stat_info
    tag = b"t" * 16  # octet[16] / opaque[16] presents as bytes
    entries = []
    for index in range(count):
        name = ("entry-%06d-" % index).ljust(DIR_NAME_LENGTH, "x")
        stat = stat_class(*(list(range(30)) + [tag]))
        entries.append(entry_class(name, stat))
    return entries
