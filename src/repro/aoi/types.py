"""AOI type nodes.

AOI types describe data at the level of the *interface contract*: value
ranges and aggregate shapes, with no commitment to a wire encoding or to a
target-language representation.  Recursive types (linked lists and trees,
which the ONC RPC IDL can express via optional pointers) are represented by
:class:`AoiNamedRef` nodes resolved through the enclosing
:class:`repro.aoi.interfaces.AoiRoot` scope, so the node graph itself stays
acyclic and trivially printable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple


class AoiType:
    """Base class for all AOI type nodes.

    Subclasses are frozen dataclasses: AOI nodes are immutable values, which
    makes them safe to share between the request and reply descriptions of
    many operations.
    """

    def accept(self, visitor):
        """Double-dispatch to ``visitor.visit_<snake_case_name>(self)``."""
        name = _visit_name(type(self).__name__)
        method = getattr(visitor, name)
        return method(self)


def _visit_name(class_name):
    # AoiStructField -> visit_struct_field
    out = []
    for char in class_name[len("Aoi"):]:
        if char.isupper() and out:
            out.append("_")
        out.append(char.lower())
    return "visit_" + "".join(out)


@dataclass(frozen=True)
class AoiVoid(AoiType):
    """No data (operation with no result)."""


@dataclass(frozen=True)
class AoiInteger(AoiType):
    """An integer constrained to *bits* and signedness.

    AOI integers describe value ranges, not encodings: an ``AoiInteger(16,
    True)`` may be encoded in 4 bytes by XDR and 2 bytes by CDR.
    """

    bits: int = 32
    signed: bool = True

    def range(self):
        """Return the inclusive ``(lo, hi)`` value range."""
        if self.signed:
            half = 1 << (self.bits - 1)
            return (-half, half - 1)
        return (0, (1 << self.bits) - 1)


@dataclass(frozen=True)
class AoiFloat(AoiType):
    """An IEEE floating-point value of 32 or 64 bits."""

    bits: int = 64


@dataclass(frozen=True)
class AoiChar(AoiType):
    """A single character."""


@dataclass(frozen=True)
class AoiBoolean(AoiType):
    """A truth value."""


@dataclass(frozen=True)
class AoiOctet(AoiType):
    """An uninterpreted 8-bit quantity (never byte-swapped)."""


@dataclass(frozen=True)
class AoiString(AoiType):
    """A character string, optionally bounded to *bound* characters."""

    bound: Optional[int] = None


@dataclass(frozen=True)
class AoiEnum(AoiType):
    """A named enumeration; members are ``(name, value)`` pairs."""

    name: str
    members: Tuple[Tuple[str, int], ...]

    def value_of(self, member_name):
        for name, value in self.members:
            if name == member_name:
                return value
        raise KeyError(member_name)

    def name_of(self, value):
        for name, member_value in self.members:
            if member_value == value:
                return name
        raise KeyError(value)


@dataclass(frozen=True)
class AoiArray(AoiType):
    """A fixed-length array of *length* elements."""

    element: AoiType
    length: int


@dataclass(frozen=True)
class AoiSequence(AoiType):
    """A variable-length array, optionally bounded to *bound* elements."""

    element: AoiType
    bound: Optional[int] = None


@dataclass(frozen=True)
class AoiOptional(AoiType):
    """Zero-or-one occurrence of *element* (XDR's ``*`` pointer syntax).

    This is the node through which recursive types (lists, trees) tie their
    knots, always via an :class:`AoiNamedRef`.
    """

    element: AoiType


@dataclass(frozen=True)
class AoiStructField(AoiType):
    """One named field of a struct or exception."""

    name: str
    type: AoiType


@dataclass(frozen=True)
class AoiStruct(AoiType):
    """A record with named, ordered fields."""

    name: str
    fields: Tuple[AoiStructField, ...]

    def field_named(self, name):
        for struct_field in self.fields:
            if struct_field.name == name:
                return struct_field
        raise KeyError(name)


@dataclass(frozen=True)
class AoiUnionCase(AoiType):
    """One arm of a discriminated union.

    ``labels`` holds the discriminator values selecting this arm; an empty
    tuple marks the ``default`` arm.  A case with ``type`` of
    :class:`AoiVoid` carries no payload.
    """

    labels: Tuple[object, ...]
    name: str
    type: AoiType

    @property
    def is_default(self):
        return not self.labels


@dataclass(frozen=True)
class AoiUnion(AoiType):
    """A discriminated union over *discriminator* (an integral AOI type)."""

    name: str
    discriminator: AoiType
    cases: Tuple[AoiUnionCase, ...]

    def case_for(self, value):
        """Return the case selected by the discriminator *value*."""
        default = None
        for case in self.cases:
            if case.is_default:
                default = case
            elif value in case.labels:
                return case
        if default is None:
            raise KeyError(value)
        return default


@dataclass(frozen=True)
class AoiNamedRef(AoiType):
    """A reference to a named type definition in the AOI root scope."""

    name: str


def named(name):
    """Shorthand constructor for :class:`AoiNamedRef`."""
    return AoiNamedRef(name)
