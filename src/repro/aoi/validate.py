"""AOI validation.

Front ends are expected to produce well-formed AOI, but the checks here are
the contract the rest of the pipeline relies on: every named reference
resolves; fixed array lengths are positive; union discriminators are
integral-ish and case labels are unique and in range; recursive types recur
only through :class:`AoiOptional` or :class:`AoiSequence` (otherwise they
would denote infinitely large values); operation request codes within an
interface are unique.
"""

from __future__ import annotations

from repro.errors import AoiValidationError
from repro.aoi.types import (
    AoiArray,
    AoiBoolean,
    AoiChar,
    AoiEnum,
    AoiFloat,
    AoiInteger,
    AoiNamedRef,
    AoiOctet,
    AoiOptional,
    AoiSequence,
    AoiString,
    AoiStruct,
    AoiUnion,
    AoiVoid,
)


def validate(root):
    """Validate *root* (an :class:`AoiRoot`); raise AoiValidationError."""
    checker = _Checker(root)
    for name, aoi_type in root.types.items():
        checker.check_type(aoi_type, via_indirection=False, context=name)
    for exception in root.exceptions.values():
        for exc_field in exception.fields:
            checker.check_type(
                exc_field.type, via_indirection=True,
                context="%s.%s" % (exception.name, exc_field.name),
            )
    for interface in root.interfaces:
        checker.check_interface(interface)
    return root


class _Checker:
    def __init__(self, root):
        self.root = root
        # Names currently on the walk stack, used for recursion detection.
        self._walking = []

    # ------------------------------------------------------------------

    def check_interface(self, interface):
        seen_names = set()
        seen_codes = set()
        for operation in interface.operations:
            if operation.name in seen_names:
                raise AoiValidationError(
                    "duplicate operation %r in interface %r"
                    % (operation.name, interface.name)
                )
            seen_names.add(operation.name)
            if operation.request_code is not None:
                if operation.request_code in seen_codes:
                    raise AoiValidationError(
                        "duplicate request code %r in interface %r"
                        % (operation.request_code, interface.name)
                    )
                seen_codes.add(operation.request_code)
            self.check_operation(interface, operation)
        for attribute in interface.attributes:
            if attribute.name in seen_names:
                raise AoiValidationError(
                    "attribute %r collides with an operation in %r"
                    % (attribute.name, interface.name)
                )
            seen_names.add(attribute.name)
            self.check_type(
                attribute.type, via_indirection=True,
                context="%s::%s" % (interface.name, attribute.name),
            )
        for parent in interface.parents:
            try:
                self.root.interface_named(parent)
            except KeyError:
                raise AoiValidationError(
                    "interface %r inherits from undefined %r"
                    % (interface.name, parent)
                ) from None

    def check_operation(self, interface, operation):
        context = "%s::%s" % (interface.name, operation.name)
        param_names = set()
        for parameter in operation.parameters:
            if parameter.name in param_names:
                raise AoiValidationError(
                    "duplicate parameter %r in %s" % (parameter.name, context)
                )
            param_names.add(parameter.name)
            self.check_type(
                parameter.type, via_indirection=True,
                context="%s(%s)" % (context, parameter.name),
            )
            if isinstance(self.root.resolve(parameter.type), AoiVoid):
                raise AoiValidationError(
                    "parameter %r of %s has void type"
                    % (parameter.name, context)
                )
        self.check_type(
            operation.return_type, via_indirection=True, context=context
        )
        if operation.oneway:
            if operation.out_parameters():
                raise AoiValidationError(
                    "oneway operation %s has out parameters" % context
                )
            if not isinstance(self.root.resolve(operation.return_type), AoiVoid):
                raise AoiValidationError(
                    "oneway operation %s has a return value" % context
                )
        for exc_name in operation.raises:
            if exc_name not in self.root.exceptions:
                raise AoiValidationError(
                    "%s raises undefined exception %r" % (context, exc_name)
                )

    # ------------------------------------------------------------------

    def check_type(self, aoi_type, via_indirection, context):
        """Walk *aoi_type*, validating structure and recursion shape.

        ``via_indirection`` is true when the walk has passed through a node
        that breaks the size recursion (sequence/optional/string), which is
        what makes a back-reference legal.
        """
        if isinstance(aoi_type, AoiNamedRef):
            if aoi_type.name in self._walking:
                if not via_indirection:
                    raise AoiValidationError(
                        "type %r recurs without indirection (infinite size),"
                        " found at %s" % (aoi_type.name, context)
                    )
                return  # legal recursion; stop the walk here
            resolved = self.root.types.get(aoi_type.name)
            if resolved is None:
                raise AoiValidationError(
                    "undefined type %r referenced at %s"
                    % (aoi_type.name, context)
                )
            self._walking.append(aoi_type.name)
            try:
                self.check_type(resolved, via_indirection, context)
            finally:
                self._walking.pop()
            return
        if isinstance(aoi_type, AoiInteger):
            if aoi_type.bits not in (8, 16, 32, 64):
                raise AoiValidationError(
                    "unsupported integer width %d at %s"
                    % (aoi_type.bits, context)
                )
            return
        if isinstance(aoi_type, AoiFloat):
            if aoi_type.bits not in (32, 64):
                raise AoiValidationError(
                    "unsupported float width %d at %s"
                    % (aoi_type.bits, context)
                )
            return
        if isinstance(aoi_type, (AoiChar, AoiBoolean, AoiOctet, AoiVoid)):
            return
        if isinstance(aoi_type, AoiString):
            if aoi_type.bound is not None and aoi_type.bound <= 0:
                raise AoiValidationError(
                    "non-positive string bound at %s" % context
                )
            return
        if isinstance(aoi_type, AoiEnum):
            if not aoi_type.members:
                raise AoiValidationError("empty enum %r" % aoi_type.name)
            names = [m[0] for m in aoi_type.members]
            values = [m[1] for m in aoi_type.members]
            if len(set(names)) != len(names):
                raise AoiValidationError(
                    "duplicate member names in enum %r" % aoi_type.name
                )
            if len(set(values)) != len(values):
                raise AoiValidationError(
                    "duplicate member values in enum %r" % aoi_type.name
                )
            return
        if isinstance(aoi_type, AoiArray):
            if aoi_type.length <= 0:
                raise AoiValidationError(
                    "non-positive array length at %s" % context
                )
            self.check_type(aoi_type.element, via_indirection, context)
            return
        if isinstance(aoi_type, AoiSequence):
            if aoi_type.bound is not None and aoi_type.bound <= 0:
                raise AoiValidationError(
                    "non-positive sequence bound at %s" % context
                )
            self.check_type(aoi_type.element, True, context)
            return
        if isinstance(aoi_type, AoiOptional):
            self.check_type(aoi_type.element, True, context)
            return
        if isinstance(aoi_type, AoiStruct):
            if not aoi_type.fields:
                raise AoiValidationError("empty struct %r" % aoi_type.name)
            seen = set()
            for struct_field in aoi_type.fields:
                if struct_field.name in seen:
                    raise AoiValidationError(
                        "duplicate field %r in struct %r"
                        % (struct_field.name, aoi_type.name)
                    )
                seen.add(struct_field.name)
                self.check_type(
                    struct_field.type, via_indirection,
                    "%s.%s" % (aoi_type.name, struct_field.name),
                )
            return
        if isinstance(aoi_type, AoiUnion):
            self._check_union(aoi_type, via_indirection, context)
            return
        raise AoiValidationError(
            "unknown AOI node %r at %s" % (type(aoi_type).__name__, context)
        )

    def _check_union(self, union, via_indirection, context):
        discriminator = self.root.resolve(union.discriminator)
        if not isinstance(discriminator, (AoiInteger, AoiEnum, AoiBoolean, AoiChar)):
            raise AoiValidationError(
                "union %r discriminator must be integral, enum, boolean or"
                " char" % union.name
            )
        if not union.cases:
            raise AoiValidationError("union %r has no cases" % union.name)
        seen_labels = set()
        defaults = 0
        for case in union.cases:
            if case.is_default:
                defaults += 1
                if defaults > 1:
                    raise AoiValidationError(
                        "union %r has multiple default cases" % union.name
                    )
            for label in case.labels:
                if label in seen_labels:
                    raise AoiValidationError(
                        "duplicate case label %r in union %r"
                        % (label, union.name)
                    )
                seen_labels.add(label)
                self._check_label_in_range(union, discriminator, label)
            self.check_type(
                case.type, via_indirection,
                "%s.%s" % (union.name, case.name),
            )

    def _check_label_in_range(self, union, discriminator, label):
        if isinstance(discriminator, AoiInteger):
            lo, hi = discriminator.range()
            if not (isinstance(label, int) and lo <= label <= hi):
                raise AoiValidationError(
                    "label %r out of discriminator range in union %r"
                    % (label, union.name)
                )
        elif isinstance(discriminator, AoiEnum):
            values = {value for _, value in discriminator.members}
            names = {name for name, _ in discriminator.members}
            if label not in values and label not in names:
                raise AoiValidationError(
                    "label %r is not a member of enum %r in union %r"
                    % (label, discriminator.name, union.name)
                )
        elif isinstance(discriminator, AoiBoolean):
            if not isinstance(label, bool):
                raise AoiValidationError(
                    "label %r is not boolean in union %r"
                    % (label, union.name)
                )
        elif isinstance(discriminator, AoiChar):
            if not (isinstance(label, str) and len(label) == 1):
                raise AoiValidationError(
                    "label %r is not a character in union %r"
                    % (label, union.name)
                )
