"""AOI: the Abstract Object Interface.

AOI is Flick's IDL-neutral intermediate representation for interfaces (paper
section 2.1.1).  It records the *network contract* of an interface — the
operations that can be invoked and the data exchanged for each invocation —
independently of any presentation, encoding, or transport.  Both the CORBA
and ONC RPC front ends lower to AOI; every presentation generator consumes
it.
"""

from repro.aoi.types import (
    AoiArray,
    AoiBoolean,
    AoiChar,
    AoiEnum,
    AoiFloat,
    AoiInteger,
    AoiNamedRef,
    AoiOctet,
    AoiOptional,
    AoiSequence,
    AoiString,
    AoiStruct,
    AoiStructField,
    AoiType,
    AoiUnion,
    AoiUnionCase,
    AoiVoid,
    named,
)
from repro.aoi.interfaces import (
    AoiAttribute,
    AoiConstant,
    AoiException,
    AoiInterface,
    AoiOperation,
    AoiParameter,
    AoiRoot,
    Direction,
)
from repro.aoi.validate import validate

__all__ = [
    "AoiArray",
    "AoiAttribute",
    "AoiBoolean",
    "AoiChar",
    "AoiConstant",
    "AoiEnum",
    "AoiException",
    "AoiFloat",
    "AoiInteger",
    "AoiInterface",
    "AoiNamedRef",
    "AoiOctet",
    "AoiOperation",
    "AoiOptional",
    "AoiParameter",
    "AoiRoot",
    "AoiSequence",
    "AoiString",
    "AoiStruct",
    "AoiStructField",
    "AoiType",
    "AoiUnion",
    "AoiUnionCase",
    "AoiVoid",
    "Direction",
    "named",
    "validate",
]
