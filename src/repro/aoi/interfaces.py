"""AOI interface, operation, and scope structures.

An :class:`AoiRoot` is the complete output of a front end: the named type
definitions plus the interfaces.  An :class:`AoiInterface` carries the
operations and attributes; each :class:`AoiOperation` records its request
and reply data plus the *request code* used to identify it on the wire —
an integer procedure number for ONC RPC interfaces or the operation-name
string for CORBA/GIOP-style interfaces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import AoiValidationError
from repro.aoi.types import AoiType, AoiNamedRef, AoiStructField, AoiVoid


class Direction(enum.Enum):
    """Parameter passing direction, as in CORBA IDL."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"

    @property
    def is_in(self):
        return self in (Direction.IN, Direction.INOUT)

    @property
    def is_out(self):
        return self in (Direction.OUT, Direction.INOUT)


@dataclass(frozen=True)
class AoiParameter:
    """One formal parameter of an operation."""

    name: str
    type: AoiType
    direction: Direction = Direction.IN


@dataclass(frozen=True)
class AoiException:
    """A named exception with struct-like members (CORBA ``exception``)."""

    name: str
    fields: Tuple[AoiStructField, ...] = ()


@dataclass(frozen=True)
class AoiOperation:
    """One invocable operation of an interface.

    Attributes:
        request_code: wire identifier of the operation — an ``int``
            procedure number (ONC RPC) or the operation name ``str``
            (CORBA/GIOP).
        oneway: if true the operation has no reply message.
        raises: names of exceptions the operation may raise.
    """

    name: str
    parameters: Tuple[AoiParameter, ...] = ()
    return_type: AoiType = AoiVoid()
    request_code: object = None
    oneway: bool = False
    raises: Tuple[str, ...] = ()

    def in_parameters(self):
        return tuple(p for p in self.parameters if p.direction.is_in)

    def out_parameters(self):
        return tuple(p for p in self.parameters if p.direction.is_out)


@dataclass(frozen=True)
class AoiAttribute:
    """A CORBA attribute; presented as get/set operation pairs."""

    name: str
    type: AoiType
    readonly: bool = False


@dataclass(frozen=True)
class AoiInterface:
    """A named interface: operations, attributes, and inheritance.

    ``code`` identifies the interface on the wire: for ONC RPC it is the
    ``(program, version)`` pair; for CORBA it is the repository-id string.
    """

    name: str
    operations: Tuple[AoiOperation, ...] = ()
    attributes: Tuple[AoiAttribute, ...] = ()
    parents: Tuple[str, ...] = ()
    code: object = None

    def operation_named(self, name):
        for operation in self.operations:
            if operation.name == name:
                return operation
        raise KeyError(name)


@dataclass(frozen=True)
class AoiConstant:
    """A named compile-time constant."""

    name: str
    type: AoiType
    value: object


class AoiRoot:
    """The complete AOI produced by one front-end run.

    Holds the named type scope through which :class:`AoiNamedRef` nodes are
    resolved.  Names are stored fully qualified with ``::`` separators
    (e.g. ``"Finance::Account"``).
    """

    def __init__(self, name="<idl>"):
        self.name = name
        self.types: Dict[str, AoiType] = {}
        self.constants: Dict[str, AoiConstant] = {}
        self.exceptions: Dict[str, AoiException] = {}
        self.interfaces: List[AoiInterface] = []

    # ------------------------------------------------------------------

    def define_type(self, name, aoi_type):
        """Bind *name* to *aoi_type*; duplicate definitions are an error."""
        if name in self.types:
            raise AoiValidationError("duplicate type definition %r" % name)
        self.types[name] = aoi_type

    def define_constant(self, constant):
        if constant.name in self.constants:
            raise AoiValidationError(
                "duplicate constant definition %r" % constant.name
            )
        self.constants[constant.name] = constant

    def define_exception(self, exception):
        if exception.name in self.exceptions:
            raise AoiValidationError(
                "duplicate exception definition %r" % exception.name
            )
        self.exceptions[exception.name] = exception

    def add_interface(self, interface):
        if any(i.name == interface.name for i in self.interfaces):
            raise AoiValidationError(
                "duplicate interface definition %r" % interface.name
            )
        self.interfaces.append(interface)

    # ------------------------------------------------------------------

    def resolve(self, aoi_type):
        """Chase :class:`AoiNamedRef` links until a concrete type appears."""
        seen = set()
        while isinstance(aoi_type, AoiNamedRef):
            if aoi_type.name in seen:
                raise AoiValidationError(
                    "circular typedef through %r" % aoi_type.name
                )
            seen.add(aoi_type.name)
            try:
                aoi_type = self.types[aoi_type.name]
            except KeyError:
                raise AoiValidationError(
                    "reference to undefined type %r" % aoi_type.name
                ) from None
        return aoi_type

    def interface_named(self, name):
        for interface in self.interfaces:
            if interface.name == name:
                return interface
        raise KeyError(name)

    def exception_named(self, name):
        try:
            return self.exceptions[name]
        except KeyError:
            raise KeyError(name) from None

    def __repr__(self):
        return "AoiRoot(name=%r, %d types, %d interfaces)" % (
            self.name,
            len(self.types),
            len(self.interfaces),
        )
