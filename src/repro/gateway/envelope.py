"""Ingress request envelopes: parse, validate, locate the body.

The gateway must find three things in every ingress request *without*
decoding the body: the correlation id to echo into the reply, the demux
key selecting the operation plan, and the byte offset where the
marshaled arguments begin (the fused copy plans splice bodies wire to
wire, so the envelope is the only part the gateway interprets itself).

Parsing replicates the generated dispatch preludes' hardening checks —
bounded auth fields, bounded service-context counts, declared-size
verification — and raises the same :class:`~repro.errors.DispatchError`
/ :class:`~repro.errors.WireFormatError` codes, so the ingress stub
module's ``encode_error_reply`` answers hostile frames exactly as a
same-protocol server would.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import DispatchError, WireFormatError

__all__ = ["IngressSpec", "RequestEnvelope", "parse_request"]

#: RFC 1831 bound on opaque_auth bodies.
MAX_AUTH_BYTES = 400

#: Same service-context bound as the generated GIOP dispatch prelude.
MAX_SERVICE_CONTEXTS = 64

_unpack_from = struct.unpack_from


@dataclass(frozen=True)
class IngressSpec:
    """What the ingress parser needs to know about its protocol."""

    protocol: str  # "oncrpc" or "giop"
    program: int = 0
    version: int = 0
    object_key: bytes = b""
    little_endian: bool = False


@dataclass(frozen=True)
class RequestEnvelope:
    """One validated ingress request, body untouched."""

    ctx: int  # correlation id (ONC xid / GIOP request id)
    op_key: Union[int, bytes]  # demux key into the bridge plan
    body_offset: int
    expects_reply: bool


def parse_request(data, spec):
    """Validate the envelope of *data* against *spec*.

    Returns a :class:`RequestEnvelope`; raises ``DispatchError`` or
    ``WireFormatError`` with the generated preludes' error codes for
    anything the ingress protocol's own server would refuse.
    """
    if spec.protocol == "oncrpc":
        return _parse_onc(data, spec)
    return _parse_giop(data, spec)


def _parse_onc(data, spec):
    if len(data) < 40:
        raise WireFormatError("ONC RPC call header truncated",
                              field="header", limit=40, actual=len(data))
    (xid, message_type, rpc_version, program, version, procedure,
     _cred_flavor, cred_length) = _unpack_from(">IIIIIIII", data, 0)
    if message_type != 0:
        raise DispatchError("not an ONC RPC call message",
                            code="not_call")
    if rpc_version != 2:
        raise DispatchError("RPC version %d unsupported" % rpc_version,
                            code="rpc_mismatch")
    if program != spec.program:
        raise DispatchError("program %d not served here" % program,
                            code="prog_unavail")
    if version != spec.version:
        raise DispatchError("program version %d unsupported" % version,
                            code="prog_mismatch")
    if cred_length > MAX_AUTH_BYTES:
        raise WireFormatError("credential too long", offset=28,
                              field="cred_length", limit=MAX_AUTH_BYTES,
                              actual=cred_length)
    offset = 32 + cred_length + (-cred_length % 4)
    if offset + 8 > len(data):
        raise WireFormatError("verifier truncated", offset=offset,
                              field="verf", limit=offset + 8,
                              actual=len(data))
    _verf_flavor, verf_length = _unpack_from(">II", data, offset)
    if verf_length > MAX_AUTH_BYTES:
        raise WireFormatError("verifier too long", offset=offset + 4,
                              field="verf_length", limit=MAX_AUTH_BYTES,
                              actual=verf_length)
    offset += 8 + verf_length + (-verf_length % 4)
    if offset > len(data):
        raise WireFormatError("verifier truncated", offset=offset,
                              field="verf", limit=offset,
                              actual=len(data))
    return RequestEnvelope(ctx=xid, op_key=procedure,
                           body_offset=offset, expects_reply=True)


def _parse_giop(data, spec):
    endian = "<" if spec.little_endian else ">"
    if bytes(data[0:4]) != b"GIOP":
        raise DispatchError("not a GIOP message", code="bad_magic")
    if len(data) < 12:
        raise WireFormatError("GIOP header truncated", field="header",
                              limit=12, actual=len(data))
    if data[7] != 0:
        raise DispatchError("not a GIOP Request", code="not_request")
    if data[6] != (1 if spec.little_endian else 0):
        raise DispatchError(
            "GIOP byte-order mismatch: this gateway ingress is %s-endian"
            % ("little" if spec.little_endian else "big"),
            code="byte_order")
    declared = _unpack_from(endian + "I", data, 8)[0]
    if declared != len(data) - 12:
        raise WireFormatError(
            "GIOP message size %d disagrees with frame size %d"
            % (declared, len(data) - 12), offset=8,
            field="message_size", actual=declared, limit=len(data) - 12)
    try:
        contexts = _unpack_from(endian + "I", data, 12)[0]
        if contexts > MAX_SERVICE_CONTEXTS:
            raise WireFormatError("too many service contexts", offset=12,
                                  field="service_contexts",
                                  limit=MAX_SERVICE_CONTEXTS,
                                  actual=contexts)
        offset = 16
        for _ in range(contexts):
            length = _unpack_from(endian + "I", data, offset + 4)[0]
            offset += 8 + length
            offset += -offset % 4
        ctx = _unpack_from(endian + "I", data, offset)[0]
        expects_reply = data[offset + 4] != 0
        offset += 5
        offset += -offset % 4
        key_length = _unpack_from(endian + "I", data, offset)[0]
        if bytes(data[offset + 4:offset + 4 + key_length]) \
                != spec.object_key:
            raise DispatchError("unknown object key",
                                code="object_not_exist")
        offset += 4 + key_length
        offset += -offset % 4
        op_length = _unpack_from(endian + "I", data, offset)[0]
        op_key = bytes(data[offset + 4:offset + 3 + op_length])
        offset += 4 + op_length
        offset += -offset % 4
        principal_length = _unpack_from(endian + "I", data, offset)[0]
        offset += 4 + principal_length
    except (struct.error, IndexError):
        raise WireFormatError("GIOP request header truncated",
                              field="header", limit=len(data),
                              actual=len(data)) from None
    if offset > len(data):
        raise WireFormatError("GIOP request header overruns the frame",
                              field="header", limit=len(data),
                              actual=offset)
    return RequestEnvelope(ctx=ctx, op_key=op_key, body_offset=offset,
                           expects_reply=expects_reply)
