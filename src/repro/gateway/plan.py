"""Bridge plans: pair two backends' marshal programs per operation.

A bridge serves one AOI interface on an *ingress* protocol and forwards
it to an *egress* protocol.  For every operation this module pairs the
ingress backend's decode layout with the egress backend's encode layout
(both taken from the naive marshal IR, :func:`repro.mir.build
.build_naive`) and decides, per value channel, between two strategies:

**Fused copy.**  Where the two wire formats lay a region out
byte-identically — XDR and big-endian CDR agree exactly on 32-bit
integers and floats, on fixed arrays of them (neither format prefixes a
header), and on counted arrays of them (both prefix a 4-byte big-endian
count) — the plan compiles the region into copy segments that splice
ingress body bytes straight into the egress message.  No presentation
Python value is ever materialized; a 64 KiB integer array crosses the
gateway as one ``memcpy`` plus a bound check.  Adjacent fixed-size
segments coalesce.  Fusion is all-or-nothing per channel: one
mismatched field (strings differ in NUL termination, chars in width,
doubles in alignment) sends the whole channel to the fallback.

**Decode/re-encode fallback.**  The ingress module's generated
``_u_req_*`` / ``_u_rep_*`` decoders feed the egress module's
``_m_req_*`` / ``_m_rep_*`` encoders (closures renderer), preserving
full hardening on the decode side and exact egress bytes on the encode
side.

Fusion also requires both formats big-endian and the runtime body
offset congruent to 0 mod 4 (a hostile unpadded GIOP principal can
break congruence; the proxy falls back dynamically in that case).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.backend import make_backend
from repro.backend.oncxdr import interface_program
from repro.errors import WireFormatError
from repro.mir import ops as m
from repro.mir.build import build_naive

from repro.gateway.envelope import IngressSpec

__all__ = ["BridgePlan", "CopyCounted", "CopyFixed", "OpPlan",
           "build_plan", "protocol_of", "run_segments"]

_unpack_from = struct.unpack_from

#: backend name -> wire protocol family (the names correlation.probe
#: and RemoteCallError use).
_PROTOCOLS = {"iiop": "giop", "oncrpc-xdr": "oncrpc"}


def protocol_of(backend_name):
    """The wire protocol family a backend serves, or None."""
    return _PROTOCOLS.get(backend_name)


# ----------------------------------------------------------------------
# Copy segments (the fused plan's instruction set)
# ----------------------------------------------------------------------


class CopyFixed:
    """Copy *nbytes* verbatim from the source body to the buffer."""

    __slots__ = ("nbytes",)

    def __init__(self, nbytes):
        self.nbytes = nbytes

    def __repr__(self):
        return "CopyFixed(%d)" % self.nbytes

    def copy(self, data, src, buffer):
        end = src + self.nbytes
        if end > len(data):
            raise WireFormatError(
                "fused region truncated", offset=src, field="body",
                limit=self.nbytes, actual=len(data) - src)
        offset = buffer.reserve(self.nbytes)
        buffer.data[offset:offset + self.nbytes] = data[src:end]
        return end


class CopyCounted:
    """Copy a counted array: 4-byte big-endian count, then
    ``count * elem_size`` element bytes, bound-checked before copying."""

    __slots__ = ("bound", "elem_size")

    def __init__(self, bound, elem_size):
        self.bound = bound
        self.elem_size = elem_size

    def __repr__(self):
        return "CopyCounted(bound=%r, elem=%d)" % (
            self.bound, self.elem_size)

    def copy(self, data, src, buffer):
        if src + 4 > len(data):
            raise WireFormatError(
                "array count truncated", offset=src, field="count",
                limit=4, actual=len(data) - src)
        count = _unpack_from(">I", data, src)[0]
        if self.bound is not None and count > self.bound:
            raise WireFormatError(
                "array count exceeds bound", offset=src, field="count",
                limit=self.bound, actual=count)
        nbytes = 4 + count * self.elem_size
        if src + nbytes > len(data):
            raise WireFormatError(
                "array elements truncated", offset=src, field="elements",
                limit=nbytes, actual=len(data) - src)
        offset = buffer.reserve(nbytes)
        buffer.data[offset:offset + nbytes] = data[src:src + nbytes]
        return src + nbytes


def run_segments(segments, data, src, buffer):
    """Apply *segments* to ``data[src:]``; returns the end offset."""
    for segment in segments:
        src = segment.copy(data, src, buffer)
    return src


# ----------------------------------------------------------------------
# Fusibility analysis
# ----------------------------------------------------------------------


def _same_word_codec(a, b):
    """Both codecs lay the value out as the same 4-byte 4-aligned word."""
    return (a is not None and b is not None
            and a.format == b.format
            and a.size == b.size == 4
            and a.alignment == b.alignment == 4)


def _fuse_node(src, dst, types_src, types_dst, segments):
    """Append copy segments covering (src -> dst); False if infusible."""
    if isinstance(src, m.TRef) and isinstance(dst, m.TRef):
        if src.recursive or dst.recursive:
            return False
        return _fuse_node(types_src[src.name], types_dst[dst.name],
                          types_src, types_dst, segments)
    if type(src) is not type(dst):
        return False
    if isinstance(src, m.TVoid):
        return True
    if isinstance(src, m.TAtom):
        if not _same_word_codec(src.codec, dst.codec):
            return False
        segments.append(CopyFixed(4))
        return True
    if isinstance(src, m.TFixedArray):
        # Neither XDR nor CDR prefixes fixed arrays with a header.
        if src.length != dst.length:
            return False
        if _same_word_codec(src.element_codec, dst.element_codec):
            segments.append(CopyFixed(4 * src.length))
            return True
        # Structured elements fuse too when every field does and the
        # element is fixed-size (one stride covers the whole array).
        element_segments = []
        if not _fuse_node(src.element, dst.element, types_src,
                          types_dst, element_segments):
            return False
        if not all(isinstance(s, CopyFixed) for s in element_segments):
            return False
        stride = sum(s.nbytes for s in element_segments)
        if stride:
            segments.append(CopyFixed(stride * src.length))
        return True
    if isinstance(src, m.TCountedArray):
        # Both formats prefix a 4-byte count (big-endian here, by the
        # plan-level endianness precondition).
        if not _same_word_codec(src.element_codec, dst.element_codec):
            return False
        if src.bound is not None and dst.bound is not None:
            bound = min(src.bound, dst.bound)
        else:
            bound = src.bound if src.bound is not None else dst.bound
        segments.append(CopyCounted(bound, 4))
        return True
    if isinstance(src, m.TStruct):
        if len(src.fields) != len(dst.fields):
            return False
        return all(
            _fuse_node(sf.node, df.node, types_src, types_dst, segments)
            for sf, df in zip(src.fields, dst.fields)
        )
    # Strings (NUL termination differs), bytes (padding differs),
    # optionals, unions, exceptions: decode/re-encode.
    return False


def _coalesce(segments):
    out = []
    for segment in segments:
        if (out and isinstance(segment, CopyFixed)
                and isinstance(out[-1], CopyFixed)):
            out[-1] = CopyFixed(out[-1].nbytes + segment.nbytes)
        else:
            out.append(segment)
    return out


def fuse_channel(src_channel, dst_channel, types_src, types_dst):
    """Copy segments bridging two naive channels, or None."""
    if len(src_channel.items) != len(dst_channel.items):
        return None
    segments = []
    for (_sn, src), (_dn, dst) in zip(src_channel.items,
                                      dst_channel.items):
        if not _fuse_node(src, dst, types_src, types_dst, segments):
            return None
    return _coalesce(segments)


# ----------------------------------------------------------------------
# The per-operation plan
# ----------------------------------------------------------------------


@dataclass
class OpPlan:
    """Everything the proxy needs to bridge one operation."""

    name: str
    oneway: bool
    ingress_key: object
    egress_key: object
    egress_request: object        # egress HeaderSpec for requests
    ingress_reply: object         # ingress HeaderSpec for replies
    in_arity: int
    ok_arity: int
    request_segments: Optional[List] = None
    #: reply discriminator word -> copy segments (0 = success arm,
    #: n = the nth user exception); absent arms fall back.
    reply_segments: Dict[int, List] = field(default_factory=dict)
    u_req: object = None          # ingress request decode (closures)
    m_req: object = None          # egress request encode
    check_reply: object = None    # egress reply-header validator
    u_rep: object = None          # egress reply decode
    m_rep_ok: object = None       # ingress success-reply encode
    #: egress exception class name -> ingress _m_rep_x encoder.
    exceptions: Dict[str, object] = field(default_factory=dict)


@dataclass
class BridgePlan:
    """A compiled bridge: ingress spec plus per-operation plans."""

    ingress_protocol: str
    egress_protocol: str
    ingress_module: object
    egress_module: object
    ingress_spec: IngressSpec
    ingress_versions: tuple
    ops: Dict[object, OpPlan]
    interface_name: str = ""

    @property
    def fused_request_ops(self):
        return sorted(p.name for p in self.ops.values()
                      if p.request_segments is not None)

    @property
    def fused_reply_ops(self):
        return sorted(p.name for p in self.ops.values()
                      if 0 in p.reply_segments)

    def rebind(self, op=None):
        """Refresh early-bound codec references from the live modules.

        The proxy binds each operation's codecs once at plan-build time
        so serving never pays per-request attribute loads — which means
        a runtime tier swap (the tiering engine replacing module
        entries) would otherwise be invisible here.  Tiering engines
        call this from their swap callback; *op* limits the refresh to
        one operation (None refreshes every plan).
        """
        for plan in self.ops.values():
            if op is not None and plan.name != op:
                continue
            name = plan.name
            plan.u_req = getattr(
                self.ingress_module, "_u_req_%s" % name, plan.u_req)
            plan.m_req = getattr(
                self.egress_module, "_m_req_%s" % name, plan.m_req)
            if plan.oneway:
                continue
            plan.u_rep = getattr(
                self.egress_module, "_u_rep_%s" % name, plan.u_rep)
            plan.m_rep_ok = getattr(
                self.ingress_module, "_m_rep_ok_%s" % name,
                plan.m_rep_ok)
            plan.exceptions = {
                key: getattr(self.ingress_module,
                             getattr(encoder, "__name__", ""), encoder)
                for key, encoder in plan.exceptions.items()
            }

    def summary(self):
        """One line per operation for logs and the CLI."""
        lines = []
        for plan in sorted(self.ops.values(), key=lambda p: p.name):
            req = "fused" if plan.request_segments is not None \
                else "re-encode"
            if plan.oneway:
                rep = "oneway"
            elif plan.reply_segments:
                rep = "fused(%s)" % ",".join(
                    str(d) for d in sorted(plan.reply_segments))
            else:
                rep = "re-encode"
            lines.append("%-20s request=%-9s reply=%s"
                         % (plan.name, req, rep))
        return "\n".join(lines)


def _ingress_spec(backend, presc):
    protocol = protocol_of(backend.name)
    if protocol == "oncrpc":
        program, version = interface_program(presc)
        return IngressSpec(protocol="oncrpc", program=program,
                           version=version)
    return IngressSpec(
        protocol="giop", object_key=backend.object_key(presc),
        little_endian=getattr(backend, "little_endian", False))


def build_plan(ingress_result, egress_result, *, fuse=True):
    """Pair *ingress_result* with *egress_result* into a BridgePlan.

    Both are :class:`repro.api.CompileResult`-likes for the same (or
    compatible) schema, compiled for servable backends.  Modules are
    loaded here; compile with ``renderer="closures"`` for the fast
    fallback codecs.
    """
    ingress_backend = make_backend(ingress_result.stubs.backend_name)
    egress_backend = make_backend(egress_result.stubs.backend_name)
    ingress_protocol = protocol_of(ingress_backend.name)
    egress_protocol = protocol_of(egress_backend.name)
    if ingress_protocol is None or egress_protocol is None:
        raise ValueError(
            "gateway backends must be one of %s"
            % sorted(_PROTOCOLS))
    ingress_presc = ingress_result.presc
    egress_presc = egress_result.presc
    ingress_module = ingress_result.load_module()
    egress_module = egress_result.load_module()
    # Fused copies assume both formats agree on byte order; the
    # little-endian IIOP variant re-encodes everything.
    fuse = (fuse
            and ingress_backend.wire_format.endian == ">"
            and egress_backend.wire_format.endian == ">")
    naive_in = build_naive(ingress_backend, ingress_presc)
    naive_eg = build_naive(egress_backend, egress_presc)
    egress_stubs = {s.operation_name: s for s in egress_presc.stubs}

    ops = {}
    for stub in ingress_presc.stubs:
        other = egress_stubs.get(stub.operation_name)
        if other is None or stub.oneway != other.oneway:
            continue  # unknown-operation error at runtime (check_bridge
            #           reports these as BREAKING before serving)
        name = stub.operation_name
        op_in = naive_in.operations[name]
        op_eg = naive_eg.operations[name]
        request_segments = None
        reply_segments = {}
        if fuse:
            request_segments = fuse_channel(
                op_in["request"], op_eg["request"],
                naive_in.types, naive_eg.types)
            if not stub.oneway:
                arms_in = dict(op_in["reply_arms"])
                for index, (label, channel) in \
                        enumerate(op_eg["reply_arms"]):
                    if label not in arms_in:
                        continue
                    disc = 0 if index == 0 else int(label[1:])
                    segments = fuse_channel(
                        channel, arms_in[label],
                        naive_eg.types, naive_in.types)
                    if segments is not None:
                        reply_segments[disc] = segments
        exceptions = {}
        if not stub.oneway:
            ingress_by_label = {
                arm.labels[0]: arm
                for arm in stub.reply_pres.arms[1:]
            }
            for arm in other.reply_pres.arms[1:]:
                match = ingress_by_label.get(arm.labels[0])
                if match is None:
                    continue
                encoder = getattr(
                    ingress_module,
                    "_m_rep_x%d_%s" % (match.labels[0], name))
                exceptions[m.mangle(arm.pres.class_name)] = encoder
        ops[ingress_backend.demux_key(ingress_presc, stub)] = OpPlan(
            name=name,
            oneway=stub.oneway,
            ingress_key=ingress_backend.demux_key(ingress_presc, stub),
            egress_key=egress_backend.demux_key(egress_presc, other),
            egress_request=egress_backend.request_header(
                egress_presc, other),
            ingress_reply=None if stub.oneway
            else ingress_backend.reply_header(ingress_presc, stub),
            in_arity=len(stub.in_parameters()),
            ok_arity=0 if stub.oneway
            else len(stub.reply_pres.arms[0].pres.fields),
            request_segments=request_segments,
            reply_segments=reply_segments,
            u_req=getattr(ingress_module, "_u_req_%s" % name, None),
            m_req=getattr(egress_module, "_m_req_%s" % name),
            check_reply=None if stub.oneway
            else getattr(egress_module, "_check_reply"),
            u_rep=None if stub.oneway
            else getattr(egress_module, "_u_rep_%s" % name),
            m_rep_ok=None if stub.oneway
            else getattr(ingress_module, "_m_rep_ok_%s" % name),
            exceptions=exceptions,
        )
    _program, version = interface_program(ingress_presc)
    return BridgePlan(
        ingress_protocol=ingress_protocol,
        egress_protocol=egress_protocol,
        ingress_module=ingress_module,
        egress_module=egress_module,
        ingress_spec=_ingress_spec(ingress_backend, ingress_presc),
        ingress_versions=(version, version),
        ops=ops,
        interface_name=ingress_presc.interface_name,
    )
