"""Wire-to-wire protocol gateway: serve one AOI interface on one
protocol, forward it on another, transcoding bodies without
round-tripping through presentation where the wire layouts agree.

The pieces (see ``docs/INTERNALS.md`` section 11):

* :mod:`repro.gateway.plan` — pairs the two backends' marshal programs
  per operation and compiles fused copy plans with decode/re-encode
  fallbacks;
* :mod:`repro.gateway.check` — static losslessness verification via
  the compat subsystem's transcoded MINT walks (``flick bridge``);
* :mod:`repro.gateway.envelope` — hardened ingress envelope parsing;
* :mod:`repro.gateway.errmap` — the total GIOP system exception <->
  ONC RPC status mapping;
* :mod:`repro.gateway.proxy` — the asyncio proxy server
  (``flick gateway``).
"""

from repro.gateway.check import (
    bridge_exit_code,
    bridge_report_json,
    bridge_report_text,
    check_bridge,
)
from repro.gateway.fraction import ChannelPrediction, predict_fused
from repro.gateway.plan import BridgePlan, build_plan, protocol_of
from repro.gateway.proxy import (
    AioGatewayServer,
    transcode_request,
    translate_reply,
)

__all__ = [
    "AioGatewayServer",
    "BridgePlan",
    "ChannelPrediction",
    "bridge_exit_code",
    "bridge_report_json",
    "bridge_report_text",
    "build_plan",
    "check_bridge",
    "predict_fused",
    "protocol_of",
    "transcode_request",
    "translate_reply",
]
