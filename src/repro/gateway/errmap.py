"""Cross-protocol error mapping: GIOP system exceptions <-> ONC RPC
accept/deny statuses.

A gateway relays requests between protocols, so a protocol-level error
answered by the *upstream* server must be re-expressed in the *ingress*
protocol — an ONC client that called through an IIOP upstream must see
``PROC_UNAVAIL``, not a CORBA repository id it cannot parse.

The mapping is total over everything the generated stubs can emit, and
its core is a **bijection** so that errors survive a double bridge
(onc -> giop -> onc) unchanged:

======================================  ==============================
GIOP system exception                   ONC RPC status
======================================  ==============================
``CORBA/MARSHAL``                       accepted ``GARBAGE_ARGS``
``CORBA/BAD_OPERATION``                 accepted ``PROC_UNAVAIL``
``CORBA/OBJECT_NOT_EXIST``              accepted ``PROG_UNAVAIL``
``CORBA/INV_OBJREF``                    accepted ``PROG_MISMATCH``
``CORBA/UNKNOWN``                       accepted ``SYSTEM_ERR``
``CORBA/NO_PERMISSION``                 denied ``AUTH_ERROR``
``CORBA/COMM_FAILURE``                  denied ``RPC_MISMATCH``
======================================  ==============================

Two GIOP conditions have no ONC counterpart and map **one way** (their
round trip lands on the canonical partner, not on themselves):

* ``CORBA/TRANSIENT`` (overload, retry later) -> ``SYSTEM_ERR``;
* ``GIOP::MessageError`` (unparseable message) -> ``GARBAGE_ARGS``;
* any unlisted repository id -> ``SYSTEM_ERR``.

Local gateway failures on the upstream leg (connect refused, deadline,
open circuit breaker) are mapped by :func:`translate_local`: they become
``TRANSIENT`` / ``COMM_FAILURE`` on a GIOP ingress and ``SYSTEM_ERR`` on
an ONC ingress, since RFC 1831 has no transient-failure status.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import (
    CircuitOpenError,
    DeadlineError,
    OverloadError,
    RemoteCallError,
)

__all__ = [
    "GIOP_TO_ONC",
    "ONC_TO_GIOP",
    "GiopErrorReply",
    "OncErrorReply",
    "encode_error",
    "translate_local",
    "translate_remote",
]

#: GIOP Reply status word for a system exception (matches the backend).
SYSTEM_EXCEPTION_STATUS = 0x7FFFFFFF

_ACCEPT_NUMBERS = {
    "PROG_UNAVAIL": 1,
    "PROG_MISMATCH": 2,
    "PROC_UNAVAIL": 3,
    "GARBAGE_ARGS": 4,
    "SYSTEM_ERR": 5,
}

#: reject_stat AUTH_ERROR carries an auth_stat; AUTH_FAILED is the
#: catch-all RFC 1831 provides for "rejected for unspecified reasons".
_AUTH_FAILED = 7

_MARSHAL = "IDL:omg.org/CORBA/MARSHAL:1.0"
_BAD_OPERATION = "IDL:omg.org/CORBA/BAD_OPERATION:1.0"
_OBJECT_NOT_EXIST = "IDL:omg.org/CORBA/OBJECT_NOT_EXIST:1.0"
_INV_OBJREF = "IDL:omg.org/CORBA/INV_OBJREF:1.0"
_UNKNOWN = "IDL:omg.org/CORBA/UNKNOWN:1.0"
_NO_PERMISSION = "IDL:omg.org/CORBA/NO_PERMISSION:1.0"
_COMM_FAILURE = "IDL:omg.org/CORBA/COMM_FAILURE:1.0"
_TRANSIENT = "IDL:omg.org/CORBA/TRANSIENT:1.0"
_MESSAGE_ERROR = "GIOP::MessageError"

#: The bijective core, GIOP side keyed by repository id.  Values are
#: ("accept" | "deny", status name).
_CANONICAL = (
    (_MARSHAL, ("accept", "GARBAGE_ARGS")),
    (_BAD_OPERATION, ("accept", "PROC_UNAVAIL")),
    (_OBJECT_NOT_EXIST, ("accept", "PROG_UNAVAIL")),
    (_INV_OBJREF, ("accept", "PROG_MISMATCH")),
    (_UNKNOWN, ("accept", "SYSTEM_ERR")),
    (_NO_PERMISSION, ("deny", "AUTH_ERROR")),
    (_COMM_FAILURE, ("deny", "RPC_MISMATCH")),
)

#: GIOP repository id -> (kind, ONC status).  Total over stub output:
#: the canonical pairs plus the documented one-way entries.
GIOP_TO_ONC = dict(_CANONICAL)
GIOP_TO_ONC[_TRANSIENT] = ("accept", "SYSTEM_ERR")
GIOP_TO_ONC[_MESSAGE_ERROR] = ("accept", "GARBAGE_ARGS")

#: ONC status name -> GIOP repository id (the inverse of the canonical
#: table; total because generated ONC stubs emit no other statuses).
ONC_TO_GIOP = {onc[1]: giop for giop, onc in _CANONICAL}


@dataclass(frozen=True)
class GiopErrorReply:
    """A system-exception Reply to synthesize on a GIOP ingress leg."""

    exception_id: str
    minor: int = 0
    completed: int = 1  # COMPLETED_NO


@dataclass(frozen=True)
class OncErrorReply:
    """An error reply to synthesize on an ONC RPC ingress leg."""

    kind: str  # "accept" or "deny"
    status: str


def _to_onc(repo_id, minor=0):
    kind, status = GIOP_TO_ONC.get(repo_id, ("accept", "SYSTEM_ERR"))
    return OncErrorReply(kind, status)


def _to_giop(code, completed=1):
    repo_id = ONC_TO_GIOP.get(code, _UNKNOWN)
    return GiopErrorReply(repo_id, completed=completed)


def translate_remote(error, ingress_protocol):
    """Re-express an upstream protocol error for the ingress protocol.

    *error* is the :class:`~repro.errors.RemoteCallError` the upstream
    reply was classified as (``error.protocol`` names the egress
    protocol).  Same-protocol relays pass the status through unchanged.
    """
    if ingress_protocol == "oncrpc":
        if error.protocol == "oncrpc":
            kind = "deny" if error.code in ("RPC_MISMATCH",
                                            "AUTH_ERROR") else "accept"
            return OncErrorReply(kind, error.code)
        return _to_onc(error.code, getattr(error, "minor", 0) or 0)
    if error.protocol == "giop":
        return GiopErrorReply(
            error.code,
            minor=getattr(error, "minor", 0) or 0,
            completed=getattr(error, "completed", None) or 1,
        )
    return _to_giop(error.code)


def translate_local(error, ingress_protocol):
    """Map a *local* upstream-leg failure onto the ingress protocol.

    Covers failures that never produced an upstream reply: an open
    circuit breaker, an expired deadline, shed load, or a transport
    error (connect refused, connection lost mid-call).
    """
    if ingress_protocol == "oncrpc":
        return OncErrorReply("accept", "SYSTEM_ERR")
    if isinstance(error, (OverloadError, CircuitOpenError)):
        return GiopErrorReply(_TRANSIENT, completed=1)
    if isinstance(error, DeadlineError):
        return GiopErrorReply(_TRANSIENT, completed=2)  # COMPLETED_MAYBE
    return GiopErrorReply(_COMM_FAILURE, completed=2)


def encode_error(buffer, ctx, mapped, *, versions=(2, 2),
                 little_endian=False):
    """Write the wire bytes for *mapped* into *buffer*.

    *ctx* is the ingress correlation id (ONC xid / GIOP request id).
    *versions* fills the low/high fields of ``PROG_MISMATCH`` and
    ``RPC_MISMATCH`` replies (the ingress program version, or the RPC
    protocol version, respectively).
    """
    if isinstance(mapped, OncErrorReply):
        _encode_onc(buffer, ctx, mapped, versions)
    else:
        _encode_giop(buffer, ctx, mapped, little_endian)


def _encode_onc(buffer, xid, mapped, versions):
    if mapped.kind == "deny":
        if mapped.status == "RPC_MISMATCH":
            offset = buffer.reserve(24)
            struct.pack_into(">IIIIII", buffer.data, offset,
                             xid, 1, 1, 0, 2, 2)
        else:  # AUTH_ERROR
            offset = buffer.reserve(20)
            struct.pack_into(">IIIII", buffer.data, offset,
                             xid, 1, 1, 1, _AUTH_FAILED)
        return
    stat = _ACCEPT_NUMBERS[mapped.status]
    if mapped.status == "PROG_MISMATCH":
        offset = buffer.reserve(32)
        struct.pack_into(">IIIIIIII", buffer.data, offset,
                         xid, 1, 0, 0, 0, 2, versions[0], versions[1])
        return
    offset = buffer.reserve(24)
    struct.pack_into(">IIIIII", buffer.data, offset,
                     xid, 1, 0, 0, 0, stat)


def _encode_giop(buffer, request_id, mapped, little_endian):
    endian = "<" if little_endian else ">"
    header = b"GIOP" + bytes((1, 0, 1 if little_endian else 0, 1)) \
        + b"\0\0\0\0"
    offset = buffer.reserve(24)
    buffer.data[offset:offset + 12] = header
    struct.pack_into(endian + "III", buffer.data, offset + 12,
                     0, request_id, SYSTEM_EXCEPTION_STATUS)
    exc_id = mapped.exception_id.encode("latin-1") + b"\0"
    length = len(exc_id)
    padding = -length % 4
    tail = buffer.reserve(4 + length + padding + 8)
    struct.pack_into(endian + "I", buffer.data, tail, length)
    buffer.data[tail + 4:tail + 4 + length] = exc_id
    if padding:
        buffer.data[tail + 4 + length:tail + 4 + length + padding] = \
            b"\0" * padding
    struct.pack_into(endian + "II", buffer.data,
                     tail + 4 + length + padding,
                     mapped.minor, mapped.completed)
    struct.pack_into(endian + "I", buffer.data, offset + 8,
                     buffer.length - 12)
