"""The gateway runtime: an asyncio proxy serving a bridge plan.

:class:`AioGatewayServer` subclasses the hardened asyncio server and
overrides exactly one seam — :meth:`~repro.runtime.aio.server
.AioTcpServer._invoke` — so the full ingress machinery (record framing,
backpressure, overload shedding, fault injection, protocol-correct
error replies via the ingress module's ``encode_error_reply``, tracing)
is inherited unchanged.  Instead of dispatching to a servant, the
gateway transcodes each request onto the egress protocol, forwards it
over a multiplexed :class:`~repro.runtime.aio.client.ConnectionPool`
(circuit breaker, deadlines, optional upstream fault injection), and
translates the reply back.

The pure transcode steps, :func:`transcode_request` and
:func:`translate_reply`, are module-level functions so benchmarks and
tests can drive them without sockets.
"""

from __future__ import annotations

import struct
import time
import warnings

from repro.encoding.buffer import MarshalBuffer
from repro.obs import profile as _profile
from repro.errors import (
    CircuitOpenError,
    DeadlineError,
    DispatchError,
    FlickUserException,
    OverloadError,
    RemoteCallError,
    TransportError,
    UnmarshalError,
    WireFormatError,
)
from repro.runtime.aio.client import ConnectionPool
from repro.runtime.aio.server import AioTcpServer
from repro.runtime.server import operation_names

from repro.gateway import errmap
from repro.gateway.envelope import parse_request
from repro.gateway.plan import run_segments

__all__ = ["AioGatewayServer", "transcode_request", "translate_reply"]

_unpack_from = struct.unpack_from
_pack_into = struct.pack_into

_DECODE_ERRORS = (struct.error, IndexError, ValueError, TypeError,
                  OverflowError, UnicodeError)

_deprecated_counters_warned = [False]


def _warn_deprecated_counters():
    if _deprecated_counters_warned[0]:
        return
    _deprecated_counters_warned[0] = True
    warnings.warn(
        "the per-bridge flick_gateway_requests_total counter is"
        " deprecated and will be removed next release; read"
        " flick_profile_transcode_total{bridge,op,direction,path}"
        " instead",
        DeprecationWarning, stacklevel=3,
    )


def _write_header(buffer, header, ctx):
    template = header.template
    offset = buffer.reserve(len(template))
    buffer.data[offset:offset + len(template)] = template
    for patch_offset, patch_format, _expr in header.patches:
        _pack_into(patch_format, buffer.data, offset + patch_offset, ctx)
    return offset


def _patch_size(buffer, header, offset):
    if header.size_patch is not None:
        size_offset, size_format, delta = header.size_patch
        _pack_into(size_format, buffer.data, offset + size_offset,
                   buffer.length - delta)


def transcode_request(op, data, env, buffer):
    """Write the egress request for ingress request *data* to *buffer*.

    Returns True when the fused copy plan ran, False for the
    decode/re-encode fallback.  Raises ``WireFormatError`` (hostile or
    unrepresentable body) like a same-protocol dispatch would.
    """
    if op.request_segments is not None and env.body_offset % 4 == 0:
        offset = _write_header(buffer, op.egress_request, env.ctx)
        run_segments(op.request_segments, data, env.body_offset, buffer)
        _patch_size(buffer, op.egress_request, offset)
        return True
    if op.in_arity:
        try:
            args, _end = op.u_req(data, env.body_offset)
        except _DECODE_ERRORS as error:
            raise WireFormatError(
                "malformed %s request: %s" % (op.name, error)
            ) from None
    else:
        args = ()
    try:
        # The generated encoder writes the whole egress message —
        # header, ctx patch, body, and size patch.
        op.m_req(buffer, env.ctx, *args)
    except _DECODE_ERRORS as error:
        raise WireFormatError(
            "cannot re-encode %s request on the egress protocol: %s"
            % (op.name, error)
        ) from None
    return False


def translate_reply(op, reply, ctx, buffer):
    """Write the ingress reply for egress reply *reply* to *buffer*.

    Returns True when the fused plan ran.  Protocol-level error replies
    never reach here — the connection pool classifies and raises them —
    so *reply* is a success or user-exception reply.
    """
    body = op.check_reply(reply, ctx)
    if op.reply_segments and body % 4 == 0 and body + 4 <= len(reply):
        disc = _unpack_from(">I", reply, body)[0]
        segments = op.reply_segments.get(disc)
        if segments is not None:
            offset = _write_header(buffer, op.ingress_reply, ctx)
            word = buffer.reserve(4)
            _pack_into(">I", buffer.data, word, disc)
            end = run_segments(segments, reply, body + 4, buffer)
            if end != len(reply):
                raise WireFormatError(
                    "%s reply carries %d trailing bytes"
                    % (op.name, len(reply) - end),
                    offset=end, field="reply", limit=end,
                    actual=len(reply))
            _patch_size(buffer, op.ingress_reply, offset)
            return True
    try:
        result = op.u_rep(reply, body)
    except FlickUserException as exc:
        encoder = op.exceptions.get(type(exc).__name__)
        if encoder is None:
            raise UnmarshalError(
                "user exception %s has no ingress-protocol mapping"
                % type(exc).__name__)
        encoder(buffer, ctx, exc)
        return False
    if op.ok_arity == 0:
        op.m_rep_ok(buffer, ctx)
    elif op.ok_arity == 1:
        op.m_rep_ok(buffer, ctx, result)
    else:
        op.m_rep_ok(buffer, ctx, *result)
    return False


class AioGatewayServer(AioTcpServer):
    """Serve a :class:`~repro.gateway.plan.BridgePlan` over TCP.

    Args:
        plan: the bridge plan (see :func:`repro.gateway.plan.build_plan`).
        upstream_host, upstream_port: the egress-protocol server.
        pool_size: upstream connections (multiplexed, least-loaded).
        options: upstream :class:`~repro.runtime.aio.options.CallOptions`.
        breaker: optional circuit breaker for the upstream leg.
        upstream_fault_plan: optional :class:`repro.faults.FaultPlan`
            injected on the egress leg (the ingress leg reuses the base
            server's ``fault_plan``).
        client_stats: optional ClientStats for the upstream pool.
        Remaining keyword arguments go to :class:`AioTcpServer`
        (``host``, ``port``, ``stats``, ``max_pending``,
        ``fault_plan``, ...).
    """

    def __init__(self, plan, upstream_host, upstream_port, *,
                 pool_size=4, options=None, breaker=None,
                 upstream_fault_plan=None, client_stats=None, **kwargs):
        kwargs.setdefault("dispatch_mode", "inline")
        kwargs.setdefault("error_encoder",
                          plan.ingress_module.encode_error_reply)
        kwargs.setdefault("op_names",
                          operation_names(plan.ingress_module))
        super().__init__(None, None, **kwargs)
        self.plan = plan
        for engine in self.tiering:
            # OpPlan holds early-bound codec refs; a tier transition
            # replaces the module entries underneath, so every shadow
            # install, commit, and revert must refresh the plan's
            # bindings.  Attach now (idempotent) so the rebind below
            # also picks up the hotness-counting wrappers.
            engine.attach()
            engine.subscribe(lambda op, _names: plan.rebind(op))
        if self.tiering:
            plan.rebind()
        self._pool = ConnectionPool(
            upstream_host, upstream_port, pool_size=pool_size,
            options=options, breaker=breaker, stats=client_stats,
        )
        self._upstream = self._pool
        if upstream_fault_plan is not None:
            from repro.faults import FaultyAioTransport

            self._upstream = FaultyAioTransport(
                self._pool, upstream_fault_plan)
        self._egress_buffers = []
        registry = self.stats.registry if self.stats is not None else None
        self.bridge_label = "%s->%s" % (plan.ingress_protocol,
                                        plan.egress_protocol)
        self._metric_requests = self._metric_errors = None
        self._metric_transcode = None
        if registry is not None:
            self._metric_transcode = registry.counter(
                "flick_profile_transcode_total",
                "Gateway messages by transcode path",
                ("bridge", "op", "direction", "path"),
            )
            # Deprecated alias of flick_profile_transcode_total
            # (requests only, no direction label); kept for one release.
            self._metric_requests = registry.counter(
                "flick_gateway_requests_total",
                "Deprecated: use flick_profile_transcode_total",
                ("bridge", "op", "path"),
            )
            _warn_deprecated_counters()
            self._metric_errors = registry.counter(
                "flick_gateway_upstream_errors_total",
                "Upstream errors relayed or mapped onto the ingress leg",
                ("bridge", "code"),
            )

    # -- small egress-buffer pool (mirrors the per-connection pool) ----

    def _take_egress_buffer(self):
        if self._egress_buffers:
            return self._egress_buffers.pop()
        return MarshalBuffer()

    def _give_egress_buffer(self, buffer):
        if len(self._egress_buffers) < 32:
            buffer.reset()
            self._egress_buffers.append(buffer)

    def _count(self, op_name, direction, fused):
        path = "fused" if fused else "re-encode"
        if self._metric_transcode is not None:
            self._metric_transcode.labels(
                self.bridge_label, op_name, direction, path).inc()
        if self._metric_requests is not None and direction == "request":
            self._metric_requests.labels(
                self.bridge_label, op_name, path).inc()

    def _count_error(self, code):
        if self._metric_errors is not None:
            self._metric_errors.labels(self.bridge_label, str(code)).inc()

    def _encode_mapped(self, buffer, ctx, mapped):
        buffer.reset()
        errmap.encode_error(
            buffer, ctx, mapped,
            versions=self.plan.ingress_versions,
            little_endian=self.plan.ingress_spec.little_endian,
        )

    async def _invoke(self, record, buffer, span):
        plan = self.plan
        envelope = parse_request(record, plan.ingress_spec)
        op = plan.ops.get(envelope.op_key)
        if op is None:
            raise DispatchError(
                "operation is not bridged",
                code="bad_operation" if plan.ingress_protocol == "giop"
                else "proc_unavail")
        egress = self._take_egress_buffer()
        try:
            start = time.perf_counter() if _profile.enabled() else None
            fused = transcode_request(op, record, envelope, egress)
            if start is not None:
                _profile.record_transcode(
                    self.bridge_label, op.name, "request", fused,
                    nbytes=egress.length,
                    seconds=time.perf_counter() - start)
            payload = bytes(egress.view())
        finally:
            self._give_egress_buffer(egress)
        self._count(op.name, "request", fused)
        if span is not None:
            span.set(bridge="%s->%s" % (plan.ingress_protocol,
                                        plan.egress_protocol),
                     fused=fused)
        if op.oneway:
            await self._upstream.asend(payload)
            return False
        try:
            reply = await self._upstream.acall(payload)
        except RemoteCallError as error:
            # The upstream answered with a protocol error: relay it
            # through the cross-protocol table.
            self._count_error(error.code)
            if not envelope.expects_reply:
                return False
            self._encode_mapped(
                buffer, envelope.ctx,
                errmap.translate_remote(error, plan.ingress_protocol))
            return True
        except (CircuitOpenError, OverloadError, DeadlineError,
                TransportError) as error:
            # The upstream leg itself failed; no reply to relay.
            self._count_error(type(error).__name__)
            if span is not None:
                span.set(error=type(error).__name__)
            if not envelope.expects_reply:
                return False
            self._encode_mapped(
                buffer, envelope.ctx,
                errmap.translate_local(error, plan.ingress_protocol))
            return True
        start = time.perf_counter() if _profile.enabled() else None
        reply_fused = translate_reply(op, reply, envelope.ctx, buffer)
        if start is not None:
            _profile.record_transcode(
                self.bridge_label, op.name, "reply", reply_fused,
                nbytes=buffer.length,
                seconds=time.perf_counter() - start)
        self._count(op.name, "reply", reply_fused)
        if span is not None:
            span.set(reply_fused=reply_fused)
        return True

    async def aclose(self, drain=True):
        await super().aclose(drain=drain)
        try:
            await self._upstream.aclose()
        except Exception:
            pass
