"""Static bridge verification: prove a protocol pair lossless.

Before a gateway serves a bridge, every operation is walked in both
directions with :func:`repro.compat.mintdiff.diff_message` in
*transcoded* mode: requests as ingress-schema values re-encoded onto
the egress protocol, replies as egress-schema values re-encoded onto
the ingress protocol.  The verdict lattice is the compat subsystem's:

* ``WIRE_IDENTICAL`` — every value a client can send crosses the
  bridge byte-losslessly;
* ``DECODE_COMPATIBLE`` — values cross, but capacity widens somewhere
  (a bool presented as int, an enum losing named members) — safe to
  serve, worth knowing;
* ``BREAKING`` — some encodable value cannot be re-encoded on the
  other side (narrowed integer range, shrunk bound, missing
  operation).  ``flick bridge`` exits 2 and ``flick gateway --check``
  refuses to serve.

The result is an ordinary :class:`~repro.compat.verdict.InterfaceDiff`
whose protocol is the pair label (``iiop->oncrpc-xdr``), so the compat
report renderers and exit-code policy apply unchanged.
"""

from __future__ import annotations

from typing import List

from repro.backend import make_backend
from repro.compat.mintdiff import diff_message
from repro.compat.report import diff_exit_code, diff_report_json, \
    diff_report_text
from repro.compat.verdict import (
    ChannelDiff,
    Finding,
    InterfaceDiff,
    OperationDiff,
    Verdict,
    worst,
)

__all__ = ["bridge_exit_code", "bridge_report_json",
           "bridge_report_text", "check_bridge"]


def _unknown_op_text(backend):
    if getattr(backend, "unknown_op_code", None) == "proc_unavail":
        return "PROC_UNAVAIL"
    return "CORBA::BAD_OPERATION"


def check_bridge(ingress_result, egress_result):
    """Diff a protocol bridge; returns an InterfaceDiff for the pair.

    *ingress_result* / *egress_result* are compiled results (see
    :func:`repro.api.compile`) for the schema each side of the gateway
    was built against — usually the same schema, two backends; during a
    migration, two schema versions.
    """
    ingress_backend = make_backend(ingress_result.stubs.backend_name)
    egress_backend = make_backend(egress_result.stubs.backend_name)
    ingress_presc = ingress_result.presc
    egress_presc = egress_result.presc
    label = "%s->%s" % (ingress_backend.name, egress_backend.name)
    egress_stubs = {s.operation_name: s for s in egress_presc.stubs}

    operations: List[OperationDiff] = []
    for stub in ingress_presc.stubs:
        name = stub.operation_name
        other = egress_stubs.get(name)
        if other is None:
            operations.append(OperationDiff(
                operation=name, verdict=Verdict.BREAKING,
                findings=(Finding(
                    Verdict.BREAKING, name,
                    "operation absent upstream: ingress callers are "
                    "answered %s" % _unknown_op_text(ingress_backend),
                ),),
            ))
            continue
        findings = []
        channels = []
        if stub.oneway != other.oneway:
            findings.append(Finding(
                Verdict.BREAKING, name,
                "oneway on %s side only: the gateway cannot invent or "
                "swallow a reply"
                % ("the ingress" if stub.oneway else "the egress"),
            ))
        verdict, request_findings = diff_message(
            stub.request_pres, other.request_pres,
            ingress_presc, egress_presc,
            ingress_backend.wire_format,
            receiver_format=egress_backend.wire_format,
            path="request",
            offset=len(ingress_backend.request_header(
                ingress_presc, stub).template),
        )
        channels.append(ChannelDiff(
            channel="request:%s" % label, verdict=verdict,
            findings=tuple(request_findings)))
        if not stub.oneway and not other.oneway:
            verdict, reply_findings = diff_message(
                other.reply_pres, stub.reply_pres,
                egress_presc, ingress_presc,
                egress_backend.wire_format,
                receiver_format=ingress_backend.wire_format,
                path="reply",
                offset=len(egress_backend.reply_header(
                    egress_presc, other).template),
            )
            channels.append(ChannelDiff(
                channel="reply:%s->%s" % (egress_backend.name,
                                          ingress_backend.name),
                verdict=verdict, findings=tuple(reply_findings)))
        operations.append(OperationDiff(
            operation=name,
            verdict=worst([c.verdict for c in channels]
                          + [f.verdict for f in findings]),
            channels=tuple(channels),
            findings=tuple(findings),
        ))
    for name in egress_stubs:
        if not any(op.operation == name for op in operations):
            operations.append(OperationDiff(
                operation=name, verdict=Verdict.DECODE_COMPATIBLE,
                findings=(Finding(
                    Verdict.DECODE_COMPATIBLE, name,
                    "operation exists only upstream: unreachable "
                    "through this bridge",
                ),),
            ))
    operations.sort(key=lambda operation: operation.operation)
    return InterfaceDiff(
        protocol=label,
        old_interface=ingress_presc.interface_name,
        new_interface=egress_presc.interface_name,
        verdict=worst(op.verdict for op in operations),
        operations=tuple(operations),
    )


def bridge_report_text(diff, ingress_name, egress_name):
    """Human-readable bridge report (compat renderer, pair label)."""
    return diff_report_text({diff.protocol: diff}, ingress_name,
                            egress_name)


def bridge_report_json(diff, ingress_name, egress_name):
    document = diff_report_json({diff.protocol: diff}, ingress_name,
                                egress_name)
    document["tool"] = "flick-bridge"
    return document


def bridge_exit_code(diff):
    """0 lossless / 1 compatible-with-findings / 2 breaking."""
    return diff_exit_code({diff.protocol: diff})
