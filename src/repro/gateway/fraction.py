"""Static fused-fraction prediction for a bridge.

``flick bridge`` verifies losslessness *before* deploying a gateway;
this module predicts gateway *cost* at the same point: per operation
and direction, will the message take the fused copy path, and how much
of its bytes could copy plans cover?

Two numbers per channel, deliberately distinct:

* ``fused`` — whether the whole channel compiles to a copy plan
  (:func:`repro.gateway.plan.fuse_channel` succeeds).  This is exactly
  the path the proxy will take, so it matches the dynamic
  ``flick_profile_transcode_total`` ratio the payload-shape profiler
  records — the cross-check the tests run.
* ``byte_fraction`` — bytes coverable by per-item copy segments over
  total channel bytes.  Fusion today is all-or-nothing per channel, so
  this is the headroom number: an op at ``fused=False,
  byte_fraction=0.9`` is the case the roadmap's mixed-plan fusion item
  would rescue (copy the long array, re-encode the one string next to
  it).

Byte estimates come from :func:`repro.mint.analysis.analyze_storage` on
each item's MINT under the ingress wire format — the bounded maximum
when there is one, the fixed minimum otherwise (unbounded sequences
contribute their headers; their payload scales both numerator and
denominator identically when fusible, so the fraction stays honest).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.backend import make_backend
from repro.mint.analysis import analyze_storage
from repro.mir.build import build_naive

from repro.gateway.plan import _fuse_node, fuse_channel

__all__ = ["ChannelPrediction", "predict_fused"]


@dataclass
class ChannelPrediction:
    """Static fusion prediction for one (operation, direction)."""

    op: str
    direction: str
    #: Will the proxy take the fused copy path for this channel?
    fused: bool
    #: Bytes coverable by per-item copy segments / total bytes.
    byte_fraction: float
    fusible_bytes: int
    total_bytes: int

    def to_json(self):
        return {
            "op": self.op,
            "direction": self.direction,
            "fused": self.fused,
            "byte_fraction": round(self.byte_fraction, 4),
            "fusible_bytes": self.fusible_bytes,
            "total_bytes": self.total_bytes,
        }


def _item_bytes(node, layout, registry):
    """Storage bytes of one channel item under *layout*."""
    pres = getattr(node, "pres", None)
    mint = getattr(pres, "mint", None)
    if mint is None:
        return 0
    info = analyze_storage(mint, layout, registry)
    if info.max_size is not None:
        return info.max_size
    return info.min_size


def _predict_channel(op, direction, src_channel, dst_channel,
                     types_src, types_dst, layout, registry):
    fused = fuse_channel(src_channel, dst_channel,
                         types_src, types_dst) is not None
    fusible = 0
    total = 0
    if len(src_channel.items) == len(dst_channel.items):
        pairs = zip(src_channel.items, dst_channel.items)
        for (_sn, src), (_dn, dst) in pairs:
            nbytes = _item_bytes(src, layout, registry)
            total += nbytes
            segments = []
            if _fuse_node(src, dst, types_src, types_dst, segments):
                fusible += nbytes
    else:
        for _name, src in src_channel.items:
            total += _item_bytes(src, layout, registry)
    fraction = fusible / total if total else (1.0 if fused else 0.0)
    return ChannelPrediction(
        op=op, direction=direction, fused=fused,
        byte_fraction=fraction, fusible_bytes=fusible,
        total_bytes=total,
    )


def predict_fused(ingress_result, egress_result):
    """Per-op fusion predictions for a bridge.

    Returns ``{op: {"request": ChannelPrediction,
    "reply": ChannelPrediction}}`` (reply absent for oneway ops).
    Mirrors :func:`repro.gateway.plan.build_plan`'s preconditions: when
    either format is little-endian nothing fuses.
    """
    ingress_backend = make_backend(ingress_result.stubs.backend_name)
    egress_backend = make_backend(egress_result.stubs.backend_name)
    ingress_presc = ingress_result.presc
    egress_presc = egress_result.presc
    fusable_pair = (ingress_backend.wire_format.endian == ">"
                    and egress_backend.wire_format.endian == ">")
    naive_in = build_naive(ingress_backend, ingress_presc)
    naive_eg = build_naive(egress_backend, egress_presc)
    layout = ingress_backend.wire_format
    registry = ingress_presc.mint_registry
    egress_ops = naive_eg.operations

    predictions: Dict[str, Dict[str, ChannelPrediction]] = {}
    for stub in ingress_presc.stubs:
        name = stub.operation_name
        op_eg: Optional[dict] = egress_ops.get(name)
        if op_eg is None:
            continue
        op_in = naive_in.operations[name]
        if not fusable_pair:
            # Endianness disagreement: the proxy re-encodes everything.
            request = _predict_channel(
                name, "request", op_in["request"], op_in["request"],
                naive_in.types, naive_in.types, layout, registry)
            request.fused = False
            request.byte_fraction = 0.0
            request.fusible_bytes = 0
            predictions[name] = {"request": request}
            if op_in["reply_arms"]:
                reply = _predict_channel(
                    name, "reply", op_in["reply_arms"][0][1],
                    op_in["reply_arms"][0][1], naive_in.types,
                    naive_in.types, layout, registry)
                reply.fused = False
                reply.byte_fraction = 0.0
                reply.fusible_bytes = 0
                predictions[name]["reply"] = reply
            continue
        predictions[name] = {
            "request": _predict_channel(
                name, "request", op_in["request"], op_eg["request"],
                naive_in.types, naive_eg.types, layout, registry),
        }
        if op_in["reply_arms"] and op_eg["reply_arms"]:
            # The reply crosses egress -> ingress; predict that way.
            predictions[name]["reply"] = _predict_channel(
                name, "reply", op_eg["reply_arms"][0][1],
                op_in["reply_arms"][0][1], naive_eg.types,
                naive_in.types, layout, registry)
    return predictions
