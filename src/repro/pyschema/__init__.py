"""The native-Python dataclass schema front end.

Derives AOI directly from annotated Python dataclasses — no separate IDL
file.  Field types map per the table in docs/INTERNALS.md section 15:
``Annotated`` bounds (:class:`Len`, :class:`Fixed`), fixed-width aliases
(``i8``..``u64``, ``f32``/``f64``, ``octet``, ``char``), discriminated
unions via ``Annotated[Union[...], Tag(...)]``, nested dataclasses, and
``Optional`` pointers.  ``api.compile`` accepts a dataclass, a module
object, an :func:`interface` class, or ``.py`` source text:

.. code-block:: python

    from dataclasses import dataclass
    from repro import pyschema
    from repro.pyschema import i32, Len
    from typing import Annotated

    @pyschema.interface
    class Mail:
        def send(self, msg: Annotated[str, Len(1024)], urgency: i32) -> None: ...
        def check(self, user: Annotated[str, Len(64)]) -> i32: ...

    handle = api.compile(Mail, backend="iiop")

The generated stubs are byte-identical on the wire to the equivalent
hand-written top-level CORBA IDL (same repository id, same operation
request codes, same structural types), so a dataclass schema can replace
an IDL file without a protocol break — ``flick diff old.idl new.py``
proves it.
"""

import dataclasses as _dataclasses
import re
import types as _types

from repro import frontends
from repro.pyschema.to_aoi import (
    CHAR,
    OCTET,
    Annotated,
    Fixed,
    Float,
    Int,
    Len,
    PySchemaSpec,
    Tag,
    char,
    exception,
    f32,
    f64,
    i8,
    i16,
    i32,
    i64,
    interface,
    octet,
    oneway,
    parse_pyschema,
    pyschema_to_aoi,
    raises,
    u8,
    u16,
    u32,
    u64,
)

_SAMPLE = """\
from dataclasses import dataclass
from repro.pyschema import interface, i32

@interface
class Probe:
    def poke(self, x: i32) -> i32: ...
"""


def _lower(spec, name):
    from repro.aoi import validate

    return validate(pyschema_to_aoi(spec, name=name))


def _accepts(obj):
    if isinstance(obj, _types.ModuleType):
        return True
    return isinstance(obj, type) and (
        _dataclasses.is_dataclass(obj)
        or "__flick_interface__" in vars(obj)
    )


frontends.register(frontends.FrontEnd(
    name="pyschema",
    description="Annotated Python dataclasses (native-Python schemas)",
    suffixes=(".py",),
    patterns=(
        ("@interface/@dataclass decorator",
         re.compile(r"@(?:[\w.]+\.)?(?:interface|dataclass)\b")),
        ("dataclasses/repro.pyschema import",
         re.compile(r"^\s*(?:from|import)\s+(?:repro\.pyschema|dataclasses)"
                    r"\b", re.MULTILINE)),
    ),
    parse=parse_pyschema,
    lower=_lower,
    # Sniff before CORBA: its permissive `interface <word>` pattern also
    # matches Python source containing `@interface` + a class statement.
    priority=25,
    presentation="corba-c",
    accepts_object=_accepts,
    sample=_SAMPLE,
))

__all__ = [
    "Annotated",
    "CHAR",
    "Fixed",
    "Float",
    "Int",
    "Len",
    "OCTET",
    "PySchemaSpec",
    "Tag",
    "char",
    "exception",
    "f32",
    "f64",
    "i8",
    "i16",
    "i32",
    "i64",
    "interface",
    "octet",
    "oneway",
    "parse_pyschema",
    "pyschema_to_aoi",
    "raises",
    "u8",
    "u16",
    "u32",
    "u64",
]
