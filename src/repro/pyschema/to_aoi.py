"""Lower annotated Python dataclasses to AOI.

The pyschema front end derives the interface contract from native Python
type definitions instead of a separate IDL file — the move the
reflective-distribution line of work makes (PAPERS.md), grafted onto
Flick's pipeline: the *types* come from ``dataclasses`` and ``typing``
annotations, but the output is an ordinary validated
:class:`repro.aoi.AoiRoot`, so every presentation generator, back end,
renderer, and the tiering machinery consume it unchanged.

Type mapping (see docs/INTERNALS.md section 15 for the full table)::

    int                      -> AoiInteger(32, signed)   (i8..u64 narrow it)
    bool                     -> AoiBoolean
    float                    -> AoiFloat(64)             (f32 narrows it)
    str                      -> AoiString        (Len(n) bounds it)
    bytes                    -> AoiSequence(AoiOctet())  (Len/Fixed bound it)
    list[T]                  -> AoiSequence(T)   (Len(n) bounds, Fixed(n)
                                                 makes a fixed AoiArray)
    Optional[T]              -> AoiOptional(T)
    Annotated[Union[...], Tag(...)] -> AoiUnion (discriminated)
    enum.Enum subclass       -> AoiEnum (int values)
    @dataclass class         -> AoiStruct (registered, referenced by name)

Interfaces are classes marked with :func:`interface`; each public method
becomes an operation (parameters are ``in`` by default, the return
annotation is the reply).  A bare dataclass synthesizes an ``echo``
interface so ``api.compile(SomeDataclass)`` yields codecs for the type
through every back end.
"""

from __future__ import annotations

import dataclasses
import enum
import inspect
import itertools
import sys
import types
import typing

from repro.errors import FlickError, IdlSyntaxError
from repro.aoi import (
    AoiArray,
    AoiBoolean,
    AoiChar,
    AoiEnum,
    AoiException,
    AoiFloat,
    AoiInteger,
    AoiInterface,
    AoiNamedRef,
    AoiOctet,
    AoiOperation,
    AoiOptional,
    AoiParameter,
    AoiRoot,
    AoiSequence,
    AoiString,
    AoiStruct,
    AoiStructField,
    AoiUnion,
    AoiUnionCase,
    AoiVoid,
    Direction,
)

_NONE_TYPE = type(None)


# ----------------------------------------------------------------------
# Annotation markers
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Int:
    """Width/signedness marker: ``Annotated[int, Int(16, signed=False)]``."""

    bits: int = 32
    signed: bool = True


@dataclasses.dataclass(frozen=True)
class Float:
    """Precision marker: ``Annotated[float, Float(32)]``."""

    bits: int = 64


@dataclasses.dataclass(frozen=True)
class Len:
    """Maximum-length bound for ``str``, ``bytes``, and ``list`` fields."""

    max: int


@dataclasses.dataclass(frozen=True)
class Fixed:
    """Fixed length for ``list``/``bytes`` fields (lowers to AoiArray)."""

    length: int


class _OctetMarker:
    """Marks an ``int`` as an uninterpreted octet (never byte-swapped)."""


class _CharMarker:
    """Marks a one-character ``str`` as an AOI char."""


OCTET = _OctetMarker()
CHAR = _CharMarker()


class Tag:
    """Discriminated-union marker: ``Annotated[Union[...], Tag(...)]``.

    Each positional case is ``(label, arm_type)`` or
    ``(label, arm_name, arm_type)``; labels are ints or int-valued enum
    members, and an arm type of ``None`` carries no payload (void arm).
    ``discriminant`` is any pyschema type expression (``int`` by default,
    or an ``enum.Enum`` subclass, or ``i16``/...); ``default`` names the
    optional default arm the same way a case does, minus the label.
    """

    def __init__(self, *cases, discriminant=int, default=None, name=None):
        self.cases = tuple(cases)
        self.discriminant = discriminant
        self.default = default
        self.name = name


# Convenience aliases mirroring the fixed-width IDL primitive set.
Annotated = typing.Annotated

i8 = Annotated[int, Int(8, True)]
i16 = Annotated[int, Int(16, True)]
i32 = Annotated[int, Int(32, True)]
i64 = Annotated[int, Int(64, True)]
u8 = Annotated[int, Int(8, False)]
u16 = Annotated[int, Int(16, False)]
u32 = Annotated[int, Int(32, False)]
u64 = Annotated[int, Int(64, False)]
f32 = Annotated[float, Float(32)]
f64 = Annotated[float, Float(64)]
octet = Annotated[int, OCTET]
char = Annotated[str, CHAR]


# ----------------------------------------------------------------------
# Decorators
# ----------------------------------------------------------------------


def interface(cls=None, *, name=None, code=None):
    """Mark *cls* as an interface: public methods become operations.

    ``name`` overrides the interface name (default: the class name);
    ``code`` overrides the wire identifier (default: the CORBA-style
    repository id ``IDL:<name>:1.0`` so a pyschema interface is
    wire-identical to the equivalent top-level CORBA IDL interface).
    """

    def mark(klass):
        klass.__flick_interface__ = {"name": name, "code": code}
        return klass

    if cls is None:
        return mark
    return mark(cls)


def exception(cls):
    """Mark *cls* (auto-converted to a dataclass) as a raisable error."""
    if not dataclasses.is_dataclass(cls):
        cls = dataclasses.dataclass(cls)
    cls.__flick_exception__ = True
    return cls


def oneway(func):
    """Mark a method as fire-and-forget (no reply message)."""
    func.__flick_oneway__ = True
    return func


def raises(*exception_classes):
    """Declare the :func:`exception` classes a method may raise."""

    def mark(func):
        func.__flick_raises__ = tuple(exception_classes)
        return func

    return mark


# ----------------------------------------------------------------------
# Parse: source text / module / class -> PySchemaSpec
# ----------------------------------------------------------------------


@dataclasses.dataclass
class PySchemaSpec:
    """The pyschema front end's parse product.

    ``interfaces`` are :func:`interface`-marked classes; ``synthesized``
    are bare dataclasses to be wrapped in an ``echo`` interface.
    ``namespace`` is the globals dict used to resolve type hints.
    """

    name: str
    namespace: dict
    interfaces: tuple
    synthesized: tuple


def parse_pyschema(source, name="<pyschema>"):
    """Parse a pyschema input: ``.py`` source text, a module, or a class."""
    if isinstance(source, str):
        return _parse_source(source, name)
    if isinstance(source, types.ModuleType):
        return _spec_from_namespace(
            vars(source), name=name if name != "<pyschema>" else source.__name__,
            defined_in=source.__name__,
        )
    if isinstance(source, type):
        return _spec_from_class(source, name)
    raise FlickError(
        "pyschema input must be Python source text, a module, an"
        " @interface class, or a dataclass; got %r" % type(source).__name__
    )


_SOURCE_COUNTER = itertools.count(1)


def _parse_source(text, name):
    # A real module registered (briefly) in sys.modules: the dataclass
    # decorator resolves string annotations through
    # ``sys.modules[cls.__module__]``, so a bare dict namespace breaks
    # sources using ``from __future__ import annotations``.
    module_name = "_flick_pyschema_%d" % next(_SOURCE_COUNTER)
    module = types.ModuleType(module_name, "pyschema source %s" % name)
    try:
        # dont_inherit: never leak this module's own __future__ flags
        # into the user's schema source.
        code = compile(text, name, "exec", dont_inherit=True)
    except SyntaxError as exc:
        raise IdlSyntaxError(
            "%s: invalid Python schema source: %s" % (name, exc)
        ) from None
    sys.modules[module_name] = module
    try:
        exec(code, module.__dict__)
    except Exception as exc:
        raise FlickError(
            "%s: error executing Python schema source: %s" % (name, exc)
        ) from exc
    finally:
        sys.modules.pop(module_name, None)
    return _spec_from_namespace(
        vars(module), name, defined_in=module_name)


def _spec_from_class(cls, name):
    module = sys.modules.get(getattr(cls, "__module__", None))
    namespace = vars(module) if module is not None else {}
    if "__flick_interface__" in vars(cls):
        return PySchemaSpec(name, namespace, (cls,), ())
    if dataclasses.is_dataclass(cls):
        return PySchemaSpec(name, namespace, (), (cls,))
    raise FlickError(
        "pyschema class %r is neither an @interface class nor a"
        " dataclass" % cls.__name__
    )


def _spec_from_namespace(namespace, name, defined_in):
    classes = []
    for value in namespace.values():
        if not isinstance(value, type):
            continue
        if getattr(value, "__module__", None) != defined_in:
            continue
        if value not in classes:
            classes.append(value)
    interfaces = tuple(
        cls for cls in classes if "__flick_interface__" in vars(cls)
    )
    if interfaces:
        return PySchemaSpec(name, namespace, interfaces, ())
    candidates = [
        cls for cls in classes
        if dataclasses.is_dataclass(cls)
        and "__flick_exception__" not in vars(cls)
        and not cls.__name__.startswith("_")
    ]
    referenced = set()
    for cls in candidates:
        referenced.update(_referenced_dataclasses(cls, namespace))
    roots = tuple(cls for cls in candidates if cls not in referenced)
    if not roots:
        roots = tuple(candidates)
    if not roots:
        raise FlickError(
            "%s: no @interface classes or dataclasses found; a pyschema"
            " module must define at least one" % name
        )
    return PySchemaSpec(name, namespace, (), roots)


def _referenced_dataclasses(cls, namespace):
    """Dataclasses appearing (at any nesting) in *cls*'s field types."""
    try:
        hints = typing.get_type_hints(
            cls, globalns=namespace, include_extras=True)
    except Exception:
        return set()
    out = set()
    stack = [hints[f.name] for f in dataclasses.fields(cls)
             if f.name in hints]
    seen = set()
    while stack:
        tp = stack.pop()
        if id(tp) in seen:
            continue
        seen.add(id(tp))
        if isinstance(tp, type) and dataclasses.is_dataclass(tp):
            out.add(tp)
            continue
        stack.extend(typing.get_args(tp))
    return out


# ----------------------------------------------------------------------
# Lower: PySchemaSpec -> AoiRoot
# ----------------------------------------------------------------------


class _Lowerer:
    def __init__(self, spec):
        self.spec = spec
        self.root = AoiRoot(name=spec.name)
        self._classes = {}
        self._in_progress = set()
        self._tags = {}

    def lower(self):
        for cls in self.spec.interfaces:
            self.root.add_interface(self._lower_interface(cls))
        for cls in self.spec.synthesized:
            self.root.add_interface(self._lower_echo(cls))
        return self.root

    # -- interfaces ----------------------------------------------------

    def _lower_interface(self, cls):
        meta = cls.__flick_interface__
        iface_name = meta.get("name") or cls.__name__
        code = meta.get("code") or (
            "IDL:%s:1.0" % iface_name.replace("::", "/"))
        operations = []
        for attr_name, func in vars(cls).items():
            if attr_name.startswith("_"):
                continue
            if not isinstance(func, types.FunctionType):
                continue
            operations.append(
                self._lower_operation(iface_name, attr_name, func))
        if not operations:
            raise FlickError(
                "pyschema interface %r has no public methods" % iface_name)
        return AoiInterface(
            name=iface_name, operations=tuple(operations), code=code)

    def _lower_operation(self, iface_name, op_name, func):
        context = "%s.%s" % (iface_name, op_name)
        try:
            hints = typing.get_type_hints(
                func, globalns=self.spec.namespace, include_extras=True)
        except Exception as exc:
            raise FlickError(
                "pyschema: cannot resolve annotations of %s: %s"
                % (context, exc)) from None
        signature = inspect.signature(func)
        parameters = []
        for param_name in list(signature.parameters)[1:]:  # skip self
            if param_name not in hints:
                raise FlickError(
                    "pyschema: parameter %r of %s has no type annotation"
                    % (param_name, context))
            parameters.append(AoiParameter(
                param_name,
                self._lower_type(
                    hints[param_name], "%s.%s" % (context, param_name)),
                Direction.IN,
            ))
        return_hint = hints.get("return")
        if return_hint is None or return_hint is _NONE_TYPE:
            return_type = AoiVoid()
        else:
            return_type = self._lower_type(return_hint, context + ".return")
        raises_names = tuple(
            self._lower_exception(exc_cls)
            for exc_cls in getattr(func, "__flick_raises__", ())
        )
        return AoiOperation(
            op_name,
            tuple(parameters),
            return_type,
            request_code=op_name,
            oneway=getattr(func, "__flick_oneway__", False),
            raises=raises_names,
        )

    def _lower_echo(self, cls):
        """Wrap a bare dataclass in a single-operation echo interface."""
        reference = self._lower_struct(cls)
        name = cls.__name__
        operation = AoiOperation(
            "echo",
            (AoiParameter("value", reference, Direction.IN),),
            reference,
            request_code="echo",
        )
        return AoiInterface(
            name=name, operations=(operation,), code="IDL:%s:1.0" % name)

    # -- named definitions ---------------------------------------------

    def _lower_struct(self, cls):
        name = cls.__name__
        if name in self._classes:
            if self._classes[name] is not cls:
                raise FlickError(
                    "pyschema: two different classes named %r in one"
                    " schema" % name)
            return AoiNamedRef(name)
        if name in self._in_progress:
            return AoiNamedRef(name)  # recursion ties through the name
        self._in_progress.add(name)
        try:
            struct = AoiStruct(name=name, fields=self._struct_fields(cls))
        finally:
            self._in_progress.discard(name)
        self._classes[name] = cls
        self.root.define_type(name, struct)
        return AoiNamedRef(name)

    def _struct_fields(self, cls):
        if not dataclasses.is_dataclass(cls):
            raise FlickError(
                "pyschema: %r must be a dataclass to be used as a"
                " struct" % cls.__name__)
        try:
            hints = typing.get_type_hints(
                cls, globalns=self.spec.namespace, include_extras=True)
        except Exception as exc:
            raise FlickError(
                "pyschema: cannot resolve field annotations of %r: %s"
                % (cls.__name__, exc)) from None
        return tuple(
            AoiStructField(
                field.name,
                self._lower_type(
                    hints[field.name],
                    "%s.%s" % (cls.__name__, field.name)),
            )
            for field in dataclasses.fields(cls)
        )

    def _lower_enum(self, cls, context):
        name = cls.__name__
        if name in self._classes:
            if self._classes[name] is not cls:
                raise FlickError(
                    "pyschema: two different classes named %r in one"
                    " schema" % name)
            return AoiNamedRef(name)
        members = []
        for member in cls:
            if not isinstance(member.value, int):
                raise FlickError(
                    "%s: enum %s.%s must have an int value (wire"
                    " discriminators are integral)"
                    % (context, name, member.name))
            members.append((member.name, member.value))
        self._classes[name] = cls
        self.root.define_type(name, AoiEnum(name, tuple(members)))
        return AoiNamedRef(name)

    def _lower_exception(self, cls):
        name = cls.__name__
        if name not in self.root.exceptions:
            self.root.define_exception(
                AoiException(name, self._struct_fields(cls)))
        return name

    # -- type expressions ----------------------------------------------

    def _lower_type(self, tp, context):
        metadata = ()
        while hasattr(tp, "__metadata__"):  # Annotated[...]
            metadata = tuple(tp.__metadata__) + metadata
            tp = tp.__origin__

        marker = bound = fixed = tag = None
        for item in metadata:
            if isinstance(item, (Int, Float, _OctetMarker, _CharMarker)):
                marker = item
            elif isinstance(item, Len):
                bound = item.max
            elif isinstance(item, Fixed):
                fixed = item.length
            elif isinstance(item, Tag):
                tag = item
            # other Annotated metadata (docs, validators) is ignored

        if tag is not None:
            return self._lower_union(tp, tag, context)
        if isinstance(marker, Int):
            return AoiInteger(marker.bits, marker.signed)
        if isinstance(marker, Float):
            return AoiFloat(marker.bits)
        if isinstance(marker, _OctetMarker):
            return AoiOctet()
        if isinstance(marker, _CharMarker):
            return AoiChar()

        origin = typing.get_origin(tp)
        if origin in (list, tuple):
            args = [a for a in typing.get_args(tp) if a is not Ellipsis]
            if len(args) != 1:
                raise FlickError(
                    "%s: sequences must have exactly one element type"
                    " (use list[T] or tuple[T, ...])" % context)
            element = self._lower_type(args[0], context + "[]")
            if fixed is not None:
                return AoiArray(element, fixed)
            return AoiSequence(element, bound)
        if origin is typing.Union or origin is getattr(
                types, "UnionType", object()):
            args = typing.get_args(tp)
            payload = [a for a in args if a is not _NONE_TYPE]
            if len(payload) == len(args):
                raise FlickError(
                    "%s: a bare Union needs a discriminant — annotate it"
                    " as Annotated[Union[...], Tag(...)]" % context)
            if len(payload) != 1:
                raise FlickError(
                    "%s: Optional with multiple payload arms needs"
                    " Annotated[Union[...], Tag(...)]" % context)
            return AoiOptional(self._lower_type(payload[0], context))

        if tp is bool:
            return AoiBoolean()
        if tp is int:
            return AoiInteger(32, True)
        if tp is float:
            return AoiFloat(64)
        if tp is str:
            return AoiString(bound)
        if tp in (bytes, bytearray):
            if fixed is not None:
                return AoiArray(AoiOctet(), fixed)
            return AoiSequence(AoiOctet(), bound)
        if tp is _NONE_TYPE:
            return AoiVoid()
        if isinstance(tp, type) and issubclass(tp, enum.Enum):
            return self._lower_enum(tp, context)
        if isinstance(tp, type) and dataclasses.is_dataclass(tp):
            return self._lower_struct(tp)
        raise FlickError(
            "%s: unsupported pyschema type %r (see the type-mapping"
            " table in docs/INTERNALS.md section 15)" % (context, tp))

    def _lower_union(self, tp, tag, context):
        origin = typing.get_origin(tp)
        if origin is not typing.Union and origin is not getattr(
                types, "UnionType", object()):
            raise FlickError(
                "%s: Tag(...) metadata applies to typing.Union types,"
                " got %r" % (context, tp))
        if not tag.cases:
            raise FlickError("%s: Tag(...) needs at least one case"
                             % context)
        # The same Tag annotation may appear in several positions (a
        # parameter and a return, say); they share one union type.
        if id(tag) in self._tags:
            return AoiNamedRef(self._tags[id(tag)])
        discriminator = self._lower_type(
            tag.discriminant, context + ".discriminant")
        cases = []
        for index, case in enumerate(tag.cases):
            label, arm_name, arm_type = self._unpack_case(
                case, index, context)
            arm_aoi = (AoiVoid() if arm_type is None
                       else self._lower_type(
                           arm_type, "%s.%s" % (context, arm_name)))
            cases.append(AoiUnionCase((label,), arm_name, arm_aoi))
        if tag.default is not None:
            default = tag.default
            if isinstance(default, tuple):
                default_name, default_type = default
            else:
                default_name, default_type = "default_arm", default
            arm_aoi = (AoiVoid() if default_type is None
                       else self._lower_type(
                           default_type, "%s.%s" % (context, default_name)))
            cases.append(AoiUnionCase((), default_name, arm_aoi))
        union_name = tag.name or context.replace(".", "_") + "_union"
        if union_name in self.root.types:
            raise FlickError(
                "%s: union name %r already defined; give this Tag an"
                " explicit name=" % (context, union_name))
        self.root.define_type(
            union_name, AoiUnion(union_name, discriminator, tuple(cases)))
        self._tags[id(tag)] = union_name
        return AoiNamedRef(union_name)

    def _unpack_case(self, case, index, context):
        if not isinstance(case, tuple) or len(case) not in (2, 3):
            raise FlickError(
                "%s: Tag case %d must be (label, type) or (label, name,"
                " type)" % (context, index))
        if len(case) == 3:
            label, arm_name, arm_type = case
        else:
            label, arm_type = case
            arm_name = "arm%d" % index
        if isinstance(label, enum.Enum):
            label = label.value
        if not isinstance(label, int):
            raise FlickError(
                "%s: Tag case %d label must be an int or int-valued enum"
                " member, got %r" % (context, index, label))
        return label, arm_name, arm_type


def pyschema_to_aoi(spec, name="<pyschema>"):
    """Lower a parsed :class:`PySchemaSpec` to an (unvalidated) AoiRoot."""
    lowerer = _Lowerer(spec)
    root = lowerer.lower()
    root.name = name or spec.name
    return root
