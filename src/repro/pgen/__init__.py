"""Presentation generators (paper section 2.2).

A presentation generator decides how an AOI interface maps onto target
language constructs — function names and signatures, parameter passing
conventions, record and union layouts, exception surfacing.  The generic
machinery lives in :class:`repro.pgen.base.PresentationGenerator`; the
concrete generators specialize only naming and C-declaration policy, which
is why (as in the paper's Table 1) they are small.
"""

from repro.pgen.base import PresentationGenerator
from repro.pgen.corba_c import CorbaCLenPresentation, CorbaCPresentation
from repro.pgen.rpcgen import RpcgenPresentation
from repro.pgen.fluke import FlukePresentation

PRESENTATIONS = {
    "corba-c": CorbaCPresentation,
    "corba-c-len": CorbaCLenPresentation,
    "rpcgen": RpcgenPresentation,
    "fluke": FlukePresentation,
}


def make_presentation(style):
    """Instantiate a presentation generator by registry name."""
    try:
        return PRESENTATIONS[style]()
    except KeyError:
        raise ValueError(
            "unknown presentation style %r (have: %s)"
            % (style, ", ".join(sorted(PRESENTATIONS)))
        ) from None


__all__ = [
    "CorbaCLenPresentation",
    "CorbaCPresentation",
    "FlukePresentation",
    "PRESENTATIONS",
    "PresentationGenerator",
    "RpcgenPresentation",
    "make_presentation",
]
