"""The rpcgen-compatible presentation generator.

Implements Sun's rpcgen C presentation style: stub names are the lowercased
procedure name suffixed with the version number (``send_1``), the client
stub takes a pointer to its single argument plus a ``CLIENT *`` handle and
returns a pointer to a static result, and XDR type names follow rpcgen's
conventions (``u_int``, ``bool_t``, ``quad_t``).
"""

from __future__ import annotations

from repro.aoi import (
    AoiBoolean,
    AoiChar,
    AoiFloat,
    AoiInteger,
    AoiOctet,
    AoiVoid,
)
from repro.cast import nodes as c
from repro.pgen.base import PresentationGenerator
from repro.pres import nodes as p

_SCALARS = {
    (8, True): "char",
    (8, False): "u_char",
    (16, True): "short",
    (16, False): "u_short",
    (32, True): "int",
    (32, False): "u_int",
    (64, True): "quad_t",
    (64, False): "u_quad_t",
}


class RpcgenPresentation(PresentationGenerator):
    """Sun rpcgen's C presentation style."""

    style = "rpcgen"

    def mangle(self, scoped_name):
        return scoped_name.replace("::", "_").lower()

    def record_name(self, type_name):
        # rpcgen keeps XDR type names as written.
        return type_name.replace("::", "_")

    def union_name(self, type_name):
        return type_name.replace("::", "_")

    def stub_name(self, interface, operation):
        # `Program::Version` interfaces carry (program, version) codes.
        version = 1
        if isinstance(interface.code, tuple) and len(interface.code) == 2:
            version = interface.code[1]
        return "%s_%d" % (operation.name.lower(), version)

    def c_scalar_type(self, aoi_type):
        if isinstance(aoi_type, AoiInteger):
            return _SCALARS[(aoi_type.bits, aoi_type.signed)]
        if isinstance(aoi_type, AoiFloat):
            return "float" if aoi_type.bits == 32 else "double"
        if isinstance(aoi_type, AoiChar):
            return "char"
        if isinstance(aoi_type, AoiBoolean):
            return "bool_t"
        if isinstance(aoi_type, AoiOctet):
            return "u_char"
        if isinstance(aoi_type, AoiVoid):
            return "void"
        raise TypeError("not a scalar AOI type: %r" % (aoi_type,))

    def c_stub_decl(self, interface, operation, stub_name, parameters):
        # rpcgen: result pointer, argument pointers, CLIENT handle.
        return_param = None
        argument_types = []
        for parameter in parameters:
            if parameter.direction == "return":
                return_param = parameter
            elif parameter.is_in:
                argument_types.append(parameter)
        if return_param is None:
            return_type = c.Pointer(c.TypeName("void"))
        else:
            return_type = c.Pointer(self._base_c_type(return_param.pres))
        params = [
            c.Param(c.Pointer(self._base_c_type(parameter.pres)),
                    parameter.name)
            for parameter in argument_types
        ]
        params.append(c.Param(c.Pointer(c.TypeName("CLIENT")), "clnt"))
        return c.FuncDecl(return_type, stub_name, tuple(params))

    def _base_c_type(self, pres):
        if isinstance(pres, p.PresString):
            return c.Pointer(c.TypeName("char"))
        if isinstance(pres, p.PresRef):
            return c.TypeName(self.record_name(pres.name))
        if isinstance(pres, (p.PresDirect, p.PresEnum)):
            return c.TypeName(pres.c_type_name)
        if isinstance(pres, p.PresStruct):
            return c.TypeName(pres.record_name)
        if isinstance(pres, p.PresUnion):
            return c.TypeName(pres.union_name)
        if isinstance(pres, p.PresBytes):
            return c.TypeName("opaque_seq")
        if isinstance(pres, p.PresCountedArray):
            # rpcgen presents variable arrays as { u_int len; T *val; }.
            return c.TypeName("%s_array" % self._element_name(pres.element))
        if isinstance(pres, p.PresFixedArray):
            return c.ArrayOf(self._base_c_type(pres.element), pres.length)
        if isinstance(pres, p.PresOptPtr):
            return c.Pointer(self._base_c_type(pres.element))
        if isinstance(pres, p.PresVoid):
            return c.TypeName("void")
        raise TypeError("no C type for %r" % type(pres).__name__)

    def _element_name(self, pres):
        base = self._base_c_type(pres)
        while isinstance(base, (c.Pointer, c.ArrayOf)):
            base = base.target if isinstance(base, c.Pointer) else base.element
        return base.name.replace(" ", "_")

    def c_seq_decl(self, element_pres):
        return (
            "%s_array" % self._element_name(element_pres),
            self._base_c_type(element_pres),
        )

    def c_prelude_decls(self, interface):
        # rpcgen clients speak through the classic CLIENT handle, which
        # the runtime header declares; no per-interface handle type.
        return []
