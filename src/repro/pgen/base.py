"""The generic presentation-generation library.

This is the large shared base (paper Table 1: 6509 lines of base library
versus a few hundred per derived generator) from which the CORBA C, rpcgen,
and Fluke presentation generators derive.  It owns all the structural work:

* building MINT message types for every operation (via
  :class:`repro.mint.builder.MintBuilder`),
* building the PRES trees that associate MINT nodes with presented types,
  keeping both registries in lock step so recursive types resolve,
* expanding CORBA attributes into ``_get_``/``_set_`` operation pairs,
* flattening interface inheritance,
* and assembling the per-stub :class:`repro.pres.presc.PresCStub` records.

Subclasses override only the *policy* hooks: identifier naming and C type
and prototype construction.
"""

from __future__ import annotations

from repro.errors import PresentationError
from repro.aoi import (
    AoiArray,
    AoiBoolean,
    AoiChar,
    AoiEnum,
    AoiFloat,
    AoiInteger,
    AoiNamedRef,
    AoiOctet,
    AoiOperation,
    AoiOptional,
    AoiParameter,
    AoiSequence,
    AoiString,
    AoiStruct,
    AoiUnion,
    AoiVoid,
    Direction,
)
from repro.cast import nodes as c
from repro.mint.builder import MintBuilder
from repro.mint.types import (
    MintInteger,
    MintStruct,
    MintSlot,
    MintTypeRef,
    MintUnion,
    MintUnionCase,
    MintVoid,
)
from repro.pres import nodes as p
from repro.pres.presc import PresC, PresCStub, PresParam


class PresentationGenerator:
    """Maps AOI onto a particular presentation style.

    Drive it with :meth:`generate`, which returns one :class:`PresC` for
    the requested side of an interface.
    """

    #: Registry name of the style; subclasses set this.
    style = "abstract"

    # ------------------------------------------------------------------
    # Policy hooks (overridden by concrete presentations)
    # ------------------------------------------------------------------

    def mangle(self, scoped_name):
        """Flatten an ``A::B`` scoped name into a C identifier."""
        return scoped_name.replace("::", "_")

    def stub_name(self, interface, operation):
        """The generated function name for an operation's stub."""
        return "%s_%s" % (self.mangle(interface.name), operation.name)

    def record_name(self, type_name):
        """The generated record class / C struct name for an AOI struct."""
        return self.mangle(type_name)

    def union_name(self, type_name):
        return self.mangle(type_name)

    def exception_class(self, exception_name):
        return self.mangle(exception_name)

    def c_scalar_type(self, aoi_type):
        """C type name for an atomic AOI type."""
        raise NotImplementedError

    def string_pres(self, mint, bound):
        """How strings present; the default is the OPT_STR char* style."""
        from repro.pres.nodes import PresString

        return PresString(mint, "char *", bound)

    def c_prelude_decls(self, interface):
        """Leading C declarations (the interface's object handle type)."""
        return [
            c.Typedef(
                c.TypeName("flick_object_t"), self.mangle(interface.name)
            )
        ]

    def c_seq_decl(self, element_pres):
        """(carrier type name, element C type) for an anonymous counted
        array appearing in a stub signature."""
        return (
            "%s_seq" % self._element_name(element_pres),
            self._base_c_type(element_pres),
        )

    def c_stub_decl(self, interface, operation, stub_name, parameters):
        """Build the CAST prototype for one stub."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def generate(self, root, interface, side="client"):
        """Produce the :class:`PresC` for *interface* on *side*."""
        if side not in ("client", "server"):
            raise PresentationError("side must be 'client' or 'server'")
        builder = MintBuilder(root)
        pres_registry = p.PresRegistry()
        context = _Context(self, root, builder, pres_registry)
        stubs = []
        for operation in self._all_operations(root, interface):
            stubs.append(context.build_stub(interface, operation))
        c_decls = context.collect_c_decls(stubs, interface)
        return PresC(
            interface_name=interface.name,
            interface_code=interface.code,
            side=side,
            presentation_style=self.style,
            stubs=tuple(stubs),
            mint_registry=builder.registry,
            pres_registry=pres_registry,
            c_decls=tuple(c_decls),
            exception_classes=dict(context.exception_classes),
        )

    def _all_operations(self, root, interface):
        """Flatten inherited operations and expand attributes."""
        operations = []
        seen_interfaces = set()
        seen_names = set()

        def visit(current):
            if current.name in seen_interfaces:
                return
            seen_interfaces.add(current.name)
            for parent_name in current.parents:
                visit(root.interface_named(parent_name))
            for operation in current.operations:
                if operation.name not in seen_names:
                    seen_names.add(operation.name)
                    operations.append(operation)
            for attribute in current.attributes:
                for operation in self._attribute_operations(attribute):
                    if operation.name not in seen_names:
                        seen_names.add(operation.name)
                        operations.append(operation)

        visit(interface)
        return operations

    def _attribute_operations(self, attribute):
        """CORBA attributes present as _get_/_set_ operation pairs."""
        getter = AoiOperation(
            "_get_%s" % attribute.name,
            (),
            attribute.type,
            request_code="_get_%s" % attribute.name,
        )
        if attribute.readonly:
            return [getter]
        setter = AoiOperation(
            "_set_%s" % attribute.name,
            (AoiParameter("value", attribute.type, Direction.IN),),
            AoiVoid(),
            request_code="_set_%s" % attribute.name,
        )
        return [getter, setter]


class _Context:
    """One generation run: keeps the MINT and PRES registries aligned."""

    def string_pres(self, mint, bound):
        """The string mapping; presentations may substitute variants."""
        return self.policy.string_pres(mint, bound)

    def __init__(self, policy, root, builder, pres_registry):
        self.policy = policy
        self.root = root
        self.builder = builder
        self.pres_registry = pres_registry
        self.exception_classes = {}
        # C declarations for named types, in definition order.
        self._c_type_decls = []
        self._c_declared = set()

    # ------------------------------------------------------------------
    # PRES construction (mirrors MintBuilder.mint_for structurally)
    # ------------------------------------------------------------------

    def pres_for(self, aoi_type):
        """Build the PRES node presenting *aoi_type*.

        The MINT side is rebuilt through the shared MintBuilder so that the
        PRES node's ``mint`` is structurally identical to what the message
        MINT contains.
        """
        policy = self.policy
        mint = self.builder.mint_for(aoi_type)
        if isinstance(aoi_type, AoiNamedRef):
            name = aoi_type.name
            if name not in self.pres_registry:
                # Reserve the slot to terminate recursion, then fill it in.
                self.pres_registry.define(name, None)
                definition = self.pres_for_definition(
                    self.root.types[name], name
                )
                self.pres_registry._definitions[name] = definition
            return p.PresRef(mint, name)
        return self.pres_for_definition(aoi_type, None)

    def pres_for_definition(self, aoi_type, definition_name):
        policy = self.policy
        mint = self.builder.mint_for(
            AoiNamedRef(definition_name) if definition_name else aoi_type
        )
        if definition_name is not None:
            mint = self.builder.registry[definition_name]
        if isinstance(aoi_type, AoiNamedRef):
            return self.pres_for(aoi_type)
        if isinstance(aoi_type, AoiVoid):
            return p.PresVoid(mint)
        if isinstance(
            aoi_type, (AoiInteger, AoiFloat, AoiChar, AoiBoolean, AoiOctet)
        ):
            return p.PresDirect(mint, policy.c_scalar_type(aoi_type))
        if isinstance(aoi_type, AoiEnum):
            name = definition_name or aoi_type.name
            # Enum type naming follows the same policy as records so the
            # C declarations and every use agree.
            enum_name = policy.record_name(name)
            return p.PresEnum(mint, enum_name, enum_name, aoi_type.members)
        if isinstance(aoi_type, AoiString):
            return self.string_pres(mint, aoi_type.bound)
        if isinstance(aoi_type, AoiArray):
            resolved_element = self.root.resolve(aoi_type.element)
            if isinstance(resolved_element, AoiOctet):
                return p.PresBytes(
                    mint, "flick_octet[]", fixed_length=aoi_type.length
                )
            element = self.pres_for(aoi_type.element)
            return p.PresFixedArray(
                mint, element, aoi_type.length,
                c_type_name="%s[%d]" % (element.c_type_name, aoi_type.length),
            )
        if isinstance(aoi_type, AoiSequence):
            resolved_element = self.root.resolve(aoi_type.element)
            if isinstance(resolved_element, AoiOctet):
                return p.PresBytes(
                    mint, "flick_octet_seq", bound=aoi_type.bound
                )
            element = self.pres_for(aoi_type.element)
            return p.PresCountedArray(
                mint, element, aoi_type.bound,
                c_type_name="%s_seq" % element.c_type_name,
            )
        if isinstance(aoi_type, AoiOptional):
            element = self.pres_for(aoi_type.element)
            return p.PresOptPtr(
                mint, element, c_type_name="%s *" % element.c_type_name
            )
        if isinstance(aoi_type, AoiStruct):
            name = definition_name or aoi_type.name
            record = policy.record_name(name)
            fields = tuple(
                p.PresStructField(field.name, self.pres_for(field.type))
                for field in aoi_type.fields
            )
            return p.PresStruct(mint, record, fields, c_type_name=record)
        if isinstance(aoi_type, AoiUnion):
            return self._pres_for_union(aoi_type, definition_name, mint)
        raise PresentationError(
            "cannot present AOI node %r" % type(aoi_type).__name__
        )

    def _pres_for_union(self, aoi_union, definition_name, mint):
        policy = self.policy
        name = definition_name or aoi_union.name
        union_name = policy.union_name(name)
        discriminator_aoi = self.root.resolve(aoi_union.discriminator)
        discriminator = self.pres_for(aoi_union.discriminator)
        arms = []
        for index, case in enumerate(aoi_union.cases):
            labels = mint.cases[index].labels
            arm_pres = (
                p.PresVoid(MintVoid())
                if isinstance(self.root.resolve(case.type), AoiVoid)
                else self.pres_for(case.type)
            )
            arms.append(p.PresUnionArm(labels, case.name, arm_pres))
        return p.PresUnion(
            mint, union_name, discriminator, tuple(arms),
            c_type_name=union_name,
        )

    # ------------------------------------------------------------------
    # Stub assembly
    # ------------------------------------------------------------------

    def build_stub(self, interface, operation):
        policy = self.policy
        parameters = []
        request_fields = []
        for parameter in operation.parameters:
            pres = self.pres_for(parameter.type)
            parameters.append(
                PresParam(parameter.name, parameter.direction.value, pres)
            )
            if parameter.direction.is_in:
                request_fields.append(
                    p.PresStructField(parameter.name, pres)
                )
        return_pres = None
        if not isinstance(self.root.resolve(operation.return_type), AoiVoid):
            return_pres = self.pres_for(operation.return_type)
            parameters.append(PresParam("_return", "return", return_pres))
        request_mint = self.builder.request_mint(operation)
        request_pres = p.PresStruct(
            request_mint,
            "%s_request" % operation.name,
            tuple(request_fields),
        )
        reply_pres = self._build_reply_pres(operation, parameters)
        stub_name = policy.stub_name(interface, operation)
        c_decl = policy.c_stub_decl(
            interface, operation, stub_name, tuple(parameters)
        )
        return PresCStub(
            operation_name=operation.name,
            stub_name=stub_name,
            request_code=operation.request_code,
            oneway=operation.oneway,
            parameters=tuple(parameters),
            request_pres=request_pres,
            reply_pres=reply_pres,
            c_decl=c_decl,
        )

    def _build_reply_pres(self, operation, parameters):
        if operation.oneway:
            return None
        reply_mint = self.builder.reply_mint(operation)
        # Field order matches the reply MINT: the return value first, then
        # out/inout parameters in declaration order.
        success_fields = [
            p.PresStructField("_return", parameter.pres)
            for parameter in parameters
            if parameter.direction == "return"
        ]
        for parameter in parameters:
            if parameter.direction in ("out", "inout"):
                success_fields.append(
                    p.PresStructField(parameter.name, parameter.pres)
                )
        success_mint = reply_mint.cases[0].type
        arms = [
            p.PresUnionArm(
                (0,),
                "_success",
                p.PresStruct(
                    success_mint,
                    "%s_reply" % operation.name,
                    tuple(success_fields),
                ),
            )
        ]
        for index, exception_name in enumerate(operation.raises, 1):
            exception = self.root.exception_named(exception_name)
            class_name = self.policy.exception_class(exception_name)
            self.exception_classes[exception_name] = class_name
            fields = tuple(
                p.PresStructField(field.name, self.pres_for(field.type))
                for field in exception.fields
            )
            arms.append(
                p.PresUnionArm(
                    (index,),
                    exception_name,
                    p.PresException(
                        reply_mint.cases[index].type,
                        exception_name,
                        class_name,
                        fields,
                    ),
                )
            )
        return p.PresUnion(
            reply_mint,
            "%s_reply_union" % operation.name,
            p.PresDirect(
                reply_mint.discriminator,
                self.policy.c_scalar_type(AoiInteger(32, False)),
            ),
            tuple(arms),
        )

    # ------------------------------------------------------------------
    # C declarations (fidelity artifact)
    # ------------------------------------------------------------------

    def collect_c_decls(self, stubs, interface):
        declarations = list(self.policy.c_prelude_decls(interface))
        for name in self.pres_registry.names():
            self._declare_named_type(name, declarations)
        for stub in stubs:
            for parameter in stub.parameters:
                self._declare_param_support(parameter.pres, declarations)
            declarations.append(stub.c_decl)
        return declarations

    def _declare_named_type(self, name, declarations):
        if name in self._c_declared:
            return
        self._c_declared.add(name)
        pres = self.pres_registry[name]
        # Value members require complete types, so declare those named
        # dependencies first; pointer-like members (optionals, counted
        # arrays) only need the incomplete struct tag.
        self._declare_value_dependencies(pres, declarations)
        declarations.extend(self._c_decls_for(name, pres))

    def _declare_value_dependencies(self, pres, declarations):
        if isinstance(pres, p.PresRef):
            self._declare_named_type(pres.name, declarations)
        elif isinstance(pres, p.PresStruct):
            for struct_field in pres.fields:
                self._declare_value_dependencies(
                    struct_field.pres, declarations
                )
        elif isinstance(pres, p.PresUnion):
            for arm in pres.arms:
                self._declare_value_dependencies(arm.pres, declarations)
        elif isinstance(pres, p.PresFixedArray):
            self._declare_value_dependencies(pres.element, declarations)
        # OptPtr / CountedArray members are pointers: no dependency.

    def _declare_param_support(self, pres, declarations):
        """Emit carrier typedefs for anonymous sequences in signatures."""
        if isinstance(pres, (p.PresFixedArray, p.PresOptPtr)):
            self._declare_param_support(pres.element, declarations)
            return
        if not isinstance(pres, p.PresCountedArray):
            return
        self._declare_param_support(pres.element, declarations)
        name, element_type = self.policy.c_seq_decl(pres.element)
        if name in self._c_declared:
            return
        self._c_declared.add(name)
        declarations.append(
            c.StructDef(
                "%s_carrier" % name,
                (
                    c.FieldDecl(c.TypeName("flick_u32"), "_length"),
                    c.FieldDecl(c.Pointer(element_type), "_buffer"),
                ),
            )
        )
        declarations.append(
            c.Typedef(c.TypeName("struct %s_carrier" % name), name)
        )

    def _c_decls_for(self, name, pres):
        policy = self.policy
        # Named types keep their presentation-level spelling (rpcgen
        # preserves XDR names verbatim; the CORBA mapping flattens).
        mangled = policy.record_name(name)
        if isinstance(pres, p.PresStruct):
            fields = tuple(
                c.FieldDecl(self._c_type(field.pres), field.name)
                for field in pres.fields
            )
            return (
                c.StructDef(pres.record_name, fields),
                c.Typedef(
                    c.TypeName("struct %s" % pres.record_name),
                    pres.record_name,
                ),
            )
        if isinstance(pres, p.PresUnion):
            union_fields = tuple(
                c.FieldDecl(self._c_type(arm.pres), arm.name)
                for arm in pres.arms
                if not isinstance(arm.pres, p.PresVoid)
            )
            wrapper = c.StructDef(
                pres.union_name,
                (
                    c.FieldDecl(
                        self._c_type(pres.discriminator), "_d"
                    ),
                    c.FieldDecl(
                        c.TypeName("union %s_u" % pres.union_name), "_u"
                    ),
                ),
            )
            return (
                c.UnionDef("%s_u" % pres.union_name, union_fields),
                wrapper,
                c.Typedef(
                    c.TypeName("struct %s" % pres.union_name),
                    pres.union_name,
                ),
            )
        if isinstance(pres, p.PresEnum):
            return (
                c.EnumDef(mangled, pres.members),
                c.Typedef(c.TypeName("enum %s" % mangled), mangled),
            )
        if isinstance(pres, p.PresCountedArray):
            element_type = self._c_type(pres.element)
            return (
                c.StructDef(
                    "%s_carrier" % mangled,
                    (
                        c.FieldDecl(c.TypeName("flick_u32"), "_length"),
                        c.FieldDecl(c.Pointer(element_type), "_buffer"),
                    ),
                ),
                c.Typedef(
                    c.TypeName("struct %s_carrier" % mangled), mangled
                ),
            )
        if isinstance(pres, p.PresBytes) and pres.fixed_length is None:
            return (c.Typedef(c.TypeName("flick_octet_seq"), mangled),)
        # Typedef of a non-constructed type.
        return (c.Typedef(self._c_type(pres), mangled),)

    def _c_type(self, pres):
        if isinstance(pres, p.PresRef):
            target = self.pres_registry[pres.name]
            if isinstance(target, p.PresStruct):
                return c.TypeName("struct %s" % target.record_name)
            if isinstance(target, p.PresUnion):
                return c.TypeName("struct %s" % target.union_name)
            return c.TypeName(self.policy.record_name(pres.name))
        if isinstance(pres, p.PresString):
            return c.Pointer(c.TypeName("char"))
        if isinstance(pres, p.PresBytes):
            if pres.fixed_length is not None:
                return c.ArrayOf(c.TypeName("unsigned char"), pres.fixed_length)
            return c.TypeName("flick_octet_seq")
        if isinstance(pres, p.PresFixedArray):
            return c.ArrayOf(self._c_type(pres.element), pres.length)
        if isinstance(pres, p.PresCountedArray):
            return c.Pointer(self._c_type(pres.element))
        if isinstance(pres, p.PresOptPtr):
            return c.Pointer(self._c_type(pres.element))
        if isinstance(pres, p.PresStruct):
            return c.TypeName("struct %s" % pres.record_name)
        if isinstance(pres, p.PresUnion):
            return c.TypeName("struct %s" % pres.union_name)
        if isinstance(pres, (p.PresDirect, p.PresEnum)):
            return c.TypeName(pres.c_type_name)
        if isinstance(pres, p.PresVoid):
            return c.TypeName("void")
        raise PresentationError(
            "no C type for PRES node %r" % type(pres).__name__
        )
