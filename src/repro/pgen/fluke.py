"""The Fluke presentation generator.

Fluke's presentation (paper Table 1 derives it from the CORBA presentation
library) follows the CORBA C mapping but prefixes stub names with
``fluke_`` and drops the environment parameter in favour of an integer
return code — the style used by the Fluke microkernel's servers, where
stubs are invoked from the kernel's dispatch loop.
"""

from __future__ import annotations

from repro.cast import nodes as c
from repro.pgen.corba_c import CorbaCPresentation


class FlukePresentation(CorbaCPresentation):
    """Fluke kernel-IPC presentation, derived from the CORBA C mapping."""

    style = "fluke"

    def stub_name(self, interface, operation):
        return "fluke_%s_%s" % (self.mangle(interface.name), operation.name)

    def c_stub_decl(self, interface, operation, stub_name, parameters):
        declaration = super().c_stub_decl(
            interface, operation, stub_name, parameters
        )
        # Replace the trailing CORBA_Environment with an int return code:
        # Fluke stubs report failure through their return value.
        params = tuple(
            parameter for parameter in declaration.parameters
            if parameter.name != "_ev"
        )
        if isinstance(declaration.return_type, c.TypeName) and (
            declaration.return_type.name == "void"
        ):
            return c.FuncDecl(c.TypeName("int"), stub_name, params)
        return c.FuncDecl(declaration.return_type, stub_name, params)
