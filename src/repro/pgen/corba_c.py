"""The CORBA C-language mapping presentation generator.

Implements the presentation style of the CORBA 2.0 C mapping, as in the
paper's Mail example: ``void Mail_send(Mail obj, char *msg,
CORBA_Environment *ev)``.  Scoped names flatten with underscores, every stub
takes the object reference first and the environment pointer last, ``out``
parameters pass by pointer, and non-void results return directly.
"""

from __future__ import annotations

from repro.aoi import (
    AoiBoolean,
    AoiChar,
    AoiFloat,
    AoiInteger,
    AoiOctet,
    AoiVoid,
)
from repro.cast import nodes as c
from repro.pgen.base import PresentationGenerator
from repro.pres import nodes as p

_SCALARS = {
    (8, True): "CORBA_char",
    (8, False): "CORBA_octet",
    (16, True): "CORBA_short",
    (16, False): "CORBA_unsigned_short",
    (32, True): "CORBA_long",
    (32, False): "CORBA_unsigned_long",
    (64, True): "CORBA_long_long",
    (64, False): "CORBA_unsigned_long_long",
}


class CorbaCPresentation(PresentationGenerator):
    """CORBA 2.0 C-language mapping."""

    style = "corba-c"

    def c_scalar_type(self, aoi_type):
        if isinstance(aoi_type, AoiInteger):
            return _SCALARS[(aoi_type.bits, aoi_type.signed)]
        if isinstance(aoi_type, AoiFloat):
            return "CORBA_float" if aoi_type.bits == 32 else "CORBA_double"
        if isinstance(aoi_type, AoiChar):
            return "CORBA_char"
        if isinstance(aoi_type, AoiBoolean):
            return "CORBA_boolean"
        if isinstance(aoi_type, AoiOctet):
            return "CORBA_octet"
        if isinstance(aoi_type, AoiVoid):
            return "void"
        raise TypeError("not a scalar AOI type: %r" % (aoi_type,))

    def c_stub_decl(self, interface, operation, stub_name, parameters):
        object_type = c.TypeName(self.mangle(interface.name))
        params = [c.Param(object_type, "_obj")]
        return_type = c.TypeName("void")
        for parameter in parameters:
            if parameter.direction == "return":
                return_type = self._param_c_type(parameter.pres, by_ref=False)
                continue
            by_ref = parameter.direction in ("out", "inout")
            params.append(
                c.Param(
                    self._param_c_type(parameter.pres, by_ref=by_ref),
                    parameter.name,
                )
            )
        params.append(
            c.Param(c.Pointer(c.TypeName("CORBA_Environment")), "_ev")
        )
        return c.FuncDecl(return_type, stub_name, tuple(params))

    def _param_c_type(self, pres, by_ref):
        base = self._base_c_type(pres)
        if by_ref:
            return c.Pointer(base)
        return base

    def _base_c_type(self, pres):
        if isinstance(pres, p.PresString):
            return c.Pointer(c.TypeName("CORBA_char"))
        if isinstance(pres, p.PresRef):
            return c.TypeName(self.mangle(pres.name))
        if isinstance(pres, (p.PresDirect, p.PresEnum)):
            return c.TypeName(pres.c_type_name)
        if isinstance(pres, p.PresStruct):
            return c.TypeName(pres.record_name)
        if isinstance(pres, p.PresUnion):
            return c.TypeName(pres.union_name)
        if isinstance(pres, p.PresBytes):
            return c.TypeName("CORBA_octet_seq")
        if isinstance(pres, p.PresCountedArray):
            return c.TypeName("%s_seq" % self._element_name(pres.element))
        if isinstance(pres, p.PresFixedArray):
            return c.ArrayOf(self._base_c_type(pres.element), pres.length)
        if isinstance(pres, p.PresOptPtr):
            return c.Pointer(self._base_c_type(pres.element))
        if isinstance(pres, p.PresVoid):
            return c.TypeName("void")
        raise TypeError("no C type for %r" % type(pres).__name__)

    def _element_name(self, pres):
        base = self._base_c_type(pres)
        while isinstance(base, (c.Pointer, c.ArrayOf)):
            base = base.target if isinstance(base, c.Pointer) else base.element
        return base.name.replace(" ", "_")


class CorbaCLenPresentation(CorbaCPresentation):
    """The paper's alternative presentation (section 2.2).

    Departs from the standard CORBA C mapping exactly as the paper's
    example does: every string parameter carries an explicit length —
    ``void Mail_send(Mail obj, char *msg, int len)`` — so the stub never
    counts characters.  In the executable Python stubs the caller passes
    already-encoded ``bytes`` (whose length is implicit), so marshal
    skips the character encode as well.  The network contract is
    untouched: messages are byte-identical to the standard presentation.
    """

    style = "corba-c-len"

    def string_pres(self, mint, bound):
        return p.PresString(mint, "char *", bound, carries_length=True)

    def c_stub_decl(self, interface, operation, stub_name, parameters):
        declaration = super().c_stub_decl(
            interface, operation, stub_name, parameters
        )
        by_name = {
            parameter.name: parameter for parameter in parameters
        }
        params = []
        for param in declaration.parameters:
            params.append(param)
            pres_param = by_name.get(param.name)
            if pres_param is not None and isinstance(
                pres_param.pres, p.PresString
            ):
                params.append(
                    c.Param(
                        c.TypeName("CORBA_unsigned_long"),
                        "%s_len" % param.name,
                    )
                )
        return c.FuncDecl(
            declaration.return_type, declaration.name, tuple(params)
        )
