"""PRES and PRES_C (paper sections 2.2.3-2.2.4).

A PRES node defines the *type conversion* between a MINT message type and a
target-language type: a direct atom mapping, an OPT_PTR null-able pointer, a
counted array, a struct field mapping, and so on.  PRES_C bundles, for every
stub of an interface presentation, the CAST declaration, the request/reply
MINT types, and the PRES trees tying them together — everything a back end
needs, and nothing about transports.
"""

from repro.pres.nodes import (
    PresBytes,
    PresCountedArray,
    PresDirect,
    PresEnum,
    PresException,
    PresFixedArray,
    PresNode,
    PresOptPtr,
    PresRef,
    PresRegistry,
    PresString,
    PresStruct,
    PresStructField,
    PresUnion,
    PresUnionArm,
    PresVoid,
)
from repro.pres.presc import PresC, PresCStub, PresParam
from repro.pres.values import (
    get_field,
    make_union,
    normalize,
    union_parts,
)
from repro.pres.interp import InterpretiveCodec

__all__ = [
    "InterpretiveCodec",
    "PresBytes",
    "PresC",
    "PresCStub",
    "PresCountedArray",
    "PresDirect",
    "PresEnum",
    "PresException",
    "PresFixedArray",
    "PresNode",
    "PresOptPtr",
    "PresParam",
    "PresRef",
    "PresRegistry",
    "PresString",
    "PresStruct",
    "PresStructField",
    "PresUnion",
    "PresUnionArm",
    "PresVoid",
    "get_field",
    "make_union",
    "normalize",
    "union_parts",
]
