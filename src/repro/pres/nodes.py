"""PRES node definitions.

Each node records a relationship between a MINT node and a presented
(target-language) type.  For the executable Python target the presented
types follow a fixed convention:

====================  =============================================
PRES node             Python presentation
====================  =============================================
PresDirect            int / float / bool / 1-char str
PresEnum              int (the enumerator's ordinal value)
PresString            str
PresBytes             bytes
PresFixedArray        list of *length* presented elements
PresCountedArray      list of presented elements
PresOptPtr            None, or the presented element (OPT_PTR)
PresStruct            record object (generated class) or mapping
PresUnion             ``(discriminator_value, presented_payload)``
PresException         exception instance with member attributes
PresVoid              None
====================  =============================================

For the C target the same nodes carry the CORBA-C/rpcgen type names chosen
by the presentation generator (``c_type_name``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import FlickError, PresentationError
from repro.mint.types import MintType


class PresNode:
    """Base class for presentation mapping nodes.

    Every node carries ``mint`` (the message type it presents) and
    ``c_type_name`` (the declared C type for the fidelity artifact).
    """


@dataclass(frozen=True)
class PresVoid(PresNode):
    mint: MintType
    c_type_name: str = "void"


@dataclass(frozen=True)
class PresDirect(PresNode):
    """Atom <-> scalar variable: no transformation (the paper's first
    example, ``int x`` <-> 4-byte integer)."""

    mint: MintType
    c_type_name: str


@dataclass(frozen=True)
class PresEnum(PresNode):
    """32-bit wire integer <-> named enumeration."""

    mint: MintType
    c_type_name: str
    enum_name: str
    members: Tuple[Tuple[str, int], ...]


@dataclass(frozen=True)
class PresString(PresNode):
    """Counted char array <-> ``char *`` / Python str (the paper's second
    example, an OPT_STR-style mapping).

    ``carries_length`` selects the paper's alternative presentation
    (section 2.2: ``Mail_send(obj, msg, len)``): the application supplies
    the text as already-encoded bytes whose length is implicit, so the
    stub neither counts nor re-encodes characters.  The network contract
    is unchanged — only the programmer's contract differs.
    """

    mint: MintType
    c_type_name: str = "char *"
    bound: Optional[int] = None
    carries_length: bool = False


@dataclass(frozen=True)
class PresBytes(PresNode):
    """Octet array <-> opaque byte buffer / Python bytes."""

    mint: MintType
    c_type_name: str = "flick_octet_seq"
    fixed_length: Optional[int] = None
    bound: Optional[int] = None


@dataclass(frozen=True)
class PresFixedArray(PresNode):
    """Fixed-length MINT array <-> C array / Python list."""

    mint: MintType
    element: PresNode
    length: int
    c_type_name: str = ""


@dataclass(frozen=True)
class PresCountedArray(PresNode):
    """Variable-length MINT array <-> (pointer, length) / Python list."""

    mint: MintType
    element: PresNode
    bound: Optional[int] = None
    c_type_name: str = ""


@dataclass(frozen=True)
class PresOptPtr(PresNode):
    """0-or-1 MINT array <-> null-able pointer (the paper's OPT_PTR)."""

    mint: MintType
    element: PresNode
    c_type_name: str = ""


@dataclass(frozen=True)
class PresStructField(PresNode):
    name: str
    pres: PresNode


@dataclass(frozen=True)
class PresStruct(PresNode):
    """MINT struct <-> target record type.

    ``record_name`` is the generated class/struct identifier (e.g.
    ``Test_Rect``); the Python back ends emit a matching record class.
    """

    mint: MintType
    record_name: str
    fields: Tuple[PresStructField, ...]
    c_type_name: str = ""

    def field_named(self, name):
        for struct_field in self.fields:
            if struct_field.name == name:
                return struct_field
        raise KeyError(name)


@dataclass(frozen=True)
class PresUnionArm(PresNode):
    labels: Tuple[object, ...]
    name: str
    pres: PresNode

    @property
    def is_default(self):
        return not self.labels


@dataclass(frozen=True)
class PresUnion(PresNode):
    """MINT union <-> tagged union: ``(_d, _u)`` in the CORBA C mapping,
    a ``(discriminator, payload)`` pair in Python."""

    mint: MintType
    union_name: str
    discriminator: PresNode
    arms: Tuple[PresUnionArm, ...]
    c_type_name: str = ""

    def arm_for(self, value):
        default = None
        for arm in self.arms:
            if arm.is_default:
                default = arm
            elif value in arm.labels:
                return arm
        if default is None:
            raise PresentationError(
                "union %s has no arm for discriminator %r"
                % (self.union_name, value)
            )
        return default


@dataclass(frozen=True)
class PresException(PresNode):
    """Exception arm of a reply <-> raised exception object."""

    mint: MintType
    exception_name: str
    class_name: str
    fields: Tuple[PresStructField, ...]
    c_type_name: str = ""


@dataclass(frozen=True)
class PresRef(PresNode):
    """Reference to a named PRES definition (recursive presentations)."""

    mint: MintType  # the corresponding MintTypeRef
    name: str
    c_type_name: str = ""


class PresRegistry:
    """Named PRES definitions, parallel to the MINT registry."""

    def __init__(self):
        self._definitions: Dict[str, PresNode] = {}

    def define(self, name, pres_node):
        if name in self._definitions:
            raise FlickError("duplicate PRES definition %r" % name)
        self._definitions[name] = pres_node

    def __contains__(self, name):
        return name in self._definitions

    def __getitem__(self, name):
        return self._definitions[name]

    def names(self):
        return sorted(self._definitions)

    def items(self):
        return [(name, self._definitions[name]) for name in self.names()]

    def resolve(self, pres_node):
        seen = set()
        while isinstance(pres_node, PresRef):
            if pres_node.name in seen:
                raise FlickError(
                    "circular PRES reference through %r" % pres_node.name
                )
            seen.add(pres_node.name)
            try:
                pres_node = self._definitions[pres_node.name]
            except KeyError:
                raise FlickError(
                    "undefined PRES reference %r" % pres_node.name
                ) from None
        return pres_node
