"""PRES_C: the complete description of one interface presentation.

A PRES_C value is the contract between a presentation generator and a back
end (paper section 2.2.4): for each stub it carries the CAST declaration,
the MINT descriptions of the messages the stub sends and receives, and the
PRES trees associating the two.  It says *everything* about how client or
server code sees the interface and *nothing* about message encoding or
transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cast.nodes import FuncDecl
from repro.mint.types import MintRegistry, MintType
from repro.pres.nodes import PresNode, PresRegistry, PresStruct, PresUnion


@dataclass(frozen=True)
class PresParam:
    """One presented parameter of a stub.

    ``direction`` is ``"in"``, ``"out"``, ``"inout"``, or ``"return"``.
    """

    name: str
    direction: str
    pres: PresNode

    @property
    def is_in(self):
        return self.direction in ("in", "inout")

    @property
    def is_out(self):
        return self.direction in ("out", "inout", "return")


@dataclass(frozen=True)
class PresCStub:
    """Everything a back end needs to implement one operation's stubs.

    Attributes:
        request_pres: a :class:`PresStruct` over the request MINT whose
            fields are the in-flowing parameters.
        reply_pres: a :class:`PresUnion` over the reply MINT (success arm
            plus one arm per exception), or ``None`` for oneway operations.
    """

    operation_name: str
    stub_name: str
    request_code: object
    oneway: bool
    parameters: Tuple[PresParam, ...]
    request_pres: PresStruct
    reply_pres: Optional[PresUnion]
    c_decl: FuncDecl

    def in_parameters(self):
        return tuple(p for p in self.parameters if p.is_in)

    def out_parameters(self):
        return tuple(
            p for p in self.parameters
            if p.direction in ("out", "inout")
        )

    @property
    def return_param(self):
        for parameter in self.parameters:
            if parameter.direction == "return":
                return parameter
        return None


@dataclass
class PresC:
    """A complete presentation of one interface for one side.

    ``side`` is ``"client"`` or ``"server"`` — presentation generators
    create separate PRES_C values per side, as Flick does; for the
    presentations implemented here the two differ only in which stub
    bodies a back end will generate, so the structural content is shared.
    """

    interface_name: str
    interface_code: object
    side: str
    presentation_style: str
    stubs: Tuple[PresCStub, ...]
    mint_registry: MintRegistry
    pres_registry: PresRegistry
    #: Top-level CAST declarations (typedefs, structs, prototypes).
    c_decls: Tuple[object, ...] = ()
    #: Exception presentation: AOI exception name -> generated class name.
    exception_classes: Dict[str, str] = field(default_factory=dict)

    def stub_named(self, operation_name):
        for stub in self.stubs:
            if stub.operation_name == operation_name:
                return stub
        raise KeyError(operation_name)
