"""Helpers over presented Python values.

Generated record classes, plain mappings (as produced by the interpretive
baseline), and ``(discriminator, payload)`` union pairs all flow through
the same stubs and tests; these helpers give every component one way to
read them.
"""

from __future__ import annotations

from repro.errors import MarshalError


def get_field(value, name):
    """Read struct field *name* from a record object or a mapping."""
    if isinstance(value, dict):
        try:
            return value[name]
        except KeyError:
            raise MarshalError(
                "struct value is missing field %r" % name
            ) from None
    try:
        return getattr(value, name)
    except AttributeError:
        raise MarshalError(
            "struct value %r has no field %r" % (type(value).__name__, name)
        ) from None


def make_union(discriminator, payload):
    """Build the canonical presented union value."""
    return (discriminator, payload)


def union_parts(value):
    """Split a presented union value into (discriminator, payload)."""
    try:
        discriminator, payload = value
    except (TypeError, ValueError):
        raise MarshalError(
            "union value must be a (discriminator, payload) pair, got %r"
            % (value,)
        ) from None
    return discriminator, payload


class Record:
    """Base class for generated record classes.

    Subclasses define ``_fields`` and ``__slots__``; equality and repr are
    field-wise, and :func:`normalize` converts them to dicts so records
    produced by different compilers compare equal.
    """

    __slots__ = ()
    _fields = ()

    def __init__(self, *args, **kwargs):
        fields = self._fields
        if len(args) > len(fields):
            raise TypeError(
                "%s takes at most %d arguments"
                % (type(self).__name__, len(fields))
            )
        for name, value in zip(fields, args):
            setattr(self, name, value)
        for name, value in kwargs.items():
            if name not in fields:
                raise TypeError(
                    "%s has no field %r" % (type(self).__name__, name)
                )
            setattr(self, name, value)

    def __eq__(self, other):
        if isinstance(other, Record):
            if self._fields != other._fields:
                return NotImplemented
            return all(
                getattr(self, name) == getattr(other, name)
                for name in self._fields
            )
        return NotImplemented

    def __repr__(self):
        parts = ", ".join(
            "%s=%r" % (name, getattr(self, name, None))
            for name in self._fields
        )
        return "%s(%s)" % (type(self).__name__, parts)

    def to_dict(self):
        return {name: getattr(self, name) for name in self._fields}


def normalize(value):
    """Recursively convert presented values to plain Python data.

    Records become dicts, lists are normalized element-wise, and union
    pairs keep their shape.  Two values produced by different compilers
    (e.g. Flick record objects vs. interpretive dicts) normalize equal
    exactly when they present the same message.
    """
    if isinstance(value, Record):
        return {name: normalize(item) for name, item in value.to_dict().items()}
    if isinstance(value, dict):
        return {name: normalize(item) for name, item in value.items()}
    if isinstance(value, tuple):
        return tuple(normalize(item) for item in value)
    if isinstance(value, list):
        return [normalize(item) for item in value]
    if isinstance(value, BaseException):
        result = {"_exception": type(value).__name__}
        for name in getattr(value, "_fields", ()):
            result[name] = normalize(getattr(value, name))
        return result
    return value
