"""The interpretive marshaler: runtime PRES-tree walking.

This is the reference implementation of every encoding — a direct,
unoptimized interpreter over PRES/MINT graphs, performing one function call
(and one buffer check) per atomic datum.  It plays two roles:

* Ground truth for the property-based tests: optimized generated stubs must
  produce byte-identical messages.
* The engine of the ILU-style baseline compiler (paper section 5: ILU
  "merely traverses the AST, emitting marshal statements for each datum,
  which are typically expensive calls to type-specific marshaling
  functions"), and of the SunSoft-IIOP-style interpretive ORB.

Structs decode to plain dicts; generated record classes are a compiled-stub
luxury the interpreter does not have.
"""

from __future__ import annotations

import struct

from repro.errors import MarshalError, UnmarshalError
from repro.encoding.buffer import MarshalBuffer, ReadCursor
from repro.mint.types import MintChar
from repro.pres import nodes as p
from repro.pres.values import get_field, make_union, union_parts


class InterpretiveCodec:
    """Encodes and decodes presented values by walking PRES trees."""

    def __init__(self, wire_format, pres_registry=None, mint_registry=None):
        self.format = wire_format
        self.pres_registry = pres_registry or p.PresRegistry()
        self.mint_registry = mint_registry

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def encode(self, pres, value, buffer=None):
        """Encode *value* as described by *pres*; return the buffer."""
        if buffer is None:
            buffer = MarshalBuffer()
        self._encode(pres, value, buffer)
        return buffer

    def _encode(self, pres, value, buffer):
        if isinstance(pres, p.PresRef):
            self._encode(self.pres_registry[pres.name], value, buffer)
        elif isinstance(pres, p.PresVoid):
            pass
        elif isinstance(pres, (p.PresDirect, p.PresEnum)):
            self.format.pack_atom(buffer, pres.mint, value)
        elif isinstance(pres, p.PresString):
            self._encode_string(pres, value, buffer)
        elif isinstance(pres, p.PresBytes):
            self._encode_bytes(pres, value, buffer)
        elif isinstance(pres, p.PresFixedArray):
            if len(value) != pres.length:
                raise MarshalError(
                    "fixed array needs %d elements, got %d"
                    % (pres.length, len(value))
                )
            self._write_array_header(pres.mint, pres.length, buffer)
            for element in value:
                self._encode(pres.element, element, buffer)
            self._pad_array(pres.mint, buffer)
        elif isinstance(pres, p.PresCountedArray):
            if pres.bound is not None and len(value) > pres.bound:
                raise MarshalError(
                    "array exceeds bound %d: %d elements"
                    % (pres.bound, len(value))
                )
            self._write_array_header(pres.mint, len(value), buffer)
            for element in value:
                self._encode(pres.element, element, buffer)
            self._pad_array(pres.mint, buffer)
        elif isinstance(pres, p.PresOptPtr):
            if value is None:
                self._write_array_header(pres.mint, 0, buffer)
            else:
                self._write_array_header(pres.mint, 1, buffer)
                self._encode(pres.element, value, buffer)
        elif isinstance(pres, p.PresStruct):
            for struct_field in pres.fields:
                self._encode(
                    struct_field.pres, get_field(value, struct_field.name),
                    buffer,
                )
        elif isinstance(pres, p.PresUnion):
            discriminator, payload = union_parts(value)
            arm = pres.arm_for(discriminator)
            self.format.pack_atom(
                buffer, pres.mint.discriminator, discriminator
            )
            self._encode(arm.pres, payload, buffer)
        elif isinstance(pres, p.PresException):
            for struct_field in pres.fields:
                self._encode(
                    struct_field.pres, get_field(value, struct_field.name),
                    buffer,
                )
        else:
            raise MarshalError(
                "cannot encode PRES node %r" % type(pres).__name__
            )

    def _write_array_header(self, mint_array, count, buffer):
        header = self.format.array_header_size(mint_array)
        if header == 0:
            return
        if header == 4:
            padding = -buffer.length % self.format.array_header_alignment(
                mint_array
            )
            offset = buffer.reserve(4 + padding) + padding
            if padding:
                buffer.data[offset - padding : offset] = b"\0" * padding
            struct.pack_into(
                self.format.endian + "I", buffer.data, offset, count
            )
        elif header == 8:
            # Mach typed-message descriptor.
            padding = -buffer.length % 4
            offset = buffer.reserve(8 + padding) + padding
            if padding:
                buffer.data[offset - padding : offset] = b"\0" * padding
            struct.pack_into(
                self.format.endian + "II", buffer.data, offset,
                self.format.descriptor_word(self._descriptor_atom(mint_array)),
                count,
            )
        else:
            raise MarshalError("unsupported array header size %d" % header)

    def _descriptor_atom(self, mint_array):
        element = mint_array.element
        if self.mint_registry is not None:
            element = self.mint_registry.resolve(element)
        from repro.mint.types import is_atom

        if is_atom(element):
            return element
        # Aggregates ship as byte runs behind a byte descriptor.
        from repro.mint.types import MintInteger

        return MintInteger(8, False)

    def _pad_array(self, mint_array, buffer):
        # Trailing padding for byte-packed runs (XDR and Mach pad to 4).
        if not self.format.pads_byte_runs(mint_array):
            return
        padding = -buffer.length % 4
        if padding:
            offset = buffer.reserve(padding)
            buffer.data[offset : offset + padding] = b"\0" * padding

    def _encode_string(self, pres, value, buffer):
        if pres.bound is not None and len(value) > pres.bound:
            raise MarshalError(
                "string exceeds bound %d: %d chars" % (pres.bound, len(value))
            )
        if getattr(pres, "carries_length", False):
            data = bytes(value)
        else:
            data = value.encode("latin-1")
        nul = 1 if self.format.string_nul_terminated else 0
        self._write_array_header(pres.mint, len(data) + nul, buffer)
        offset = buffer.reserve(len(data) + nul)
        buffer.data[offset : offset + len(data)] = data
        if nul:
            buffer.data[offset + len(data)] = 0
        self._pad_array(pres.mint, buffer)

    def _encode_bytes(self, pres, value, buffer):
        if pres.fixed_length is not None and len(value) != pres.fixed_length:
            raise MarshalError(
                "opaque data must be exactly %d bytes, got %d"
                % (pres.fixed_length, len(value))
            )
        if pres.bound is not None and len(value) > pres.bound:
            raise MarshalError(
                "opaque data exceeds bound %d: %d bytes"
                % (pres.bound, len(value))
            )
        self._write_array_header(pres.mint, len(value), buffer)
        offset = buffer.reserve(len(value))
        buffer.data[offset : offset + len(value)] = value
        self._pad_array(pres.mint, buffer)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def decode(self, pres, data):
        """Decode one value described by *pres* from *data* (bytes or
        cursor); returns ``(value, cursor)``."""
        cursor = data if isinstance(data, ReadCursor) else ReadCursor(data)
        return self._decode(pres, cursor), cursor

    def _decode(self, pres, cursor):
        if isinstance(pres, p.PresRef):
            return self._decode(self.pres_registry[pres.name], cursor)
        if isinstance(pres, p.PresVoid):
            return None
        if isinstance(pres, (p.PresDirect, p.PresEnum)):
            return self.format.unpack_atom(cursor, pres.mint)
        if isinstance(pres, p.PresString):
            return self._decode_string(pres, cursor)
        if isinstance(pres, p.PresBytes):
            return self._decode_bytes(pres, cursor)
        if isinstance(pres, p.PresFixedArray):
            count = self._read_array_header(pres.mint, cursor)
            if count is not None and count != pres.length:
                raise UnmarshalError(
                    "fixed array length %d does not match %d"
                    % (count, pres.length)
                )
            value = [
                self._decode(pres.element, cursor)
                for _ in range(pres.length)
            ]
            self._skip_padding(pres.mint, cursor)
            return value
        if isinstance(pres, p.PresCountedArray):
            count = self._read_array_header(pres.mint, cursor)
            if count is None:
                raise UnmarshalError("counted array without a length header")
            if pres.bound is not None and count > pres.bound:
                raise UnmarshalError(
                    "received array exceeds bound %d: %d" % (pres.bound, count)
                )
            value = [self._decode(pres.element, cursor) for _ in range(count)]
            self._skip_padding(pres.mint, cursor)
            return value
        if isinstance(pres, p.PresOptPtr):
            count = self._read_array_header(pres.mint, cursor)
            if count == 0:
                return None
            if count != 1:
                raise UnmarshalError(
                    "optional data with count %r" % (count,)
                )
            return self._decode(pres.element, cursor)
        if isinstance(pres, p.PresStruct):
            return {
                struct_field.name: self._decode(struct_field.pres, cursor)
                for struct_field in pres.fields
            }
        if isinstance(pres, p.PresUnion):
            discriminator = self.format.unpack_atom(
                cursor, pres.mint.discriminator
            )
            arm = pres.arm_for(discriminator)
            return make_union(discriminator, self._decode(arm.pres, cursor))
        if isinstance(pres, p.PresException):
            return {
                struct_field.name: self._decode(struct_field.pres, cursor)
                for struct_field in pres.fields
            }
        raise UnmarshalError(
            "cannot decode PRES node %r" % type(pres).__name__
        )

    def _read_array_header(self, mint_array, cursor):
        header = self.format.array_header_size(mint_array)
        if header == 0:
            return None
        if header == 4:
            cursor.align(self.format.array_header_alignment(mint_array))
            offset = cursor.advance(4)
            (count,) = struct.unpack_from(
                self.format.endian + "I", cursor.data, offset
            )
            return count
        if header == 8:
            cursor.align(4)
            offset = cursor.advance(8)
            _descriptor, count = struct.unpack_from(
                self.format.endian + "II", cursor.data, offset
            )
            return count
        raise UnmarshalError("unsupported array header size %d" % header)

    def _skip_padding(self, mint_array, cursor):
        if not self.format.pads_byte_runs(mint_array):
            return
        padding = -cursor.offset % 4
        if padding:
            cursor.advance(padding)

    def _decode_string(self, pres, cursor):
        count = self._read_array_header(pres.mint, cursor)
        if count is None:
            raise UnmarshalError("string without a length header")
        nul = 1 if self.format.string_nul_terminated else 0
        if count < nul:
            raise UnmarshalError("string length %d too short" % count)
        data = cursor.take(count)
        if nul:
            data = data[:-1]
        self._skip_padding(pres.mint, cursor)
        if getattr(pres, "carries_length", False):
            return data
        return data.decode("latin-1")

    def _decode_bytes(self, pres, cursor):
        if pres.fixed_length is not None:
            count = self._read_array_header(pres.mint, cursor)
            if count is not None and count != pres.fixed_length:
                raise UnmarshalError(
                    "fixed opaque length %d does not match %d"
                    % (count, pres.fixed_length)
                )
            data = cursor.take(pres.fixed_length)
        else:
            count = self._read_array_header(pres.mint, cursor)
            if count is None:
                raise UnmarshalError("opaque data without a length header")
            data = cursor.take(count)
        self._skip_padding(pres.mint, cursor)
        return data
