"""MINT type nodes.

A MINT type is a directed graph, potentially cyclic through
:class:`MintTypeRef` nodes resolved in a :class:`MintRegistry`.  Atoms carry
value ranges only; the byte-level encoding of a ``MintInteger(32, True)`` is
chosen later by a back end's wire format (4 big-endian bytes for XDR, 4
sender-endian bytes for CDR, and so on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import FlickError


class MintType:
    """Base class for all MINT nodes."""


@dataclass(frozen=True)
class MintVoid(MintType):
    """No data."""


@dataclass(frozen=True)
class MintInteger(MintType):
    """Signed or unsigned integer of a given bit width (8/16/32/64)."""

    bits: int = 32
    signed: bool = True

    def range(self):
        if self.signed:
            half = 1 << (self.bits - 1)
            return (-half, half - 1)
        return (0, (1 << self.bits) - 1)


@dataclass(frozen=True)
class MintFloat(MintType):
    """IEEE float of 32 or 64 bits."""

    bits: int = 64


@dataclass(frozen=True)
class MintChar(MintType):
    """A character (one text unit; encodings decide bytes)."""


@dataclass(frozen=True)
class MintBoolean(MintType):
    """A truth value."""


#: The atomic MINT node classes; everything else is an aggregate.
ATOM_TYPES = (MintInteger, MintFloat, MintChar, MintBoolean)


def is_atom(mint_type):
    """True if *mint_type* is an atomic MINT node."""
    return isinstance(mint_type, ATOM_TYPES)


@dataclass(frozen=True)
class MintArray(MintType):
    """An array of *element* with between *min_length* and *max_length*
    elements.

    ``min_length == max_length`` is a fixed array; ``max_length is None`` is
    unbounded.  Strings are arrays of :class:`MintChar`; XDR optional data
    is an array with bounds (0, 1).
    """

    element: MintType
    min_length: int = 0
    max_length: Optional[int] = None

    @property
    def is_fixed(self):
        return self.max_length is not None and self.min_length == self.max_length

    @property
    def is_bounded(self):
        return self.max_length is not None


@dataclass(frozen=True)
class MintSlot(MintType):
    """A named member of a :class:`MintStruct`."""

    name: str
    type: MintType


@dataclass(frozen=True)
class MintStruct(MintType):
    """An ordered aggregate of named slots."""

    slots: Tuple[MintSlot, ...]

    def slot_named(self, name):
        for slot in self.slots:
            if slot.name == name:
                return slot
        raise KeyError(name)


@dataclass(frozen=True)
class MintUnionCase(MintType):
    """One arm of a :class:`MintUnion`; empty *labels* marks the default."""

    labels: Tuple[object, ...]
    name: str
    type: MintType

    @property
    def is_default(self):
        return not self.labels


@dataclass(frozen=True)
class MintUnion(MintType):
    """A discriminated union: the discriminator atom plus the arms."""

    discriminator: MintType
    cases: Tuple[MintUnionCase, ...]

    def case_for(self, value):
        default = None
        for case in self.cases:
            if case.is_default:
                default = case
            elif value in case.labels:
                return case
        if default is None:
            raise KeyError(value)
        return default


@dataclass(frozen=True)
class MintConst(MintType):
    """A typed literal constant appearing inside a message (e.g. the
    procedure number in an ONC RPC call header)."""

    type: MintType
    value: object


@dataclass(frozen=True)
class MintSystemException(MintType):
    """Marker for the CORBA system-exception reply arm."""


@dataclass(frozen=True)
class MintTypeRef(MintType):
    """A named reference resolved through a :class:`MintRegistry`; the knot
    through which recursive message types tie."""

    name: str


class MintRegistry:
    """Named MINT definitions; the resolution scope for MintTypeRef."""

    def __init__(self):
        self._definitions: Dict[str, MintType] = {}

    def define(self, name, mint_type):
        if name in self._definitions:
            raise FlickError("duplicate MINT definition %r" % name)
        self._definitions[name] = mint_type

    def __contains__(self, name):
        return name in self._definitions

    def __getitem__(self, name):
        return self._definitions[name]

    def names(self):
        return sorted(self._definitions)

    def resolve(self, mint_type):
        """Chase MintTypeRef links one step at a time to a concrete node."""
        seen = set()
        while isinstance(mint_type, MintTypeRef):
            if mint_type.name in seen:
                raise FlickError(
                    "circular MINT reference through %r" % mint_type.name
                )
            seen.add(mint_type.name)
            try:
                mint_type = self._definitions[mint_type.name]
            except KeyError:
                raise FlickError(
                    "undefined MINT reference %r" % mint_type.name
                ) from None
        return mint_type
