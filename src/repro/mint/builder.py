"""Construct MINT message descriptions from AOI.

The first step of presentation generation (paper section 2.2.1) is to build
an abstract description of every request and reply message.  For an
operation ``T op(in A a, inout B b, out C c)`` the request message is the
struct of its ``in``/``inout`` parameters and the reply message is a
discriminated union: the success arm carries the return value plus
``out``/``inout`` parameters, and one arm per declared exception carries the
exception members.  Oneway operations have no reply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.aoi import (
    AoiArray,
    AoiBoolean,
    AoiChar,
    AoiEnum,
    AoiFloat,
    AoiInteger,
    AoiNamedRef,
    AoiOctet,
    AoiOptional,
    AoiSequence,
    AoiString,
    AoiStruct,
    AoiUnion,
    AoiVoid,
)
from repro.errors import FlickError
from repro.mint.types import (
    MintArray,
    MintBoolean,
    MintChar,
    MintFloat,
    MintInteger,
    MintRegistry,
    MintSlot,
    MintStruct,
    MintType,
    MintTypeRef,
    MintUnion,
    MintUnionCase,
    MintVoid,
)

#: Reply-union discriminator values: 0 = success, 1..n = declared exception
#: index, matching both the ONC RPC accept-stat idea and the GIOP reply
#: status (NO_EXCEPTION / USER_EXCEPTION).
REPLY_SUCCESS = 0


@dataclass(frozen=True)
class MessageMints:
    """The MINT views of one operation's messages.

    ``request`` is the struct of in-flowing parameters; ``reply`` is the
    union of the success arm and exception arms (``None`` for oneway
    operations).  ``registry`` resolves any MintTypeRef inside them.
    """

    operation_name: str
    request: MintType
    reply: Optional[MintType]
    registry: MintRegistry


class MintBuilder:
    """Translates AOI types to MINT against a shared registry."""

    def __init__(self, root):
        self.root = root
        self.registry = MintRegistry()
        self._building = set()

    # ------------------------------------------------------------------

    def mint_for(self, aoi_type):
        """Return the MINT node describing *aoi_type* on the wire."""
        if isinstance(aoi_type, AoiNamedRef):
            return self._mint_for_named(aoi_type.name)
        if isinstance(aoi_type, AoiVoid):
            return MintVoid()
        if isinstance(aoi_type, AoiInteger):
            return MintInteger(aoi_type.bits, aoi_type.signed)
        if isinstance(aoi_type, AoiFloat):
            return MintFloat(aoi_type.bits)
        if isinstance(aoi_type, AoiChar):
            return MintChar()
        if isinstance(aoi_type, AoiBoolean):
            return MintBoolean()
        if isinstance(aoi_type, AoiOctet):
            return MintInteger(8, False)
        if isinstance(aoi_type, AoiEnum):
            # Enums travel as 32-bit integers in both XDR and CDR.
            return MintInteger(32, True)
        if isinstance(aoi_type, AoiString):
            return MintArray(MintChar(), 0, aoi_type.bound)
        if isinstance(aoi_type, AoiArray):
            return MintArray(
                self.mint_for(aoi_type.element),
                aoi_type.length,
                aoi_type.length,
            )
        if isinstance(aoi_type, AoiSequence):
            return MintArray(self.mint_for(aoi_type.element), 0, aoi_type.bound)
        if isinstance(aoi_type, AoiOptional):
            return MintArray(self.mint_for(aoi_type.element), 0, 1)
        if isinstance(aoi_type, AoiStruct):
            return MintStruct(
                tuple(
                    MintSlot(field.name, self.mint_for(field.type))
                    for field in aoi_type.fields
                )
            )
        if isinstance(aoi_type, AoiUnion):
            return self._mint_for_union(aoi_type)
        raise FlickError(
            "cannot build MINT for AOI node %r" % type(aoi_type).__name__
        )

    def _mint_for_named(self, name):
        """Named types become registry entries so recursion can tie off."""
        if name not in self.registry:
            if name in self._building:
                # Recursive reference: the definition is on the stack and
                # will be registered when it completes.
                return MintTypeRef(name)
            self._building.add(name)
            try:
                definition = self.mint_for(self.root.types[name])
            except KeyError:
                raise FlickError("undefined AOI type %r" % name) from None
            finally:
                self._building.discard(name)
            self.registry.define(name, definition)
        return MintTypeRef(name)

    def _mint_for_union(self, aoi_union):
        discriminator_aoi = self.root.resolve(aoi_union.discriminator)
        discriminator = self.mint_for(discriminator_aoi)
        cases = []
        for case in aoi_union.cases:
            labels = tuple(
                self._label_value(label, discriminator_aoi)
                for label in case.labels
            )
            cases.append(
                MintUnionCase(labels, case.name, self.mint_for(case.type))
            )
        return MintUnion(discriminator, tuple(cases))

    def _label_value(self, label, discriminator_aoi):
        """Normalize union labels to the values carried on the wire."""
        if isinstance(discriminator_aoi, AoiEnum) and isinstance(label, str):
            return discriminator_aoi.value_of(label)
        if isinstance(discriminator_aoi, AoiBoolean):
            return bool(label)
        if isinstance(discriminator_aoi, AoiChar) and isinstance(label, str):
            return label
        return label

    # ------------------------------------------------------------------

    def request_mint(self, operation):
        """The request message: a struct of the in-flowing parameters."""
        slots = tuple(
            MintSlot(parameter.name, self.mint_for(parameter.type))
            for parameter in operation.in_parameters()
        )
        return MintStruct(slots)

    def reply_mint(self, operation):
        """The reply message: success/exception union, or None if oneway."""
        if operation.oneway:
            return None
        success_slots = []
        return_mint = self.mint_for(operation.return_type)
        if not isinstance(return_mint, MintVoid):
            success_slots.append(MintSlot("_return", return_mint))
        for parameter in operation.out_parameters():
            success_slots.append(
                MintSlot(parameter.name, self.mint_for(parameter.type))
            )
        cases = [
            MintUnionCase(
                (REPLY_SUCCESS,), "_success", MintStruct(tuple(success_slots))
            )
        ]
        for index, exception_name in enumerate(operation.raises, 1):
            exception = self.root.exception_named(exception_name)
            exception_struct = MintStruct(
                tuple(
                    MintSlot(field.name, self.mint_for(field.type))
                    for field in exception.fields
                )
            )
            cases.append(
                MintUnionCase((index,), exception_name, exception_struct)
            )
        return MintUnion(MintInteger(32, False), tuple(cases))


def build_message_mints(root, interface):
    """Build :class:`MessageMints` for every operation of *interface*.

    Returns ``(registry, {operation_name: MessageMints})``; the registry is
    shared by all messages of the interface.
    """
    builder = MintBuilder(root)
    messages = {}
    for operation in interface.operations:
        messages[operation.name] = MessageMints(
            operation.name,
            builder.request_mint(operation),
            builder.reply_mint(operation),
            builder.registry,
        )
    return builder.registry, messages
