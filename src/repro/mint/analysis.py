"""Analyses over MINT message graphs.

These implement the compile-time reasoning behind the paper's marshal-buffer
optimization (section 3.1): every message region is classified into one of
three storage classes — *fixed* size, *variable but bounded*, or *variable
and unbounded* — so back ends can emit one free-space check per region
instead of one per atomic datum.

All size arithmetic is parameterized by a *wire layout* object (one per
encoding; see :mod:`repro.encoding.base`) providing ``atom_size``,
``atom_alignment``, ``array_header_size``, and ``array_padding`` — MINT
itself never commits to byte counts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import FlickError
from repro.mint.types import (
    MintArray,
    MintChar,
    MintConst,
    MintRegistry,
    MintSlot,
    MintStruct,
    MintSystemException,
    MintType,
    MintTypeRef,
    MintUnion,
    MintVoid,
    is_atom,
)


class StorageClass(enum.Enum):
    """The paper's three storage size classes."""

    FIXED = "fixed"
    BOUNDED = "bounded"
    UNBOUNDED = "unbounded"


@dataclass(frozen=True)
class StorageInfo:
    """Result of storage analysis for one MINT subtree.

    ``max_size`` is a worst-case byte count including any alignment padding
    the encoding might insert (``None`` when unbounded); ``min_size`` is the
    guaranteed minimum.  For FIXED regions the wire size does not depend on
    the value being sent, so ``max_size`` is the (worst-case-padded) size of
    every instance.
    """

    storage_class: StorageClass
    min_size: int
    max_size: Optional[int]

    def merge_sequential(self, other):
        """Combine with the info of data that follows this region."""
        if self.max_size is None or other.max_size is None:
            max_size = None
        else:
            max_size = self.max_size + other.max_size
        storage_class = _worst(self.storage_class, other.storage_class)
        return StorageInfo(
            storage_class, self.min_size + other.min_size, max_size
        )

    def merge_alternative(self, other):
        """Combine with the info of an alternative region (union arms)."""
        if self.max_size is None or other.max_size is None:
            max_size = None
        else:
            max_size = max(self.max_size, other.max_size)
        storage_class = _worst(self.storage_class, other.storage_class)
        if (
            storage_class is StorageClass.FIXED
            and self.max_size != other.max_size
        ):
            storage_class = StorageClass.BOUNDED
        return StorageInfo(
            storage_class, min(self.min_size, other.min_size), max_size
        )


_ORDER = {
    StorageClass.FIXED: 0,
    StorageClass.BOUNDED: 1,
    StorageClass.UNBOUNDED: 2,
}


def _worst(first, second):
    return first if _ORDER[first] >= _ORDER[second] else second


def analyze_storage(mint_type, layout, registry=None):
    """Classify *mint_type* under *layout*; returns :class:`StorageInfo`.

    Recursive types are necessarily UNBOUNDED.
    """
    registry = registry or MintRegistry()
    return _analyze(mint_type, layout, registry, walking=())


def _analyze(mint_type, layout, registry, walking):
    if isinstance(mint_type, MintTypeRef):
        if mint_type.name in walking:
            return StorageInfo(StorageClass.UNBOUNDED, 0, None)
        return _analyze(
            registry[mint_type.name], layout, registry,
            walking + (mint_type.name,),
        )
    if isinstance(mint_type, MintVoid):
        return StorageInfo(StorageClass.FIXED, 0, 0)
    if isinstance(mint_type, MintConst):
        return _analyze(mint_type.type, layout, registry, walking)
    if isinstance(mint_type, MintSystemException):
        return StorageInfo(StorageClass.UNBOUNDED, 0, None)
    if is_atom(mint_type):
        size = layout.atom_size(mint_type)
        alignment = layout.atom_alignment(mint_type)
        # Worst-case alignment padding; none when the format guarantees
        # item boundaries at least this aligned (XDR pads everything to 4,
        # so its atoms never need extra padding).
        universal = getattr(layout, "universal_alignment", 1)
        padding = alignment - 1 if alignment > universal else 0
        return StorageInfo(StorageClass.FIXED, size, size + padding)
    if isinstance(mint_type, MintStruct):
        info = StorageInfo(StorageClass.FIXED, 0, 0)
        for slot in mint_type.slots:
            info = info.merge_sequential(
                _analyze(slot.type, layout, registry, walking)
            )
        return info
    if isinstance(mint_type, MintArray):
        return _analyze_array(mint_type, layout, registry, walking)
    if isinstance(mint_type, MintUnion):
        discriminator = _analyze(
            mint_type.discriminator, layout, registry, walking
        )
        arms = None
        for case in mint_type.cases:
            case_info = _analyze(case.type, layout, registry, walking)
            arms = case_info if arms is None else arms.merge_alternative(case_info)
        if arms is None:
            arms = StorageInfo(StorageClass.FIXED, 0, 0)
        elif len(mint_type.cases) > 1 and arms.storage_class is StorageClass.FIXED:
            # Which arm travels depends on the value, so even size-equal
            # arms leave the region FIXED only if they are byte-identical
            # in size; merge_alternative already handled unequal sizes.
            pass
        combined = discriminator.merge_sequential(arms)
        if (
            combined.storage_class is StorageClass.FIXED
            and len(mint_type.cases) > 1
            and not _all_arm_sizes_equal(mint_type, layout, registry, walking)
        ):
            combined = StorageInfo(
                StorageClass.BOUNDED, combined.min_size, combined.max_size
            )
        return combined
    raise FlickError(
        "cannot analyze MINT node %r" % type(mint_type).__name__
    )


def _all_arm_sizes_equal(union, layout, registry, walking):
    sizes = set()
    for case in union.cases:
        info = _analyze(case.type, layout, registry, walking)
        if info.storage_class is not StorageClass.FIXED:
            return False
        sizes.add(info.max_size)
    return len(sizes) <= 1


def _analyze_array(array, layout, registry, walking):
    header = layout.array_header_size(array)
    element = _analyze(array.element, layout, registry, walking)
    packed = layout.packed_element_size(array.element)
    if packed is not None:
        per_element_max = packed
        per_element_min = packed
        if isinstance(array.element, MintChar) \
                and element.max_size is not None:
            # A char array packs one byte per char when presented as a
            # string, but occupies the standalone char atom (4 bytes in
            # XDR) when presented element-wise.  MINT cannot tell which
            # presentation will be used, so the bounds cover both.
            per_element_max = max(packed, element.max_size)
    else:
        per_element_max = element.max_size
        per_element_min = element.min_size
    trailer = layout.array_padding(array)
    if array.is_fixed:
        if per_element_max is None:
            return StorageInfo(StorageClass.UNBOUNDED, header, None)
        if packed is not None and trailer:
            # The data size is static, so the trailing pad is exact.
            trailer = -(array.max_length * packed) % 4
        max_size = header + array.max_length * per_element_max + trailer
        min_size = header + array.min_length * per_element_min
        storage_class = (
            StorageClass.FIXED
            if element.storage_class is StorageClass.FIXED
            else element.storage_class
        )
        if storage_class is StorageClass.FIXED and min_size != max_size:
            # The presentation-dependent char packing above: the size is
            # no longer a single static value.
            storage_class = StorageClass.BOUNDED
        if storage_class is StorageClass.UNBOUNDED:
            max_size = None
        return StorageInfo(storage_class, min_size, max_size)
    if not array.is_bounded or per_element_max is None:
        return StorageInfo(
            StorageClass.UNBOUNDED,
            header + array.min_length * (per_element_min or 0),
            None,
        )
    if element.storage_class is StorageClass.UNBOUNDED:
        return StorageInfo(StorageClass.UNBOUNDED, header, None)
    return StorageInfo(
        StorageClass.BOUNDED,
        header + array.min_length * per_element_min,
        header + array.max_length * per_element_max + trailer,
    )


# ----------------------------------------------------------------------


def count_atoms(mint_type, registry=None, for_length=1):
    """Count atomic data in one instance of *mint_type*.

    Variable arrays are counted at *for_length* elements; unions at their
    widest arm.  Recursive references count as zero (one unrolling).
    """
    registry = registry or MintRegistry()
    return _count(mint_type, registry, for_length, walking=())


def _count(mint_type, registry, for_length, walking):
    if isinstance(mint_type, MintTypeRef):
        if mint_type.name in walking:
            return 0
        return _count(
            registry[mint_type.name], registry, for_length,
            walking + (mint_type.name,),
        )
    if isinstance(mint_type, (MintVoid, MintSystemException)):
        return 0
    if isinstance(mint_type, MintConst):
        return _count(mint_type.type, registry, for_length, walking)
    if is_atom(mint_type):
        return 1
    if isinstance(mint_type, MintStruct):
        return sum(
            _count(slot.type, registry, for_length, walking)
            for slot in mint_type.slots
        )
    if isinstance(mint_type, MintArray):
        length = array_count_length(mint_type, for_length)
        return length * _count(mint_type.element, registry, for_length, walking)
    if isinstance(mint_type, MintUnion):
        widest = max(
            (
                _count(case.type, registry, for_length, walking)
                for case in mint_type.cases
            ),
            default=0,
        )
        return 1 + widest
    raise FlickError("cannot count MINT node %r" % type(mint_type).__name__)


def array_count_length(array, for_length):
    if array.is_fixed:
        return array.max_length
    if array.is_bounded:
        return min(array.max_length, for_length)
    return for_length


def is_recursive(mint_type, registry=None):
    """True if *mint_type* reaches a MintTypeRef cycle."""
    registry = registry or MintRegistry()
    return _recurses(mint_type, registry, walking=())


def _recurses(mint_type, registry, walking):
    if isinstance(mint_type, MintTypeRef):
        if mint_type.name in walking:
            return True
        return _recurses(
            registry[mint_type.name], registry,
            walking + (mint_type.name,),
        )
    if isinstance(mint_type, MintConst):
        return _recurses(mint_type.type, registry, walking)
    if isinstance(mint_type, MintStruct):
        return any(
            _recurses(slot.type, registry, walking)
            for slot in mint_type.slots
        )
    if isinstance(mint_type, MintArray):
        return _recurses(mint_type.element, registry, walking)
    if isinstance(mint_type, MintUnion):
        return any(
            _recurses(case.type, registry, walking)
            for case in mint_type.cases
        )
    return False
