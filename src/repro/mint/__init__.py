"""MINT: the Message INTerface representation.

MINT describes the abstract structure of every message exchanged between
client and server (paper section 2.2.1): a graph of atomic types, aggregates
(fixed- and variable-length arrays, structs, discriminated unions), and typed
literal constants.  MINT deliberately specifies *neither* a target-language
representation *nor* a byte-level encoding — it is the glue between PRES
(target-language mapping) above and the wire formats below.
"""

from repro.mint.types import (
    MintArray,
    MintBoolean,
    MintChar,
    MintConst,
    MintFloat,
    MintInteger,
    MintRegistry,
    MintStruct,
    MintSlot,
    MintSystemException,
    MintType,
    MintTypeRef,
    MintUnion,
    MintUnionCase,
    MintVoid,
)
from repro.mint.builder import MintBuilder, build_message_mints
from repro.mint.analysis import (
    StorageClass,
    StorageInfo,
    analyze_storage,
    count_atoms,
    is_recursive,
)

__all__ = [
    "MintArray",
    "MintBoolean",
    "MintBuilder",
    "MintChar",
    "MintConst",
    "MintFloat",
    "MintInteger",
    "MintRegistry",
    "MintSlot",
    "MintStruct",
    "MintSystemException",
    "MintType",
    "MintTypeRef",
    "MintUnion",
    "MintUnionCase",
    "MintVoid",
    "StorageClass",
    "StorageInfo",
    "analyze_storage",
    "build_message_mints",
    "count_atoms",
    "is_recursive",
]
