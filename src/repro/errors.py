"""Exception hierarchy for the Flick reproduction.

Every error raised by the compiler pipeline derives from :class:`FlickError`
so that callers (the CLI, tests, embedding applications) can catch one type.
The hierarchy mirrors the compiler's phases: lexing/parsing errors come from
front ends, semantic errors from AOI validation and presentation generation,
and code-generation errors from back ends.  Runtime errors (bad wire data,
transport failures) derive from :class:`RuntimeFlickError` because they occur
in generated-stub execution rather than at compile time.
"""

from __future__ import annotations


class FlickError(Exception):
    """Base class for every error raised by this package."""


class IdlSyntaxError(FlickError):
    """A front end could not tokenize or parse its IDL input.

    Attributes:
        location: a :class:`repro.idl.source.SourceLocation` or ``None``.
    """

    def __init__(self, message, location=None):
        self.location = location
        if location is not None:
            message = "%s: %s" % (location, message)
        super().__init__(message)


class IdlSemanticError(FlickError):
    """The IDL parsed but violates a language rule (e.g. duplicate names,
    undefined types, non-constant array bounds)."""

    def __init__(self, message, location=None):
        self.location = location
        if location is not None:
            message = "%s: %s" % (location, message)
        super().__init__(message)


class AoiValidationError(FlickError):
    """An AOI structure is internally inconsistent."""


class PresentationError(FlickError):
    """A presentation generator cannot map an AOI construct onto its target
    (e.g. the rpcgen presentation cannot express CORBA exceptions)."""


class BackEndError(FlickError):
    """A back end cannot produce code for a presentation (e.g. MIG-style
    back ends cannot express arrays of non-atomic types)."""


class RuntimeFlickError(FlickError):
    """Base class for errors occurring while generated stubs execute."""


class FlickUserException(RuntimeFlickError):
    """Base class for generated IDL user exceptions.

    Generated exception classes (one per IDL ``exception``) derive from
    this; client stubs raise them when the reply carries the matching
    exception arm, and server dispatch catches them from work functions
    and marshals the corresponding reply.
    """

    _fields = ()


class MarshalError(RuntimeFlickError):
    """A value cannot be encoded (out of range, wrong type, over bound)."""


class UnmarshalError(RuntimeFlickError):
    """Received bytes do not decode as a valid message."""


class TransportError(RuntimeFlickError):
    """A transport failed to move a message."""


class StaleConnectionError(TransportError):
    """A pooled connection turned out to be dead at send time.

    Raised by :class:`repro.runtime.aio.client.AioConnection` when the
    write of a *new* request fails on a connection that had previously
    completed calls — the classic pooled-connection hazard: the peer
    closed (or was killed) while the connection sat idle, and the reset
    only surfaces on the next send.  The request was not delivered, so
    :class:`~repro.runtime.aio.client.ConnectionPool` discards the
    connection and retries idempotent calls immediately on a fresh one,
    without consuming a backoff slot or the caller's deadline budget.
    """


class WireFormatError(UnmarshalError, TransportError):
    """Bytes on the wire violate the protocol's framing or encoding rules.

    This is both an :class:`UnmarshalError` (the bytes do not decode) and
    a :class:`TransportError` (the stream may have lost sync), so every
    existing catch site on either branch handles it.  Unlike plain
    transport failures it is **never retried** by the client runtime: the
    same bytes would fail the same way.

    Attributes:
        offset: byte offset of the violation within the message, if known.
        field: name of the offending field or limit ("record_size",
            "string_length", ...), if known.
        limit: the enforced limit that was exceeded, if any.
        actual: the offending value found on the wire, if known.
    """

    def __init__(self, message, offset=None, field=None, limit=None,
                 actual=None):
        details = []
        if field is not None:
            details.append("field=%s" % field)
        if offset is not None:
            details.append("offset=%d" % offset)
        if actual is not None:
            details.append("actual=%r" % (actual,))
        if limit is not None:
            details.append("limit=%r" % (limit,))
        if details:
            message = "%s (%s)" % (message, ", ".join(details))
        super().__init__(message)
        self.offset = offset
        self.field = field
        self.limit = limit
        self.actual = actual


class DeadlineError(TransportError):
    """A call's deadline expired before the reply arrived.

    Raised by deadline-aware transports (:mod:`repro.runtime.aio`).  It is
    a :class:`TransportError` so existing callers that handle transport
    failures also handle deadline expiry.  By default it is not retried;
    :class:`repro.runtime.aio.options.CallOptions` can opt idempotent
    calls into per-attempt deadline retry (``retry_deadlines=True``)."""


class RemoteCallError(TransportError):
    """The peer answered with a protocol-level error reply.

    ONC RPC ``MSG_DENIED`` / non-``SUCCESS`` ``accept_stat`` replies and
    GIOP system-exception replies decode to this.  It is a
    :class:`TransportError` so callers treating "the call did not
    succeed" uniformly keep working, but the connection itself is healthy
    — the server demonstrably parsed our frame and answered.

    Attributes:
        protocol: "oncrpc" or "giop".
        code: the protocol's error name ("GARBAGE_ARGS",
            "IDL:omg.org/CORBA/MARSHAL:1.0", ...).
        minor: GIOP system-exception minor code (0 for ONC).
        completed: GIOP completion status (None for ONC).
    """

    def __init__(self, message, protocol=None, code=None, minor=0,
                 completed=None):
        super().__init__(message)
        self.protocol = protocol
        self.code = code
        self.minor = minor
        self.completed = completed


class OverloadError(RuntimeFlickError):
    """The server shed this request because its dispatch queue is full.

    Mapped onto the wire as ONC RPC ``SYSTEM_ERR`` / GIOP
    ``CORBA::TRANSIENT`` so well-behaved clients back off and retry."""


class CircuitOpenError(TransportError):
    """A client-side circuit breaker refused the call without dialing.

    Raised by :class:`repro.runtime.aio.breaker.CircuitBreaker` via
    :class:`~repro.runtime.aio.client.ConnectionPool` while the breaker
    is open (the recent failure rate tripped it)."""


class DispatchError(RuntimeFlickError):
    """A server received a request it cannot route to an operation.

    Attributes:
        code: a machine-readable reason used by the generated
            ``encode_error_reply`` to pick the protocol's error reply:
            ``"not_call"``, ``"rpc_mismatch"``, ``"prog_unavail"``,
            ``"prog_mismatch"``, ``"proc_unavail"`` (ONC RPC), or
            ``"bad_magic"``, ``"not_request"``, ``"byte_order"``,
            ``"bad_operation"`` (GIOP); ``None`` when unclassified.
    """

    def __init__(self, message, code=None):
        super().__init__(message)
        self.code = code
