"""Exception hierarchy for the Flick reproduction.

Every error raised by the compiler pipeline derives from :class:`FlickError`
so that callers (the CLI, tests, embedding applications) can catch one type.
The hierarchy mirrors the compiler's phases: lexing/parsing errors come from
front ends, semantic errors from AOI validation and presentation generation,
and code-generation errors from back ends.  Runtime errors (bad wire data,
transport failures) derive from :class:`RuntimeFlickError` because they occur
in generated-stub execution rather than at compile time.
"""

from __future__ import annotations


class FlickError(Exception):
    """Base class for every error raised by this package."""


class IdlSyntaxError(FlickError):
    """A front end could not tokenize or parse its IDL input.

    Attributes:
        location: a :class:`repro.idl.source.SourceLocation` or ``None``.
    """

    def __init__(self, message, location=None):
        self.location = location
        if location is not None:
            message = "%s: %s" % (location, message)
        super().__init__(message)


class IdlSemanticError(FlickError):
    """The IDL parsed but violates a language rule (e.g. duplicate names,
    undefined types, non-constant array bounds)."""

    def __init__(self, message, location=None):
        self.location = location
        if location is not None:
            message = "%s: %s" % (location, message)
        super().__init__(message)


class AoiValidationError(FlickError):
    """An AOI structure is internally inconsistent."""


class PresentationError(FlickError):
    """A presentation generator cannot map an AOI construct onto its target
    (e.g. the rpcgen presentation cannot express CORBA exceptions)."""


class BackEndError(FlickError):
    """A back end cannot produce code for a presentation (e.g. MIG-style
    back ends cannot express arrays of non-atomic types)."""


class RuntimeFlickError(FlickError):
    """Base class for errors occurring while generated stubs execute."""


class FlickUserException(RuntimeFlickError):
    """Base class for generated IDL user exceptions.

    Generated exception classes (one per IDL ``exception``) derive from
    this; client stubs raise them when the reply carries the matching
    exception arm, and server dispatch catches them from work functions
    and marshals the corresponding reply.
    """

    _fields = ()


class MarshalError(RuntimeFlickError):
    """A value cannot be encoded (out of range, wrong type, over bound)."""


class UnmarshalError(RuntimeFlickError):
    """Received bytes do not decode as a valid message."""


class TransportError(RuntimeFlickError):
    """A transport failed to move a message."""


class DeadlineError(TransportError):
    """A call's deadline expired before the reply arrived.

    Raised by deadline-aware transports (:mod:`repro.runtime.aio`).  It is
    a :class:`TransportError` so existing callers that handle transport
    failures also handle deadline expiry, but it is never retried — the
    time budget is already spent."""


class DispatchError(RuntimeFlickError):
    """A server received a request it has no operation for."""
