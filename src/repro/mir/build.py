"""Build marshal IR from PRES_C: one walk, one :class:`MirProgram`.

This module owns the *function drivers*: which codec functions exist for
an interface, their names, parameters, and the header/body/tail sequence
inside each.  The per-type lowering lives in :mod:`repro.mir.lower`;
protocol policy (header templates, reply-status tails) comes from the
back end's hooks.

Functions appear in the program in module emission order — for each
stub: request marshal, request unmarshal, then (unless oneway) the reply
marshals and the reply unmarshal — followed by the out-of-line helpers
in first-reference order.
"""

from __future__ import annotations

from repro.mint.analysis import is_recursive
from repro.pres import nodes as p

from repro.mir import lower
from repro.mir import ops as m


def build_program(backend, presc, flags):
    """Lower every codec function for *presc* into a MirProgram."""
    out_of_line = lower.OutOfLineSet()
    program = m.MirProgram(
        interface_name=presc.interface_name,
        wire_name=backend.name,
    )
    for stub in presc.stubs:
        program.functions.append(
            _build_request_marshal(backend, presc, stub, flags, out_of_line)
        )
        program.functions.append(
            _build_request_unmarshal(backend, presc, stub, flags,
                                     out_of_line)
        )
        if not stub.oneway:
            program.functions.extend(
                _build_reply_marshals(backend, presc, stub, flags,
                                      out_of_line)
            )
            program.functions.append(
                _build_reply_unmarshal(backend, presc, stub, flags,
                                       out_of_line)
            )
    _drain_out_of_line(backend, presc, flags, out_of_line, program)
    return program


def _marshal_lower(backend, presc, flags, out_of_line):
    low = lower.MarshalLower(
        backend.wire_format, flags, presc, out_of_line
    )
    low.staged_copies = getattr(backend, "staged_copies", False)
    return low


def _size_patch(low, spec):
    if spec.size_patch is not None:
        offset, fmt_text, delta = spec.size_patch
        low.add(m.HeaderPatch(offset=offset, fmt=fmt_text, delta=delta))


def _build_request_marshal(backend, presc, stub, flags, out_of_line):
    spec = backend.request_header(presc, stub)
    const = "_H_req_%s" % stub.operation_name
    in_parameters = stub.in_parameters()
    # Internal argument names avoid any collision with generated locals
    # (IDL identifiers cannot begin with an underscore).
    arg_names = ["_a%d" % index for index in range(len(in_parameters))]
    low = _marshal_lower(backend, presc, flags, out_of_line)
    low.add(m.PutHeader(const, spec.template, tuple(spec.patches)))
    low.reset(static_offset=len(spec.template))
    for parameter, arg_name in zip(in_parameters, arg_names):
        low.emit(parameter.pres, arg_name)
    low.flush()
    _size_patch(low, spec)
    return m.MirFunction(
        name="_m_req_%s" % stub.operation_name,
        kind="m_req",
        params=tuple(["b", "_ctx"] + arg_names),
        ops=low.ops,
        consts={const: spec.template},
        chunks=low.chunks_emitted,
        atoms=low.atoms_emitted,
        operation=stub.operation_name,
    )


def _build_request_unmarshal(backend, presc, stub, flags, out_of_line):
    low = lower.UnmarshalLower(
        backend.wire_format, flags, presc, out_of_line,
        zero_copy=flags.zero_copy_server,
    )
    low.reset(static_offset=None)
    low.static_offset = backend._request_body_offset(presc, stub)
    low.align_guarantee = backend.wire_format.universal_alignment
    exprs = [
        low.emit(parameter.pres) for parameter in stub.in_parameters()
    ]
    low.flush()
    low.add(m.Return(kind="args", exprs=tuple(exprs)))
    return m.MirFunction(
        name="_u_req_%s" % stub.operation_name,
        kind="u_req",
        params=("d", "o"),
        ops=low.ops,
        chunks=low.chunks_emitted,
        atoms=low.atoms_emitted,
        operation=stub.operation_name,
    )


def _build_reply_marshals(backend, presc, stub, flags, out_of_line):
    spec = backend.reply_header(presc, stub)
    const = "_H_rep_%s" % stub.operation_name
    disc_codec = backend.wire_format.atom_codec(
        stub.reply_pres.mint.discriminator
    )
    functions = []
    # Success reply.
    success_arm = stub.reply_pres.arms[0]
    result_fields = success_arm.pres.fields
    arg_names = ["_r_%s" % f.name.lstrip("_") for f in result_fields]
    low = _marshal_lower(backend, presc, flags, out_of_line)
    low.add(m.PutHeader(const, spec.template, tuple(spec.patches)))
    low.reset(static_offset=len(spec.template))
    low.add_atom(disc_codec, "0")
    for struct_field in result_fields:
        low.emit(
            struct_field.pres, "_r_%s" % struct_field.name.lstrip("_")
        )
    low.flush()
    _size_patch(low, spec)
    functions.append(m.MirFunction(
        name="_m_rep_ok_%s" % stub.operation_name,
        kind="m_rep_ok",
        params=tuple(["b", "_ctx"] + arg_names),
        ops=low.ops,
        consts={const: spec.template},
        chunks=low.chunks_emitted,
        atoms=low.atoms_emitted,
        operation=stub.operation_name,
    ))
    # One marshal function per exception arm.
    for arm in stub.reply_pres.arms[1:]:
        label = arm.labels[0]
        low = _marshal_lower(backend, presc, flags, out_of_line)
        low.add(m.PutHeader(const, spec.template, tuple(spec.patches)))
        low.reset(static_offset=len(spec.template))
        low.add_atom(disc_codec, str(label))
        low.emit(arm.pres, "_exc")
        low.flush()
        _size_patch(low, spec)
        functions.append(m.MirFunction(
            name="_m_rep_x%d_%s" % (label, stub.operation_name),
            kind="m_rep_exc",
            params=("b", "_ctx", "_exc"),
            ops=low.ops,
            chunks=low.chunks_emitted,
            atoms=low.atoms_emitted,
            operation=stub.operation_name,
        ))
    return functions


def _build_reply_unmarshal(backend, presc, stub, flags, out_of_line):
    """Decode the reply body: return results or raise the exception."""
    low = lower.UnmarshalLower(
        backend.wire_format, flags, presc, out_of_line
    )
    low.reset(static_offset=None)
    low.static_offset = backend._reply_body_offset(presc, stub)
    low.align_guarantee = backend.wire_format.universal_alignment
    disc_codec = backend.wire_format.atom_codec(
        stub.reply_pres.mint.discriminator
    )
    disc = low.read_atom(disc_codec)
    low.flush()
    low.add(m.Bind("_d", disc))
    success_arm = stub.reply_pres.arms[0]
    low.push_body()
    low.enter_unknown()
    exprs = [
        low.emit(struct_field.pres)
        for struct_field in success_arm.pres.fields
    ]
    low.flush()
    # Materialize the result, then reject trailing garbage: a reply that
    # decodes but leaves bytes behind is a framing bug or an attack.
    if not exprs:
        low.add(m.CheckEnd())
        low.add(m.Return(kind="plain", exprs=()))
    elif len(exprs) == 1:
        low.add(m.Bind("_rv", exprs[0]))
        low.add(m.CheckEnd())
        low.add(m.Return(kind="plain", exprs=("_rv",)))
    else:
        low.add(m.Bind("_rv", "(%s)" % ", ".join(exprs)))
        low.add(m.CheckEnd())
        low.add(m.Return(kind="plain", exprs=("_rv",)))
    arms = [m.BranchArm("_d == 0", low.pop_body())]
    for arm in stub.reply_pres.arms[1:]:
        low.push_body()
        low.enter_unknown()
        value = low.emit(arm.pres)
        low.flush()
        low.add(m.Bind("_rx", value))
        low.add(m.CheckEnd())
        low.add(m.Raise(value_expr="_rx"))
        arms.append(m.BranchArm("_d == %d" % arm.labels[0],
                                low.pop_body()))
    low.add(m.Branch(arms=arms))
    low.add(m.ReplyErrorTail(ops=backend.reply_error_tail_ops(presc)))
    return m.MirFunction(
        name="_u_rep_%s" % stub.operation_name,
        kind="u_rep",
        params=("d", "o"),
        ops=low.ops,
        chunks=low.chunks_emitted,
        atoms=low.atoms_emitted,
        operation=stub.operation_name,
    )


def _drain_out_of_line(backend, presc, flags, out_of_line, program):
    """Lower queued out-of-line marshal/unmarshal helper functions."""
    while out_of_line.pending:
        kind, name = out_of_line.pending.pop(0)
        pres = presc.pres_registry[name]
        function = "_%s_%s" % (kind, m.mangle(name))
        list_shape = None
        if flags.iterative_lists:
            list_shape = tail_recursive_list(pres, presc, name)
        if kind == "m":
            low = _marshal_lower(backend, presc, flags, out_of_line)
            low.enter_unknown()
            if list_shape is not None:
                _lower_iterative_list_marshal(low, list_shape)
            else:
                # The body must not immediately outline itself.
                low.emit(_inline_target(pres, presc), "v")
                low.flush()
            fn = m.MirFunction(
                name=function, kind="m_helper", params=("b", "v"),
                ops=low.ops, chunks=low.chunks_emitted,
                atoms=low.atoms_emitted, type_name=name,
            )
        else:
            low = lower.UnmarshalLower(
                backend.wire_format, flags, presc, out_of_line
            )
            low.enter_unknown()
            if list_shape is not None:
                _lower_iterative_list_unmarshal(low, list_shape)
            else:
                value = low.emit_value(_inline_target(pres, presc))
                low.add(m.Return(kind="value", exprs=(value,)))
            fn = m.MirFunction(
                name=function, kind="u_helper", params=("d", "o"),
                ops=low.ops, chunks=low.chunks_emitted,
                atoms=low.atoms_emitted, type_name=name,
            )
        program.functions.append(fn)


def _lower_iterative_list_marshal(low, list_shape):
    """Marshal a self-referential list with a loop (footnote 5).

    Wire-identical to the recursive version: for each node, the leading
    fields, then the tail optional's presence word.
    """
    struct_pres, tail_name, tail_pres = list_shape
    low.push_body()
    low.enter_unknown()
    for struct_field in struct_pres.fields[:-1]:
        low.emit(struct_field.pres, "v.%s" % struct_field.name)
    low.flush()
    node_ops = low.pop_body()
    low.push_body()
    low.enter_unknown()
    low._emit_array_header(tail_pres.mint, "0")
    low.flush()
    stop_ops = low.pop_body()
    low.push_body()
    low.enter_unknown()
    low._emit_array_header(tail_pres.mint, "1")
    low.flush()
    next_ops = low.pop_body()
    low.add(m.ListLoop(
        kind="m", tail_name=tail_name, node_ops=node_ops,
        stop_ops=stop_ops, next_ops=next_ops,
    ))


def _lower_iterative_list_unmarshal(low, list_shape):
    struct_pres, tail_name, tail_pres = list_shape
    record = m.mangle(struct_pres.record_name)
    low.push_body()
    head_exprs = [
        low.emit(struct_field.pres)
        for struct_field in struct_pres.fields[:-1]
    ]
    low.flush()
    head_ops = low.pop_body()
    low.push_body()
    low.enter_unknown()
    flag = low._read_array_header(tail_pres.mint)
    flag_ops = low.pop_body()
    low.push_body()
    low.enter_unknown()
    field_exprs = [
        low.emit(struct_field.pres)
        for struct_field in struct_pres.fields[:-1]
    ]
    low.flush()
    node_ops = low.pop_body()
    low.add(m.ListLoop(
        kind="u", record=record, tail_name=tail_name,
        node_ops=node_ops, flag_ops=flag_ops, flag_var=flag,
        field_exprs=tuple(field_exprs), head_ops=head_ops,
        head_exprs=tuple(head_exprs),
    ))


def _inline_target(pres, presc):
    if isinstance(pres, p.PresRef):
        return presc.pres_registry[pres.name]
    return pres


def tail_recursive_list(pres, presc, name):
    """Detect the classic list shape: a struct whose *last* field is an
    optional pointer back to the type itself, with no other recursion.

    Returns ``(struct_pres, tail_field_name, tail_optptr)`` or None.
    """
    target = pres
    while isinstance(target, p.PresRef):
        target = presc.pres_registry[target.name]
    if not isinstance(target, p.PresStruct) or not target.fields:
        return None
    tail = target.fields[-1]
    tail_pres = tail.pres
    if not isinstance(tail_pres, p.PresOptPtr):
        return None
    element = tail_pres.element
    if not (isinstance(element, p.PresRef) and element.name == name):
        return None
    # Leading fields must not themselves recurse, or a loop is unsound.
    for struct_field in target.fields[:-1]:
        mint = getattr(struct_field.pres, "mint", None)
        if mint is not None and is_recursive(mint, presc.mint_registry):
            return None
    return target, tail.name, tail_pres


# ----------------------------------------------------------------------
# Naive type IR (flag-independent; one PRES_C walk)
# ----------------------------------------------------------------------


def build_naive(backend, presc, flags=None):
    """Build the direction-neutral naive type IR for *presc*.

    This is the pre-optimization view ``flick ir`` shows: what travels
    on the wire per operation, before lowering decides chunk layouts.
    """
    fmt = backend.wire_format
    program = m.NaiveProgram(
        interface_name=presc.interface_name,
        wire_name=backend.name,
    )

    def node(pres):
        pres_node = pres
        if isinstance(pres_node, p.PresVoid):
            return m.TVoid(pres=pres_node)
        if isinstance(pres_node, p.PresRef):
            ref = m.TRef(
                pres=pres_node, name=pres_node.name,
                recursive=is_recursive(
                    pres_node.mint, presc.mint_registry
                ),
            )
            if pres_node.name not in program.types:
                program.types[pres_node.name] = None  # cycle guard
                program.types[pres_node.name] = node(
                    presc.pres_registry[pres_node.name]
                )
            return ref
        if isinstance(pres_node, (p.PresDirect, p.PresEnum)):
            return m.TAtom(
                pres=pres_node, codec=fmt.atom_codec(pres_node.mint),
                mint=pres_node.mint,
            )
        if isinstance(pres_node, p.PresString):
            return m.TString(
                pres=pres_node, mint=pres_node.mint,
                bound=pres_node.bound,
                carries_length=pres_node.carries_length,
            )
        if isinstance(pres_node, p.PresBytes):
            return m.TBytes(
                pres=pres_node, mint=pres_node.mint,
                bound=pres_node.bound,
                fixed_length=pres_node.fixed_length,
            )
        if isinstance(pres_node, p.PresFixedArray):
            return m.TFixedArray(
                pres=pres_node, mint=pres_node.mint,
                length=pres_node.length,
                element=node(pres_node.element),
                element_codec=_element_codec(fmt, presc, pres_node.element),
            )
        if isinstance(pres_node, p.PresCountedArray):
            return m.TCountedArray(
                pres=pres_node, mint=pres_node.mint,
                bound=pres_node.bound,
                element=node(pres_node.element),
                element_codec=_element_codec(fmt, presc, pres_node.element),
            )
        if isinstance(pres_node, p.PresOptPtr):
            return m.TOptional(
                pres=pres_node, mint=pres_node.mint,
                element=node(pres_node.element),
            )
        if isinstance(pres_node, p.PresStruct):
            return m.TStruct(
                pres=pres_node, record_name=pres_node.record_name,
                fields=[
                    m.TStructField(f.name, node(f.pres))
                    for f in pres_node.fields
                ],
            )
        if isinstance(pres_node, p.PresException):
            return m.TException(
                pres=pres_node, class_name=pres_node.class_name,
                fields=[
                    m.TStructField(f.name, node(f.pres))
                    for f in pres_node.fields
                ],
            )
        if isinstance(pres_node, p.PresUnion):
            return m.TUnion(
                pres=pres_node,
                disc_codec=fmt.atom_codec(pres_node.mint.discriminator),
                arms=[
                    m.TUnionArm(tuple(arm.labels), arm.is_default,
                                node(arm.pres))
                    for arm in pres_node.arms
                ],
            )
        return m.TypeNode(pres=pres_node)

    for stub in presc.stubs:
        request = m.TypeChannel(items=[
            (parameter.name, node(parameter.pres))
            for parameter in stub.in_parameters()
        ])
        reply_arms = None
        if stub.reply_pres is not None:
            reply_arms = []
            for index, arm in enumerate(stub.reply_pres.arms):
                label = "ok" if index == 0 else "x%d" % arm.labels[0]
                if isinstance(arm.pres, p.PresStruct):
                    channel = m.TypeChannel(items=[
                        (f.name, node(f.pres)) for f in arm.pres.fields
                    ])
                else:
                    channel = m.TypeChannel(
                        items=[("value", node(arm.pres))]
                    )
                reply_arms.append((label, channel))
        program.operations[stub.operation_name] = {
            "request": request,
            "reply_arms": reply_arms,
            "oneway": stub.oneway,
        }
    if flags is None or flags.iterative_lists:
        for name, pres in presc.pres_registry.items():
            shape = tail_recursive_list(pres, presc, name)
            if shape is not None:
                struct_pres, tail_name, tail_pres = shape
                struct_node = node(struct_pres)
                program.list_shapes[name] = m.ListShape(
                    struct=struct_node, tail_name=tail_name,
                    tail=struct_node.fields[-1].node,
                )
    return program


def _element_codec(fmt, presc, element_pres):
    element = element_pres
    if isinstance(element, p.PresRef):
        element = presc.pres_registry[element.name]
    if isinstance(element, (p.PresDirect, p.PresEnum)):
        return fmt.atom_codec(element.mint)
    return None
