"""The MIR pass pipeline: section-3 optimizations as named passes.

Every pass name matches its :class:`~repro.core.options.OptFlags` field
1:1, so the CLI/benchmarks toggle passes by the same names reported in
``MirProgram.passes``.  Two kinds exist:

* **Lowering-integrated passes** run during the single PRES_C walk in
  :mod:`repro.mir.lower` — they decide op *shapes* (chunk coalescing,
  free-space-check batching, memcpy bulk copies, inlining, iterative
  lists) because the shapes feed the static-layout state machine.
* **IR→IR passes** rewrite a built :class:`~repro.mir.ops.MirProgram`
  in place: ``fold_header_constants`` and ``dedup_out_of_line``.

:class:`PassManager` records the active configuration on the program
and runs the IR→IR stage.
"""

from __future__ import annotations

import re
import struct as _struct

from repro.mir import lower
from repro.mir import ops as m

#: Passes consumed while lowering PRES_C to ops (shape-deciding).
LOWERING_PASSES = {
    "inline_marshal":
        "expand aggregate codecs in place; only recursion goes "
        "out of line (section 3.4)",
    "chunk_atoms":
        "coalesce adjacent fixed-size atoms into one multi-field "
        "pack/unpack at constant offsets (section 3.2)",
    "batch_buffer_checks":
        "hoist free-space checks to one buffer reserve per chunk "
        "(marshal-buffer management, section 3.2)",
    "memcpy_arrays":
        "bulk-copy byte runs and atomic arrays instead of per-element "
        "loops (section 3.2)",
    "iterative_lists":
        "lower tail-recursive list types to loops instead of "
        "recursive helpers (footnote 5)",
}

#: IR -> IR rewrites over the built program.
IR_PASSES = {
    "fold_header_constants":
        "fold constant leading reply atoms (status discriminators, "
        "array descriptors) into the header byte template",
    "dedup_out_of_line":
        "merge structurally identical out-of-line helper functions "
        "and alias their call sites",
}

#: All pass names, in pipeline order; 1:1 with OptFlags fields.
PASS_NAMES = dict(LOWERING_PASSES)
PASS_NAMES.update(IR_PASSES)


class PassManager:
    """Runs the IR→IR passes selected by an OptFlags configuration."""

    def __init__(self, flags):
        self.flags = flags

    def run(self, program):
        program.passes = {
            name: bool(getattr(self.flags, name)) for name in PASS_NAMES
        }
        if self.flags.fold_header_constants:
            fold_header_constants(program)
        if self.flags.dedup_out_of_line:
            dedup_out_of_line(program)
        return program


# ----------------------------------------------------------------------
# fold_header_constants
# ----------------------------------------------------------------------

_INT_LITERAL = re.compile(r"-?\d+\Z")


def fold_header_constants(program):
    """Bake constant leading reply-body atoms into the header template.

    Reply marshal functions start with a header template copy followed
    by the first body chunk, whose leading entries are often integer
    literals (the success/exception discriminator, descriptor words).
    Folding packs those literals — with their alignment padding — into
    a per-function template constant, shrinks the chunk, and re-lays-out
    the surviving entries from the advanced offset.  Total message bytes
    are unchanged, so later offsets and size patches are unaffected.
    """
    for fn in program.functions:
        if fn.kind not in ("m_rep_ok", "m_rep_exc"):
            continue
        if not fn.ops or not isinstance(fn.ops[0], m.PutHeader):
            continue
        header = fn.ops[0]
        index = None
        for position, op in enumerate(fn.ops[1:], start=1):
            # Binds and bounds checks do not write to the buffer, so the
            # template copy may safely absorb bytes written past them.
            if isinstance(op, (m.Bind, m.BoundsCheck)):
                continue
            if isinstance(op, m.PutAtoms):
                index = position
            break
        if index is None:
            continue
        chunk = fn.ops[index]
        if (chunk.start != len(header.template)
                or chunk.reserve.kind != "plain"):
            continue
        template = bytearray(header.template)
        offset = chunk.start
        folded = 0
        for entry in chunk.entries:
            if (entry.star or entry.count != 1
                    or not _INT_LITERAL.match(entry.expr)):
                break
            pad = -offset % entry.align
            template += b"\x00" * pad
            template += _struct.pack(
                chunk.endian + entry.fmt, int(entry.expr)
            )
            offset += pad + entry.size
            folded += 1
        if not folded:
            continue
        const = "_H" + fn.name[2:]
        header.const = const
        header.template = bytes(template)
        fn.consts = dict(fn.consts)
        fn.consts[const] = header.template
        remaining = chunk.entries[folded:]
        if remaining:
            fmt, total, offsets = lower.layout_entries(remaining, offset)
            chunk.entries = tuple(remaining)
            chunk.fmt = fmt
            chunk.total = total
            chunk.offsets = tuple(offsets)
            chunk.start = offset
            chunk.reserve.size = total
        else:
            fn.ops.pop(index)
    _drop_unreferenced_consts(program)


def _drop_unreferenced_consts(program):
    referenced = set()
    for fn in program.functions:
        for op in m.walk_ops(fn.ops):
            if isinstance(op, m.PutHeader):
                referenced.add(op.const)
    for fn in program.functions:
        for name in [n for n in fn.consts if n not in referenced]:
            del fn.consts[name]


# ----------------------------------------------------------------------
# dedup_out_of_line
# ----------------------------------------------------------------------


def dedup_out_of_line(program):
    """Merge structurally identical out-of-line helpers.

    Two helpers are identical when their op trees match with their own
    function name canonicalized (so self-recursive helpers of the same
    shape merge).  The first occurrence survives; every call site is
    rewritten through the alias map, iterated to a fixpoint so helpers
    that only differed by calls to since-merged helpers also merge.
    """
    while True:
        survivors = {}
        aliases = {}
        kept = []
        for fn in program.functions:
            if fn.kind not in ("m_helper", "u_helper"):
                kept.append(fn)
                continue
            key = (fn.kind, _canonical(fn))
            prior = survivors.get(key)
            if prior is None:
                survivors[key] = fn
                kept.append(fn)
            else:
                aliases[fn.name] = prior.name
        if not aliases:
            return
        program.functions[:] = kept
        program.aliases.update(aliases)
        for fn in program.functions:
            m.rewrite_calls(fn.ops, aliases)


def _canonical(fn):
    # Function names appear quoted inside the op repr (CallOutOfLine
    # targets); quoting keeps the substitution exact even when one
    # helper's name prefixes another's.
    return repr(fn.ops).replace("'%s'" % fn.name, "'@self@'")
