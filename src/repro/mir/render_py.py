"""Render optimized marshal IR to Python stub source.

This renderer is a *thin* consumer: every optimization decision (chunk
formats, constant offsets, reserve plans, loop shapes) was made during
lowering and the pass pipeline; here each op maps to a fixed line
pattern.  Value positions are pasted verbatim — they are already valid
Python expressions over the function's parameters and earlier-bound
variables (the renderer contract, INTERNALS section 10).
"""

from __future__ import annotations

from repro.errors import BackEndError
from repro.mir import ops as m


def render_program(w, program):
    """Render every function (with its constants) of *program*."""
    for fn in program.functions:
        for const_name, template in fn.consts.items():
            w.line("%s = %r" % (const_name, template))
        render_function(w, fn)


def render_function(w, fn):
    w.line("def %s(%s):" % (fn.name, ", ".join(fn.params)))
    w.indent()
    if fn.ops:
        _render_ops(w, fn.ops)
    else:
        w.line("pass")
    w.dedent()
    w.blank()


def _render_ops(w, ops):
    for op in ops:
        _RENDERERS[type(op)](w, op)


# ----------------------------------------------------------------------
# Reservations
# ----------------------------------------------------------------------


def _render_reserve(w, plan):
    if plan.kind == "plain":
        w.line("%s = b.reserve(%s)" % (plan.var, plan.size))
    elif plan.kind == "pad_base":
        w.line("%s = b.reserve(%d + (%s)) + %d"
               % (plan.var, plan.pad, plan.size, plan.pad))
        w.line("b.data[%s - %d:%s] = _Z[:%d]"
               % (plan.var, plan.pad, plan.var, plan.pad))
    elif plan.kind == "pad_var":
        w.line("%s = -b.length %% %d" % (plan.pad_var, plan.align))
        if isinstance(plan.size, int):
            w.line("%s = b.reserve(%s + %d) + %s"
                   % (plan.var, plan.pad_var, plan.size, plan.pad_var))
        else:
            w.line("%s = b.reserve(%s + (%s)) + %s"
                   % (plan.var, plan.pad_var, plan.size, plan.pad_var))
        w.line("b.data[%s - %s:%s] = _Z[:%s]"
               % (plan.var, plan.pad_var, plan.var, plan.pad_var))
    else:
        raise BackEndError("unknown reserve plan %r" % plan.kind)


# ----------------------------------------------------------------------
# Headers
# ----------------------------------------------------------------------


def _render_put_header(w, op):
    size = len(op.template)
    if size:
        w.line("_o0 = b.reserve(%d)" % size)
        w.line("b.data[_o0:_o0 + %d] = %s" % (size, op.const))
        for offset, fmt_text, expr in op.patches:
            w.line("_pack_into(%r, b.data, _o0 + %d, %s)"
                   % (fmt_text, offset, expr))


def _render_header_patch(w, op):
    delta_text = " - %d" % op.delta if op.delta else ""
    w.line("_pack_into(%r, b.data, _o0 + %d, b.length%s)"
           % (op.fmt, op.offset, delta_text))


# ----------------------------------------------------------------------
# Chunks
# ----------------------------------------------------------------------


def _pack_arg(entry):
    star = "*" if entry.star or entry.count > 1 else ""
    return star + entry.expr


def _render_put_atoms(w, op):
    _render_reserve(w, op.reserve)
    if op.batched:
        w.line("_pack_into(%r, b.data, %s, %s)"
               % (op.endian + op.fmt, op.reserve.var,
                  ", ".join(_pack_arg(entry) for entry in op.entries)))
        return
    # Unbatched: one pack per atom, with the inter-atom gaps expressed
    # as leading pad bytes so the wire layout is byte-identical.
    previous_end = 0
    for entry, offset in zip(op.entries, op.offsets):
        gap = offset - previous_end
        starred = entry.star or entry.count > 1
        single = "%d%s" % (entry.count, entry.fmt) if starred else entry.fmt
        if gap:
            single = "%dx%s" % (gap, single)
        at = (op.reserve.var if not previous_end
              else "%s + %d" % (op.reserve.var, previous_end))
        w.line("_pack_into(%r, b.data, %s, %s)"
               % (op.endian + single, at, _pack_arg(entry)))
        previous_end = offset + entry.size * entry.count


def _render_get_atoms(w, op):
    fmt = op.endian + op.fmt
    if op.subscript is not None:
        w.line("%s = _unpack_from(%r, d, o)[%d]"
               % (op.var, fmt, op.subscript))
    else:
        w.line("%s = _unpack_from(%r, d, o)" % (op.var, fmt))
    w.line("o += %d" % op.total)


def _render_align_to(w, op):
    if op.mode == "pad":
        w.line("o += %d" % op.pad)
    else:
        w.line("o += -o %% %d" % op.align)


def _render_get_array_header(w, op):
    w.line("%s = _unpack_from('%s%s', d, o)[%d]"
           % (op.var, op.endian, op.fmt, op.index))
    w.line("o += %d" % op.advance)


# ----------------------------------------------------------------------
# Bulk copies
# ----------------------------------------------------------------------


def _render_copy_run(w, op):
    _render_reserve(w, op.reserve)
    if op.variant == "static":
        base = ("%s + %d" % (op.reserve.var, op.lead_pad)
                if op.lead_pad else op.reserve.var)
        if op.lead_pad:
            w.line("b.data[%s:%s] = _Z[:%d]"
                   % (op.reserve.var, base, op.lead_pad))
        if op.header is not None:
            fmt, args = op.header
            w.line("_pack_into(%r, b.data, %s, %s)"
                   % (fmt, base, ", ".join(args)))
        end = op.position + op.static_count
        w.line("b.data[%s + %d:%s + %d] = %s"
               % (base, op.position, base, end, op.data_expr))
        if op.trail_pad:
            w.line("b.data[%s + %d:%s + %d] = _Z[:%d]"
                   % (base, end, base, end + op.trail_pad, op.trail_pad))
        return
    # Dynamic byte count.
    offset_var = op.reserve.var
    if op.header is not None:
        fmt, args = op.header
        w.line("_pack_into(%r, b.data, %s, %s)"
               % (fmt, offset_var, ", ".join(args)))
    base = ("%s + %d" % (offset_var, op.position)
            if op.position else offset_var)
    w.line("%s = %s + %s" % (op.end_var, base, op.n_expr))
    if op.nul:
        w.line("b.data[%s:%s - 1] = %s" % (base, op.end_var, op.data_expr))
        w.line("b.data[%s - 1] = 0" % op.end_var)
    else:
        w.line("b.data[%s:%s] = %s" % (base, op.end_var, op.data_expr))
    if op.pad_to4:
        w.line("b.data[%s:%s + (-%s %% 4)] = _Z[:-%s %% 4]"
               % (op.end_var, op.end_var, op.n_expr, op.n_expr))


def _render_put_atom_array(w, op):
    if op.variant == "staged":
        w.line("%s = bytearray(%s * %d)"
               % (op.stage_var, op.n_expr, op.size))
        w.line("_pack_into('%s%%d%s' %% %s, %s, 0, *%s)"
               % (op.endian, op.fmt, op.n_expr, op.stage_var,
                  op.data_expr))
        _render_reserve(w, op.reserve)
        if op.header is not None:
            fmt, args = op.header
            w.line("_pack_into(%r, b.data, %s, %s)"
                   % (fmt, op.reserve.var, ", ".join(args)))
        base = ("%s + %d" % (op.reserve.var, op.position)
                if op.position else op.reserve.var)
        w.line("b.data[%s:%s + %s * %d] = %s"
               % (base, base, op.n_expr, op.size, op.stage_var))
        return
    _render_reserve(w, op.reserve)
    if op.header is not None:
        fmt, args = op.header
        w.line("_pack_into(%r, b.data, %s, %s)"
               % (fmt, op.reserve.var, ", ".join(args)))
    if op.variant == "split":
        _render_reserve(w, op.split_reserve)
        at = op.split_reserve.var
    else:
        at = ("%s + %d" % (op.reserve.var, op.position)
              if op.position else op.reserve.var)
    w.line("_pack_into('%s%%d%s' %% %s, b.data, %s, *%s)"
           % (op.endian, op.fmt, op.n_expr, at, op.data_expr))


def _render_get_atom_array(w, op):
    raw = ("_unpack_from('%s%%d%s' %% %s, d, o)"
           % (op.endian, op.fmt, op.count_expr))
    if op.conversion == "char":
        value = "[chr(_c) for _c in %s]" % raw
    elif op.conversion == "bool":
        value = "[bool(_c) for _c in %s]" % raw
    else:
        value = "list(%s)" % raw
    w.line("%s = %s" % (op.var, value))
    w.line("o += %s * %d" % (op.count_expr, op.size))


def _render_get_run(w, op):
    if op.kind == "string":
        end = "o + %s%s" % (op.count_expr, " - 1" if op.nul else "")
        if op.mode == "raw":
            w.line("%s = bytes(d[o:%s])" % (op.var, end))
        elif op.mode == "slow":
            w.line("%s = ''.join(map(chr, d[o:%s]))" % (op.var, end))
        else:
            w.line("%s = bytes(d[o:%s]).decode('latin-1')"
                   % (op.var, end))
    else:
        if op.mode == "view":
            w.line("%s = d[o:o + %s]" % (op.var, op.count_expr))
        else:
            w.line("%s = bytes(d[o:o + %s])" % (op.var, op.count_expr))
    if op.pad_to4:
        w.line("o += %s + (-%s %% 4)" % (op.count_expr, op.count_expr))
    else:
        w.line("o += %s" % op.count_expr)


def _render_check_remaining(w, op):
    w.line("if o + (%s) > len(d):" % op.size_expr)
    w.indent()
    w.line("raise UnmarshalError('message truncated')")
    w.dedent()


# ----------------------------------------------------------------------
# Slow byte runs
# ----------------------------------------------------------------------


def _render_reserve_one(w, op):
    w.line("%s = b.reserve(1)" % op.var)


def _render_store_byte(w, op):
    w.line("b.data[%s] = %s" % (op.offset_var, op.value_expr))


def _render_pad_to_four(w, op):
    w.line("%s = -b.length %% 4" % op.pad_var)
    w.line("%s = b.reserve(%s)" % (op.offset_var, op.pad_var))
    w.line("b.data[%s:%s + %s] = _Z[:%s]"
           % (op.offset_var, op.offset_var, op.pad_var, op.pad_var))


# ----------------------------------------------------------------------
# Control flow and statements
# ----------------------------------------------------------------------


def _render_bounds_check(w, op):
    w.line("if %s:" % op.cond)
    w.indent()
    w.line("raise %s(%r)" % (op.error, op.message))
    w.dedent()


def _render_bind(w, op):
    w.line("%s = %s" % (op.var, op.expr))


def _render_expr_stmt(w, op):
    w.line(op.expr)


def _render_call_out_of_line(w, op):
    if op.kind == "m":
        w.line("%s(b, %s)" % (op.function, op.arg_expr))
    else:
        w.line("%s, o = %s(d, o)" % (op.var, op.function))


def _render_loop(w, op):
    if op.kind == "range":
        w.line("for _ in range(%s):" % op.count_expr)
    else:
        w.line("for %s in %s:" % (op.var, op.iterable))
    w.indent()
    _render_ops(w, op.body)
    w.dedent()


def _render_list_loop(w, op):
    if op.kind == "m":
        w.line("while 1:")
        w.indent()
        _render_ops(w, op.node_ops)
        w.line("_nx = v.%s" % op.tail_name)
        w.line("if _nx is None:")
        w.indent()
        _render_ops(w, op.stop_ops)
        w.line("return")
        w.dedent()
        _render_ops(w, op.next_ops)
        w.line("v = _nx")
        w.dedent()
        return
    _render_ops(w, op.head_ops)
    w.line("_node = %s(%s)"
           % (op.record, ", ".join(list(op.head_exprs) + ["None"])))
    w.line("_head = _node")
    w.line("while 1:")
    w.indent()
    _render_ops(w, op.flag_ops)
    w.line("if %s == 0:" % op.flag_var)
    w.indent()
    w.line("return _head, o")
    w.dedent()
    w.line("if %s != 1:" % op.flag_var)
    w.indent()
    w.line("raise UnmarshalError('bad optional count')")
    w.dedent()
    _render_ops(w, op.node_ops)
    w.line("_nxt = %s(%s)"
           % (op.record, ", ".join(list(op.field_exprs) + ["None"])))
    w.line("_node.%s = _nxt" % op.tail_name)
    w.line("_node = _nxt")
    w.dedent()


def _render_branch(w, op):
    for index, arm in enumerate(op.arms):
        if arm.cond is None:
            w.line("else:")
        elif index == 0:
            w.line("if %s:" % arm.cond)
        else:
            w.line("elif %s:" % arm.cond)
        w.indent()
        _render_ops(w, arm.body)
        w.dedent()


def _render_raise(w, op):
    if op.value_expr:
        w.line("raise %s" % op.value_expr)
    elif op.literal:
        w.line("raise %s(%r)" % (op.error, op.message_expr))
    else:
        w.line("raise %s(%s)" % (op.error, op.message_expr))


def _render_check_end(w, op):
    w.line("_chk_end(d, o)")


def _render_return(w, op):
    if op.kind == "args":
        w.line("return (%s), o"
               % (", ".join(op.exprs) + "," if op.exprs else ""))
    elif op.kind == "value":
        w.line("return %s, o" % op.exprs[0])
    elif op.kind == "plain":
        w.line("return %s" % (op.exprs[0] if op.exprs else "None"))
    else:
        w.line("return")


def _render_reply_error_tail(w, op):
    _render_ops(w, op.ops)


_RENDERERS = {
    m.PutHeader: _render_put_header,
    m.HeaderPatch: _render_header_patch,
    m.PutAtoms: _render_put_atoms,
    m.GetAtoms: _render_get_atoms,
    m.AlignTo: _render_align_to,
    m.GetArrayHeader: _render_get_array_header,
    m.CopyRun: _render_copy_run,
    m.PutAtomArray: _render_put_atom_array,
    m.GetAtomArray: _render_get_atom_array,
    m.GetRun: _render_get_run,
    m.CheckRemaining: _render_check_remaining,
    m.ReserveOne: _render_reserve_one,
    m.StoreByte: _render_store_byte,
    m.PadToFour: _render_pad_to_four,
    m.BoundsCheck: _render_bounds_check,
    m.Bind: _render_bind,
    m.ExprStmt: _render_expr_stmt,
    m.CallOutOfLine: _render_call_out_of_line,
    m.Loop: _render_loop,
    m.ListLoop: _render_list_loop,
    m.Branch: _render_branch,
    m.Raise: _render_raise,
    m.CheckEnd: _render_check_end,
    m.Return: _render_return,
    m.ReplyErrorTail: _render_reply_error_tail,
}
