"""Shape probing: walk presented values along the naive type IR.

The payload-shape profiler (:mod:`repro.obs.profile`) wants to know, per
operation and direction, how long the sequences are, how long the
strings are, and which union arms actually fire — without re-deriving
any of that from the wire.  This module walks a *presented* value tuple
in lock step with the operation's naive :class:`~repro.mir.ops.TypeChannel`
(the same IR ``flick ir`` shows) and reports what it sees to a sink.

The sink protocol is two callbacks::

    sink.length(path, kind, n)   # kind in {"seq", "str", "bytes"}
    sink.arm(path, label)        # union arm / optional presence

*path* names the channel position in a dotted grammar: a top-level
parameter is its IDL name, struct fields append ``.field``, array
elements append ``[]`` — so ``entries[].name`` is "the ``name`` field
of the ``entries`` sequence's elements".

Probing is O(message) in the worst case, but counted arrays recurse
into at most :data:`ARRAY_SAMPLE` representative elements (first,
middle, last), so a 65 536-entry array of structs costs three element
visits, not 65 536.  The profiler only probes sampled calls, so this
cost is further divided by the sample rate.
"""

from __future__ import annotations

from repro.mir import ops as m
from repro.pres.values import union_parts

#: How many elements of a counted/fixed array to recurse into.
ARRAY_SAMPLE = 3


def probe_args(channel, types, values, sink):
    """Probe *values* (a sequence aligned with *channel*'s items).

    *types* is the naive program's named-type registry, used to chase
    :class:`~repro.mir.ops.TRef` nodes (recursive refs are skipped —
    their spine length is workload-defined, not schema-defined, and
    walking them would make probe cost unbounded).

    Void items are filtered before alignment: a void reply presents as
    ``[("value", TVoid)]`` in the naive channel but the generated
    ``_m_rep_ok_`` marshal takes no value argument for it.
    """
    items = [
        (name, node) for name, node in channel.items
        if not isinstance(node, m.TVoid)
    ]
    for (name, node), value in zip(items, values):
        _probe(node, types, value, name, sink)


def probe_reply_value(channel, types, result, sink):
    """Probe a decoded reply: the ``_u_rep_`` return-value convention.

    Generated reply unmarshal returns ``None`` for void replies, the
    bare value when the ok arm carries one item, and a tuple otherwise.
    """
    items = [
        (name, node) for name, node in channel.items
        if not isinstance(node, m.TVoid)
    ]
    if not items:
        return
    if len(items) == 1:
        values = (result,)
    else:
        values = result
    for (name, node), value in zip(items, values):
        _probe(node, types, value, name, sink)


def _probe(node, types, value, path, sink):
    if isinstance(node, (m.TAtom, m.TVoid)):
        return
    if isinstance(node, m.TRef):
        if node.recursive:
            return
        resolved = types.get(node.name)
        if resolved is not None:
            _probe(resolved, types, value, path, sink)
        return
    if isinstance(node, m.TString):
        sink.length(path, "str", len(value))
        return
    if isinstance(node, m.TBytes):
        sink.length(path, "bytes", len(value))
        return
    if isinstance(node, m.TCountedArray):
        length = len(value)
        sink.length(path, "seq", length)
        if not isinstance(node.element, m.TAtom):
            _probe_elements(node.element, types, value, path, sink)
        return
    if isinstance(node, m.TFixedArray):
        if not isinstance(node.element, m.TAtom):
            _probe_elements(node.element, types, value, path, sink)
        return
    if isinstance(node, m.TOptional):
        if value is None:
            sink.arm(path, "absent")
        else:
            sink.arm(path, "present")
            _probe(node.element, types, value, path, sink)
        return
    if isinstance(node, m.TUnion):
        discriminator, payload = union_parts(value)
        sink.arm(path, str(discriminator))
        arm = _match_arm(node, discriminator)
        if arm is not None and not isinstance(arm.node, m.TVoid):
            _probe(arm.node, types, payload, path + ".<arm>", sink)
        return
    if isinstance(node, (m.TStruct, m.TException)):
        for field in node.fields:
            _probe(field.node, types, getattr(value, field.name),
                   "%s.%s" % (path, field.name), sink)
        return
    # Unknown node kinds are skipped, not raised: probing must never
    # break a serving path.


def _probe_elements(element, types, value, path, sink):
    """Recurse into up to :data:`ARRAY_SAMPLE` representative elements."""
    length = len(value)
    if not length:
        return
    indices = sorted({0, length // 2, length - 1})[:ARRAY_SAMPLE]
    child_path = path + "[]"
    for index in indices:
        _probe(element, types, value[index], child_path, sink)


def _match_arm(union, discriminator):
    default = None
    for arm in union.arms:
        if arm.is_default:
            default = arm
        elif discriminator in arm.labels:
            return arm
    return default


def channel_paths(channel, types):
    """Every variable-shape path a channel can produce, with its kind.

    Returns ``[(path, kind)]`` where kind is ``seq``/``str``/``bytes``
    for length channels and ``arm`` for union/optional discriminators.
    Used by reporting code to show "this op *could* carry these shapes"
    next to what was actually observed.
    """
    found = []

    def walk(node, path, seen):
        if isinstance(node, m.TRef):
            if node.recursive or node.name in seen:
                return
            resolved = types.get(node.name)
            if resolved is not None:
                walk(resolved, path, seen | {node.name})
            return
        if isinstance(node, m.TString):
            found.append((path, "str"))
        elif isinstance(node, m.TBytes):
            found.append((path, "bytes"))
        elif isinstance(node, m.TCountedArray):
            found.append((path, "seq"))
            walk(node.element, path + "[]", seen)
        elif isinstance(node, m.TFixedArray):
            walk(node.element, path + "[]", seen)
        elif isinstance(node, m.TOptional):
            found.append((path, "arm"))
            walk(node.element, path, seen)
        elif isinstance(node, m.TUnion):
            found.append((path, "arm"))
            for arm in node.arms:
                walk(arm.node, path + ".<arm>", seen)
        elif isinstance(node, (m.TStruct, m.TException)):
            for field in node.fields:
                walk(field.node, "%s.%s" % (path, field.name), seen)

    for name, node in channel.items:
        walk(node, name, frozenset())
    return found
