"""Textual dumps of marshal IR for ``flick ir`` and the golden tests.

The format is deterministic: one line per op, nested bodies indented,
value expressions printed verbatim.  It is a debugging surface, not a
parseable interchange format.
"""

from __future__ import annotations

from repro.mir import ops as m


def dump_program(program, op_filter=None):
    """Dump *program* as text; *op_filter* keeps one operation's stubs."""
    lines = []
    lines.append("mir program %s via %s"
                 % (program.interface_name, program.wire_name))
    if program.passes:
        lines.append("passes: " + " ".join(
            "%s=%s" % (name, "on" if enabled else "off")
            for name, enabled in program.passes.items()
        ))
    else:
        lines.append("passes: not run")
    if program.aliases:
        for dropped in sorted(program.aliases):
            lines.append("alias %s -> %s"
                         % (dropped, program.aliases[dropped]))
    for fn in program.functions:
        if op_filter is not None and fn.operation != op_filter:
            continue
        lines.append("")
        tags = [fn.kind]
        if fn.chunks:
            tags.append("chunks=%d" % fn.chunks)
        if fn.atoms:
            tags.append("atoms=%d" % fn.atoms)
        if fn.type_name:
            tags.append("type=%s" % fn.type_name)
        lines.append("func %s(%s)  [%s]"
                     % (fn.name, ", ".join(fn.params), " ".join(tags)))
        for const_name, template in fn.consts.items():
            lines.append("  const %s = %d bytes %r"
                         % (const_name, len(template), template))
        _dump_ops(lines, fn.ops, "  ")
    return "\n".join(lines) + "\n"


def _dump_ops(lines, ops, indent):
    for op in ops:
        _dump_op(lines, op, indent)


def _plan_text(plan):
    if plan.kind == "plain":
        return "reserve[%s %s]" % (plan.var, plan.size)
    if plan.kind == "pad_base":
        return "reserve[%s pad=%d %s]" % (plan.var, plan.pad, plan.size)
    return ("reserve[%s align=%d pad=%s %s]"
            % (plan.var, plan.align, plan.pad_var, plan.size))


def _dump_op(lines, op, indent):
    add = lambda text: lines.append(indent + text)  # noqa: E731
    if isinstance(op, m.PutHeader):
        patches = "".join(
            " patch@%d:%s<-%s" % patch for patch in op.patches
        )
        add("PutHeader %s len=%d%s"
            % (op.const, len(op.template), patches))
    elif isinstance(op, m.HeaderPatch):
        add("HeaderPatch @%d %s = b.length - %d"
            % (op.offset, op.fmt, op.delta))
    elif isinstance(op, m.PutAtoms):
        start = "@%s" % op.start if op.start is not None else "@dyn"
        add("PutAtoms %s '%s%s' total=%d %s %s"
            % (start, op.endian, op.fmt, op.total,
               "batched" if op.batched else "unbatched",
               _plan_text(op.reserve)))
        for entry, offset in zip(op.entries, op.offsets):
            star = "*" if entry.star or entry.count > 1 else ""
            add("  +%d %s%s%s <- %s"
                % (offset, star,
                   entry.count if entry.count > 1 or entry.star else "",
                   entry.fmt, entry.expr))
    elif isinstance(op, m.GetAtoms):
        add("GetAtoms %s = '%s%s' total=%d%s"
            % (op.var, op.endian, op.fmt, op.total,
               " single" if op.single else ""))
    elif isinstance(op, m.AlignTo):
        if op.mode == "pad":
            add("AlignTo o += %d" % op.pad)
        else:
            add("AlignTo o %%= %d" % op.align)
    elif isinstance(op, m.GetArrayHeader):
        add("GetArrayHeader %s = '%s%s'[%d] advance=%d"
            % (op.var, op.endian, op.fmt, op.index, op.advance))
    elif isinstance(op, m.CopyRun):
        header = (" header='%s'<-(%s)" % (op.header[0],
                                          ", ".join(op.header[1]))
                  if op.header else "")
        count = (str(op.static_count) if op.static_count is not None
                 else op.n_expr)
        add("CopyRun %s n=%s%s nul=%d pad4=%s %s <- %s"
            % (op.variant, count, header, op.nul, op.pad_to4,
               _plan_text(op.reserve), op.data_expr))
    elif isinstance(op, m.PutAtomArray):
        add("PutAtomArray %s '%s%s'*%s %s <- %s"
            % (op.variant, op.endian, op.fmt, op.n_expr,
               _plan_text(op.reserve), op.data_expr))
    elif isinstance(op, m.GetAtomArray):
        add("GetAtomArray %s = '%s%s'*%s conv=%s"
            % (op.var, op.endian, op.fmt, op.count_expr, op.conversion))
    elif isinstance(op, m.GetRun):
        add("GetRun %s = %s n=%s nul=%d mode=%s pad4=%s"
            % (op.var, op.kind, op.count_expr, op.nul, op.mode,
               op.pad_to4))
    elif isinstance(op, m.CheckRemaining):
        add("CheckRemaining %s" % op.size_expr)
    elif isinstance(op, m.ReserveOne):
        add("ReserveOne %s" % op.var)
    elif isinstance(op, m.StoreByte):
        add("StoreByte [%s] <- %s" % (op.offset_var, op.value_expr))
    elif isinstance(op, m.PadToFour):
        add("PadToFour %s %s" % (op.pad_var, op.offset_var))
    elif isinstance(op, m.BoundsCheck):
        add("BoundsCheck %s -> %s(%r)"
            % (op.cond, op.error, op.message))
    elif isinstance(op, m.Bind):
        add("Bind %s = %s" % (op.var, op.expr))
    elif isinstance(op, m.ExprStmt):
        add("Expr %s" % op.expr)
    elif isinstance(op, m.CallOutOfLine):
        if op.kind == "m":
            add("CallOutOfLine %s(b, %s)" % (op.function, op.arg_expr))
        else:
            add("CallOutOfLine %s, o = %s(d, o)"
                % (op.var, op.function))
    elif isinstance(op, m.Loop):
        if op.kind == "range":
            add("Loop range %s:" % op.count_expr)
        else:
            add("Loop %s %s in %s:" % (op.kind, op.var, op.iterable))
        _dump_ops(lines, op.body, indent + "  ")
    elif isinstance(op, m.ListLoop):
        add("ListLoop %s tail=%s%s:"
            % (op.kind, op.tail_name,
               " record=%s" % op.record if op.record else ""))
        for label, body in (("node", op.node_ops), ("flag", op.flag_ops),
                            ("stop", op.stop_ops), ("next", op.next_ops),
                            ("head", op.head_ops)):
            if body:
                add("  %s:" % label)
                _dump_ops(lines, body, indent + "    ")
    elif isinstance(op, m.Branch):
        for arm in op.arms:
            add("Branch %s:" % (arm.cond if arm.cond is not None
                                else "else"))
            _dump_ops(lines, arm.body, indent + "  ")
    elif isinstance(op, m.Raise):
        if op.value_expr:
            add("Raise %s" % op.value_expr)
        else:
            add("Raise %s(%s)" % (op.error, op.message_expr))
    elif isinstance(op, m.CheckEnd):
        add("CheckEnd")
    elif isinstance(op, m.Return):
        add("Return %s %s" % (op.kind, ", ".join(op.exprs)))
    elif isinstance(op, m.ReplyErrorTail):
        add("ReplyErrorTail:")
        _dump_ops(lines, op.ops, indent + "  ")
    else:
        add(repr(op))
