"""The closure renderer: marshal IR compiled straight to codecs.

Instead of rendering Python source and round-tripping through
``compile``/``exec``, this renderer walks the optimized IR once per
function and builds a chain of small step closures over precompiled
:class:`struct.Struct` objects.  Each step has the uniform signature
``step(b, d, o, env) -> o`` where *b* is the marshal buffer, *d* the
received bytes, *o* the read offset, and *env* the function's local
bindings.  Value expressions — already plain Python expressions by the
renderer contract (INTERNALS section 10) — are compiled once at install
time; simple identifier and integer expressions bypass ``eval``
entirely, which keeps the hot marshal path competitive with rendered
source.

The generated module still provides the scaffolding (record classes,
client proxy, dispatch); :func:`install_closures` then replaces every
codec entry (``_m_req_*``, ``_u_req_*``, ``_m_rep_*``, ``_u_rep_*`` and
the out-of-line ``_m_<T>``/``_u_<T>`` helpers) in the module dict, so
byte output is identical by construction — both renderers consume the
same optimized IR.
"""

from __future__ import annotations

import re
import struct

from repro.errors import BackEndError, UnmarshalError
from repro.mir import ops as m

_ZEROS = b"\x00" * 64

_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")

_LEN_OF = re.compile(r"len\(([A-Za-z_]\w*)\)\Z")

_LINEAR = re.compile(r"(\d+) \+ ([A-Za-z_]\w*)(?: \* (\d+))?\Z")

_ATTR_CHAIN = re.compile(r"[A-Za-z_]\w*(\.[A-Za-z_]\w*)+\Z")

_LITERALS = {"None": None, "True": True, "False": False}


class _Ret(Exception):
    """Internal non-local return carrying the function's result.

    Only unmarshal functions and list-loop helpers ever raise it; the
    hot request-marshal path has no Return ops and runs without a
    try/except.
    """

    def __init__(self, value):
        self.value = value


def install_closures(module, program):
    """Compile *program* and install its codecs over *module*."""
    if program is None:
        raise BackEndError(
            "these stubs carry no marshal IR (closure renderer "
            "requires the MIR pipeline)"
        )
    G = module.__dict__
    for fn in program.functions:
        G[fn.name] = _compile_function(fn, G)
    G["__renderer__"] = "closures"
    return module


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


def _compile_expr(expr, G):
    """Compile one IR value expression to ``f(b, d, o, env) -> value``."""
    expr = expr.strip()
    if expr in _LITERALS:
        value = _LITERALS[expr]
        return lambda b, d, o, env, _v=value: _v
    if _IDENT.match(expr):
        def name_fn(b, d, o, env, _n=expr, _G=G):
            try:
                return env[_n]
            except KeyError:
                return _G[_n]
        return name_fn
    try:
        value = int(expr)
    except ValueError:
        pass
    else:
        return lambda b, d, o, env, _v=value: _v
    match = _LINEAR.match(expr)
    if match:
        base = int(match.group(1))
        name = match.group(2)
        scale = int(match.group(3) or 1)

        def linear_fn(b, d, o, env, _b=base, _n=name, _s=scale):
            return _b + env[_n] * _s
        return linear_fn
    match = _LEN_OF.match(expr)
    if match:
        def len_fn(b, d, o, env, _n=match.group(1), _G=G):
            try:
                return len(env[_n])
            except KeyError:
                return len(_G[_n])
        return len_fn
    if _ATTR_CHAIN.match(expr):
        head, _, rest = expr.partition(".")
        attrs = tuple(rest.split("."))

        def attr_fn(b, d, o, env, _h=head, _a=attrs, _G=G):
            try:
                value = env[_h]
            except KeyError:
                value = _G[_h]
            for name in _a:
                value = getattr(value, name)
            return value
        return attr_fn
    code = compile(expr, "<mir>", "eval")
    # Inject b/d/o into the eval scope only when the expression actually
    # names them (struct offsets and lengths on the unmarshal path do).
    needed = tuple(n for n in ("b", "d", "o") if n in code.co_names)
    if not needed:
        def const_scope_fn(b, d, o, env, _c=code, _G=G):
            return eval(_c, _G, env)
        return const_scope_fn

    def full_fn(b, d, o, env, _c=code, _G=G, _needed=needed):
        scope = locals()
        for n in _needed:
            env[n] = scope[n]
        return eval(_c, _G, env)
    return full_fn


def _compile_exprs(exprs, G):
    return [_compile_expr(e, G) for e in exprs]


def _compile_arg_tuple(entries, G):
    """Compile entry expressions to one ``f(b, d, o, env) -> tuple``.

    A multi-field chunk evaluates all its pack arguments in a single
    compiled tuple display (starred entries splice in place), so the hot
    path pays one ``eval`` per chunk rather than one per atom.
    """
    parts = [
        "*(%s)" % expr if star else "(%s)" % expr
        for expr, star in entries
    ]
    code = compile("(%s,)" % ", ".join(parts), "<mir>", "eval")
    needed = tuple(n for n in ("b", "d", "o") if n in code.co_names)
    if not needed:
        def tuple_fn(b, d, o, env, _c=code, _G=G):
            return eval(_c, _G, env)
        return tuple_fn

    def tuple_full_fn(b, d, o, env, _c=code, _G=G, _needed=needed):
        scope = locals()
        for n in _needed:
            env[n] = scope[n]
        return eval(_c, _G, env)
    return tuple_full_fn


# ----------------------------------------------------------------------
# Reservations
# ----------------------------------------------------------------------


def _compile_reserve(plan, G):
    """Compile a ReservePlan to ``f(b, d, o, env) -> base_offset``.

    Also binds ``plan.var`` (and ``plan.pad_var``) in *env*, exactly as
    the rendered source does.
    """
    size = plan.size
    size_fn = (_compile_expr(size, G)
               if not isinstance(size, int) else None)
    if plan.kind == "plain":
        def plain(b, d, o, env, _v=plan.var, _s=size, _fn=size_fn):
            at = b.reserve(_s if _fn is None else _fn(b, d, o, env))
            env[_v] = at
            return at
        return plain
    if plan.kind == "pad_base":
        def pad_base(b, d, o, env, _v=plan.var, _p=plan.pad,
                     _s=size, _fn=size_fn):
            n = _s if _fn is None else _fn(b, d, o, env)
            at = b.reserve(_p + n) + _p
            b.data[at - _p:at] = _ZEROS[:_p]
            env[_v] = at
            return at
        return pad_base
    if plan.kind == "pad_var":
        def pad_var(b, d, o, env, _v=plan.var, _pv=plan.pad_var,
                    _a=plan.align, _s=size, _fn=size_fn):
            pad = -b.length % _a
            n = _s if _fn is None else _fn(b, d, o, env)
            at = b.reserve(pad + n) + pad
            b.data[at - pad:at] = _ZEROS[:pad]
            env[_pv] = pad
            env[_v] = at
            return at
        return pad_var
    raise BackEndError("unknown reserve plan %r" % plan.kind)


# ----------------------------------------------------------------------
# Op compilers — each returns step(b, d, o, env) -> o
# ----------------------------------------------------------------------


def _c_put_header(op, G):
    size = len(op.template)
    if size == 0:
        return None
    template = bytes(op.template)
    patches = [
        (struct.Struct(fmt).pack_into, offset, _compile_expr(expr, G))
        for offset, fmt, expr in op.patches
    ]

    def step(b, d, o, env):
        at = b.reserve(size)
        b.data[at:at + size] = template
        for pack, offset, fn in patches:
            pack(b.data, at + offset, fn(b, d, o, env))
        env["_o0"] = at
        return o
    return step


def _c_header_patch(op, G):
    pack = struct.Struct(op.fmt).pack_into
    offset, delta = op.offset, op.delta

    def step(b, d, o, env):
        pack(b.data, env["_o0"] + offset, b.length - delta)
        return o
    return step


def _c_put_atoms(op, G):
    reserve = _compile_reserve(op.reserve, G)
    if op.batched:
        pack = struct.Struct(op.endian + op.fmt).pack_into
        entries = op.entries
        if len(entries) == 1 and not (entries[0].star
                                      or entries[0].count > 1):
            value_fn = _compile_expr(entries[0].expr, G)

            def single_step(b, d, o, env):
                pack(b.data, reserve(b, d, o, env),
                     value_fn(b, d, o, env))
                return o
            return single_step
        args_fn = _compile_arg_tuple(
            [(e.expr, e.star or e.count > 1) for e in entries], G
        )

        def step(b, d, o, env):
            at = reserve(b, d, o, env)
            pack(b.data, at, *args_fn(b, d, o, env))
            return o
        return step
    # Unbatched: one pack per atom with the gap folded in as pad bytes,
    # mirroring the rendered layout byte for byte.
    pieces = []
    previous_end = 0
    for entry, offset in zip(op.entries, op.offsets):
        gap = offset - previous_end
        starred = entry.star or entry.count > 1
        single = ("%d%s" % (entry.count, entry.fmt)
                  if starred else entry.fmt)
        if gap:
            single = "%dx%s" % (gap, single)
        pieces.append((
            struct.Struct(op.endian + single).pack_into,
            previous_end,
            _compile_expr(entry.expr, G),
            starred,
        ))
        previous_end = offset + entry.size * entry.count

    def step(b, d, o, env):
        at = reserve(b, d, o, env)
        for pack, rel, fn, star in pieces:
            value = fn(b, d, o, env)
            if star:
                pack(b.data, at + rel, *value)
            else:
                pack(b.data, at + rel, value)
        return o
    return step


def _c_get_atoms(op, G):
    unpack = struct.Struct(op.endian + op.fmt).unpack_from
    var, total, subscript = op.var, op.total, op.subscript

    def step(b, d, o, env):
        value = unpack(d, o)
        env[var] = value if subscript is None else value[subscript]
        return o + total
    return step


def _c_align_to(op, G):
    if op.mode == "pad":
        pad = op.pad
        return lambda b, d, o, env: o + pad
    align = op.align
    return lambda b, d, o, env: o + (-o % align)


def _c_get_array_header(op, G):
    unpack = struct.Struct(op.endian + op.fmt).unpack_from
    var, index, advance = op.var, op.index, op.advance

    def step(b, d, o, env):
        env[var] = unpack(d, o)[index]
        return o + advance
    return step


def _c_copy_run(op, G):
    reserve = _compile_reserve(op.reserve, G)
    data_fn = _compile_expr(op.data_expr, G)
    header = None
    if op.header is not None:
        fmt, args = op.header
        header = (struct.Struct(fmt).pack_into, _compile_exprs(args, G))
    if op.variant == "static":
        lead, position = op.lead_pad, op.position
        end = op.position + op.static_count
        trail = op.trail_pad

        def static_step(b, d, o, env):
            at = reserve(b, d, o, env)
            base = at + lead
            if lead:
                b.data[at:base] = _ZEROS[:lead]
            if header is not None:
                pack, arg_fns = header
                pack(b.data, base,
                     *[fn(b, d, o, env) for fn in arg_fns])
            b.data[base + position:base + end] = data_fn(b, d, o, env)
            if trail:
                b.data[base + end:base + end + trail] = _ZEROS[:trail]
            return o
        return static_step
    n_fn = _compile_expr(op.n_expr, G)
    position, end_var, nul, pad4 = (op.position, op.end_var, op.nul,
                                    op.pad_to4)

    def dynamic_step(b, d, o, env):
        at = reserve(b, d, o, env)
        if header is not None:
            pack, arg_fns = header
            pack(b.data, at, *[fn(b, d, o, env) for fn in arg_fns])
        base = at + position
        n = n_fn(b, d, o, env)
        end = base + n
        env[end_var] = end
        if nul:
            b.data[base:end - 1] = data_fn(b, d, o, env)
            b.data[end - 1] = 0
        else:
            b.data[base:end] = data_fn(b, d, o, env)
        if pad4:
            pad = -n % 4
            b.data[end:end + pad] = _ZEROS[:pad]
        return o
    return dynamic_step


def _make_struct_cache(endian, fmt):
    """Per-op cache of counted ``struct.Struct`` objects keyed by n.

    Skips both the per-call format-string build and the struct module's
    string-keyed cache lookup on repeated counts (the common case for a
    stub called in a loop).
    """
    cache = {}

    def counted(n):
        entry = cache.get(n)
        if entry is None:
            if len(cache) > 512:
                cache.clear()
            entry = cache[n] = struct.Struct(
                "%s%d%s" % (endian, n, fmt)
            )
        return entry
    return counted


def _c_put_atom_array(op, G):
    reserve = _compile_reserve(op.reserve, G)
    data_fn = _compile_expr(op.data_expr, G)
    n_fn = _compile_expr(op.n_expr, G)
    endian, fmt, size, position = op.endian, op.fmt, op.size, op.position
    counted = _make_struct_cache(endian, fmt)
    header = None
    if op.header is not None:
        hfmt, args = op.header
        header = (struct.Struct(hfmt).pack_into, _compile_exprs(args, G))
    if op.variant == "staged":
        stage_var = op.stage_var

        def staged_step(b, d, o, env):
            n = n_fn(b, d, o, env)
            stage = bytearray(n * size)
            counted(n).pack_into(stage, 0, *data_fn(b, d, o, env))
            env[stage_var] = stage
            at = reserve(b, d, o, env)
            if header is not None:
                pack, arg_fns = header
                pack(b.data, at, *[fn(b, d, o, env) for fn in arg_fns])
            base = at + position
            b.data[base:base + n * size] = stage
            return o
        return staged_step
    split_reserve = (None if op.variant != "split"
                     else _compile_reserve(op.split_reserve, G))

    def step(b, d, o, env):
        at = reserve(b, d, o, env)
        if header is not None:
            pack, arg_fns = header
            pack(b.data, at, *[fn(b, d, o, env) for fn in arg_fns])
        if split_reserve is not None:
            at = split_reserve(b, d, o, env)
        else:
            at = at + position
        n = n_fn(b, d, o, env)
        counted(n).pack_into(b.data, at, *data_fn(b, d, o, env))
        return o
    return step


def _c_get_atom_array(op, G):
    count_fn = _compile_expr(op.count_expr, G)
    endian, fmt, size = op.endian, op.fmt, op.size
    var, conversion = op.var, op.conversion
    counted = _make_struct_cache(endian, fmt)

    def step(b, d, o, env):
        n = count_fn(b, d, o, env)
        raw = counted(n).unpack_from(d, o)
        if conversion == "char":
            env[var] = [chr(c) for c in raw]
        elif conversion == "bool":
            env[var] = [bool(c) for c in raw]
        else:
            env[var] = list(raw)
        return o + n * size
    return step


def _c_get_run(op, G):
    count_fn = _compile_expr(op.count_expr, G)
    var, kind, nul, mode, pad4 = (op.var, op.kind, op.nul, op.mode,
                                  op.pad_to4)

    def step(b, d, o, env):
        n = count_fn(b, d, o, env)
        if kind == "string":
            end = o + n - 1 if nul else o + n
            if mode == "raw":
                env[var] = bytes(d[o:end])
            elif mode == "slow":
                env[var] = "".join(map(chr, d[o:end]))
            else:
                env[var] = bytes(d[o:end]).decode("latin-1")
        elif mode == "view":
            env[var] = d[o:o + n]
        else:
            env[var] = bytes(d[o:o + n])
        return o + n + (-n % 4) if pad4 else o + n
    return step


def _c_check_remaining(op, G):
    size_fn = _compile_expr(op.size_expr, G)

    def step(b, d, o, env):
        if o + size_fn(b, d, o, env) > len(d):
            raise UnmarshalError("message truncated")
        return o
    return step


def _c_reserve_one(op, G):
    var = op.var

    def step(b, d, o, env):
        env[var] = b.reserve(1)
        return o
    return step


def _c_store_byte(op, G):
    offset_fn = _compile_expr(op.offset_var, G)
    value_fn = _compile_expr(op.value_expr, G)

    def step(b, d, o, env):
        b.data[offset_fn(b, d, o, env)] = value_fn(b, d, o, env)
        return o
    return step


def _c_pad_to_four(op, G):
    pad_var, offset_var = op.pad_var, op.offset_var

    def step(b, d, o, env):
        pad = -b.length % 4
        at = b.reserve(pad)
        b.data[at:at + pad] = _ZEROS[:pad]
        env[pad_var] = pad
        env[offset_var] = at
        return o
    return step


def _c_bounds_check(op, G):
    cond_fn = _compile_expr(op.cond, G)
    error = G[op.error]
    message = op.message

    def step(b, d, o, env):
        if cond_fn(b, d, o, env):
            raise error(message)
        return o
    return step


def _c_bind(op, G):
    value_fn = _compile_expr(op.expr, G)
    if ", " in op.var:
        names = tuple(op.var.split(", "))

        def unpack_step(b, d, o, env):
            values = value_fn(b, d, o, env)
            for name, value in zip(names, values):
                env[name] = value
            return o
        return unpack_step
    var = op.var

    def step(b, d, o, env):
        env[var] = value_fn(b, d, o, env)
        return o
    return step


def _c_expr_stmt(op, G):
    fn = _compile_expr(op.expr, G)

    def step(b, d, o, env):
        fn(b, d, o, env)
        return o
    return step


def _c_call_out_of_line(op, G):
    name = op.function
    if op.kind == "m":
        arg_fn = _compile_expr(op.arg_expr, G)

        def m_step(b, d, o, env):
            G[name](b, arg_fn(b, d, o, env))
            return o
        return m_step
    var = op.var

    def u_step(b, d, o, env):
        env[var], o = G[name](d, o)
        return o
    return u_step


_STRIP_STRINGS = re.compile(r"'[^']*'|\"[^\"]*\"")

_FREE_NAME = re.compile(r"(?<![\w.])[A-Za-z_]\w*")


def _substitute(expr, binds):
    """Inline *binds* (name -> expr) into *expr*, parenthesized."""
    if not binds:
        return expr
    pattern = re.compile(
        r"(?<![\w.])(%s)(?!\w)" % "|".join(map(re.escape, binds))
    )
    return pattern.sub(lambda match: "(%s)" % binds[match.group(1)], expr)


def _fuse_elements_loop(op, G):
    """Fuse a constant-stride marshal loop into one compiled closure.

    A loop whose body is Binds feeding a single batched constant-size
    chunk (structure arrays: the paper's Figure 3 ``rects`` case) packs
    every element at ``base + i * stride`` inside one compiled
    comprehension — one reservation and one code object for the whole
    array instead of interpreted steps per element.  Byte output is
    unchanged: the per-element reservations were contiguous and the
    chunk covers its full stride.  Returns None when the body has any
    other shape (the general step loop handles it).
    """
    body = list(op.body)
    if not body or not isinstance(body[-1], m.PutAtoms):
        return None
    atoms = body[-1]
    if (not atoms.batched or atoms.reserve.kind != "plain"
            or not isinstance(atoms.reserve.size, int)
            or atoms.reserve.size != atoms.total):
        return None
    binds = {}
    for prior in body[:-1]:
        if not isinstance(prior, m.Bind) or ", " in prior.var:
            return None
        binds[prior.var] = _substitute(prior.expr, binds)
    parts = []
    for entry in atoms.entries:
        expr = _substitute(entry.expr, binds)
        parts.append("*(%s)" % expr if entry.star or entry.count > 1
                     else "(%s)" % expr)
    # Every free name must resolve inside the compiled lambda, where
    # only the loop variable and module globals are visible (the env
    # dict is not); bail out to the step loop otherwise.
    import builtins

    for part in parts:
        for name in _FREE_NAME.findall(_STRIP_STRINGS.sub("''", part)):
            if (name != op.var and name not in G
                    and not hasattr(builtins, name)):
                return None
    stride = atoms.total
    source = (
        "lambda _pk_, _bf_, _at_, _sq_: "
        "[_pk_(_bf_, _at_ + _ix_ * %d, %s) "
        "for _ix_, %s in enumerate(_sq_)]"
        % (stride, ", ".join(parts), op.var)
    )
    fused = eval(compile(source, "<mir-loop>", "eval"), G)
    pack = struct.Struct(atoms.endian + atoms.fmt).pack_into
    return fused, pack, stride


def _c_loop(op, G):
    body = _compile_ops(op.body, G)
    if op.kind == "range":
        count_fn = _compile_expr(op.count_expr, G)

        def range_step(b, d, o, env):
            for _ in range(count_fn(b, d, o, env)):
                o = _run(body, b, d, o, env)
            return o
        return range_step
    iter_fn = _compile_expr(op.iterable, G)
    var = op.var
    fusion = _fuse_elements_loop(op, G) if op.kind == "elements" else None
    if fusion is not None:
        fused, pack, stride = fusion

        def fused_step(b, d, o, env):
            seq = iter_fn(b, d, o, env)
            try:
                count = len(seq)
            except TypeError:
                for item in seq:
                    env[var] = item
                    o = _run(body, b, d, o, env)
                return o
            fused(pack, b.data, b.reserve(count * stride), seq)
            return o
        return fused_step

    def step(b, d, o, env):
        for item in iter_fn(b, d, o, env):
            env[var] = item
            o = _run(body, b, d, o, env)
        return o
    return step


def _c_list_loop(op, G):
    tail_name = op.tail_name
    if op.kind == "m":
        node = _compile_ops(op.node_ops, G)
        stop = _compile_ops(op.stop_ops, G)
        nxt = _compile_ops(op.next_ops, G)

        def m_step(b, d, o, env):
            while 1:
                o = _run(node, b, d, o, env)
                tail = getattr(env["v"], tail_name)
                env["_nx"] = tail
                if tail is None:
                    o = _run(stop, b, d, o, env)
                    raise _Ret(None)
                o = _run(nxt, b, d, o, env)
                env["v"] = tail
        return m_step
    record = G[op.record]
    head = _compile_ops(op.head_ops, G)
    head_fns = _compile_exprs(op.head_exprs, G)
    flag_ops = _compile_ops(op.flag_ops, G)
    node = _compile_ops(op.node_ops, G)
    field_fns = _compile_exprs(op.field_exprs, G)
    flag_var = op.flag_var

    def u_step(b, d, o, env):
        o = _run(head, b, d, o, env)
        args = [fn(b, d, o, env) for fn in head_fns]
        args.append(None)
        current = record(*args)
        first = current
        while 1:
            o = _run(flag_ops, b, d, o, env)
            flag = env[flag_var]
            if flag == 0:
                raise _Ret((first, o))
            if flag != 1:
                raise UnmarshalError("bad optional count")
            o = _run(node, b, d, o, env)
            args = [fn(b, d, o, env) for fn in field_fns]
            args.append(None)
            nxt = record(*args)
            setattr(current, tail_name, nxt)
            current = nxt
    return u_step


def _c_branch(op, G):
    arms = [
        (None if arm.cond is None else _compile_expr(arm.cond, G),
         _compile_ops(arm.body, G))
        for arm in op.arms
    ]

    def step(b, d, o, env):
        for cond_fn, body in arms:
            if cond_fn is None or cond_fn(b, d, o, env):
                return _run(body, b, d, o, env)
        return o
    return step


def _c_raise(op, G):
    if op.value_expr:
        value_fn = _compile_expr(op.value_expr, G)

        def value_step(b, d, o, env):
            raise value_fn(b, d, o, env)
        return value_step
    error = G[op.error]
    if op.literal:
        message = op.message_expr

        def literal_step(b, d, o, env):
            raise error(message)
        return literal_step
    message_fn = _compile_expr(op.message_expr, G)

    def step(b, d, o, env):
        raise error(message_fn(b, d, o, env))
    return step


def _c_check_end(op, G):
    def step(b, d, o, env):
        G["_chk_end"](d, o)
        return o
    return step


def _c_return(op, G):
    if op.kind == "args":
        fns = _compile_exprs(op.exprs, G)

        def args_step(b, d, o, env):
            raise _Ret((tuple(fn(b, d, o, env) for fn in fns), o))
        return args_step
    if op.kind == "value":
        value_fn = _compile_expr(op.exprs[0], G)

        def value_step(b, d, o, env):
            raise _Ret((value_fn(b, d, o, env), o))
        return value_step
    if op.kind == "plain":
        if op.exprs:
            value_fn = _compile_expr(op.exprs[0], G)

            def plain_step(b, d, o, env):
                raise _Ret(value_fn(b, d, o, env))
            return plain_step

        def none_step(b, d, o, env):
            raise _Ret(None)
        return none_step

    def bare_step(b, d, o, env):
        raise _Ret(None)
    return bare_step


_COMPILERS = {
    m.PutHeader: _c_put_header,
    m.HeaderPatch: _c_header_patch,
    m.PutAtoms: _c_put_atoms,
    m.GetAtoms: _c_get_atoms,
    m.AlignTo: _c_align_to,
    m.GetArrayHeader: _c_get_array_header,
    m.CopyRun: _c_copy_run,
    m.PutAtomArray: _c_put_atom_array,
    m.GetAtomArray: _c_get_atom_array,
    m.GetRun: _c_get_run,
    m.CheckRemaining: _c_check_remaining,
    m.ReserveOne: _c_reserve_one,
    m.StoreByte: _c_store_byte,
    m.PadToFour: _c_pad_to_four,
    m.BoundsCheck: _c_bounds_check,
    m.Bind: _c_bind,
    m.ExprStmt: _c_expr_stmt,
    m.CallOutOfLine: _c_call_out_of_line,
    m.Loop: _c_loop,
    m.ListLoop: _c_list_loop,
    m.Branch: _c_branch,
    m.Raise: _c_raise,
    m.CheckEnd: _c_check_end,
    m.Return: _c_return,
}


def _compile_ops(ops, G):
    steps = []
    for op in ops:
        if isinstance(op, m.ReplyErrorTail):
            steps.extend(_compile_ops(op.ops, G))
            continue
        step = _COMPILERS[type(op)](op, G)
        if step is not None:
            steps.append(step)
    return steps


def _run(steps, b, d, o, env):
    for step in steps:
        o = step(b, d, o, env)
    return o


# ----------------------------------------------------------------------
# Function drivers
# ----------------------------------------------------------------------


def _compile_function(fn, G):
    steps = _compile_ops(fn.ops, G)
    can_return = any(
        isinstance(op, (m.Return, m.ListLoop))
        for op in m.walk_ops(fn.ops)
    )
    if fn.params and fn.params[0] == "b":
        names = fn.params[1:]
        if can_return:
            def m_driver(b, *args):
                env = dict(zip(names, args))
                o = 0
                try:
                    for step in steps:
                        o = step(b, None, o, env)
                except _Ret as ret:
                    return ret.value
                return None
            driver = m_driver
        else:
            # The hot path: request/reply marshal bodies never return a
            # value, so no exception machinery is set up at all.
            def m_driver_hot(b, *args):
                env = dict(zip(names, args))
                o = 0
                for step in steps:
                    o = step(b, None, o, env)
                return None
            driver = m_driver_hot
    else:
        def u_driver(d, o):
            env = {}
            try:
                for step in steps:
                    o = step(None, d, o, env)
            except _Ret as ret:
                return ret.value
            return None
        driver = u_driver
    driver.__name__ = fn.name
    driver.__qualname__ = fn.name
    driver.__mir_kind__ = fn.kind
    return driver
