"""repro.mir — the explicit marshal IR (typed ops, passes, renderers).

Pipeline::

    PRES_C --build_program--> MirProgram --PassManager--> MirProgram
           --render_py / render_closures / render_c--> stubs

:mod:`repro.mir.ops` defines the op vocabulary, :mod:`repro.mir.build`
walks PRES_C once to produce a :class:`~repro.mir.ops.MirProgram`,
:mod:`repro.mir.passes` runs the section-3 optimizations, and the
renderer modules consume the optimized IR.
"""

from repro.mir.ops import MirFunction, MirProgram, mangle  # noqa: F401
from repro.mir.build import build_naive, build_program  # noqa: F401
from repro.mir.passes import (  # noqa: F401
    IR_PASSES,
    LOWERING_PASSES,
    PASS_NAMES,
    PassManager,
)
