"""Lowering: PRES_C -> marshal IR op sequences.

:class:`MarshalLower` and :class:`UnmarshalLower` walk a PRES tree once
and append typed ops (:mod:`repro.mir.ops`) to the current function body.
They carry the same static-layout state machine the text emitters used to
run — absolute offset tracking, alignment guarantees, chunk admission —
so the op sequence already encodes the section-3 optimizations selected
by the pass configuration:

* ``chunk_atoms`` + ``batch_buffer_checks`` — atom runs coalesce into one
  :class:`~repro.mir.ops.PutAtoms`/:class:`~repro.mir.ops.GetAtoms` with
  a multi-field format and one reserve (chunk coalescing + free-space
  check hoisting).  Off: one op (and one reserve) per atom.
* ``memcpy_arrays`` — byte runs become :class:`~repro.mir.ops.CopyRun`,
  atomic arrays become :class:`~repro.mir.ops.PutAtomArray` /
  :class:`~repro.mir.ops.GetAtomArray`.  Off: element loops and per-byte
  copy loops (the naive shape, still expressed as IR ``Loop`` ops).
* ``inline_marshal`` — aggregate code is expanded in place; only
  recursive types produce :class:`~repro.mir.ops.CallOutOfLine`.

Value positions are Python expression strings; renderers either paste
them (source renderer) or compile them once (closure renderer).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import BackEndError
from repro.mint.analysis import is_recursive
from repro.mint.types import MintInteger

from repro.mir import ops as m
from repro.pres import nodes as p

UNROLL_LIMIT = m.UNROLL_LIMIT


class NamePool:
    """Per-function temporary names; numbering starts at 1 so generated
    temps never collide with the reserved header offset ``_o0``."""

    def __init__(self):
        self._counter = 0

    def temp(self, prefix="_t"):
        self._counter += 1
        return "%s%d" % (prefix, self._counter)


class OutOfLineSet:
    """Bookkeeping for out-of-line helper functions.

    Helpers are queued when first referenced and lowered by the program
    builder after the main stubs; recursion terminates because the queue
    records names before bodies are built.
    """

    def __init__(self):
        self.marshal_done = set()
        self.unmarshal_done = set()
        self.pending = []  # (kind, name)

    def request(self, kind, name):
        done = self.marshal_done if kind == "m" else self.unmarshal_done
        if name not in done:
            done.add(name)
            self.pending.append((kind, name))
        return "_%s_%s" % (kind, m.mangle(name))


class _LowerBase:
    """State shared by the marshal and unmarshal lowerers."""

    def __init__(self, wire_format, flags, presc, out_of_line,
                 names=None):
        self.fmt = wire_format
        self.flags = flags
        self.presc = presc
        self.pres_registry = presc.pres_registry
        self.mint_registry = presc.mint_registry
        self.out_of_line = out_of_line
        self.names = names or NamePool()
        self.chunk: List[m.AtomEntry] = []
        self.static_offset: Optional[int] = 0
        self.align_guarantee = 8
        # Alignment the current chunk's base will be given (dynamic case);
        # atoms needing more start a new chunk, keeping chunk layout equal
        # to the true per-atom wire layout.
        self._chunk_base_align = 1
        self.chunks_emitted = 0
        self.atoms_emitted = 0
        # Structured bodies: ops append to the innermost open body.
        self._stack = [[]]

    # -- op plumbing ----------------------------------------------------

    @property
    def ops(self):
        return self._stack[0]

    def add(self, op):
        self._stack[-1].append(op)
        return op

    def push_body(self):
        body = []
        self._stack.append(body)
        return body

    def pop_body(self):
        return self._stack.pop()

    def temp(self, prefix="_t"):
        return self.names.temp(prefix)

    # -- layout state (identical to the former text emitters) -----------

    def _admit_atom(self, codec):
        """Chunk-splitting rule before queueing an atom (dynamic base)."""
        if self.static_offset is not None:
            return
        if not self.chunk:
            self._chunk_base_align = max(
                codec.alignment, self.align_guarantee
            )
        elif codec.alignment > self._chunk_base_align:
            self.flush()
            self._chunk_base_align = max(
                codec.alignment, self.align_guarantee
            )

    def reset(self, static_offset=0):
        """Start a new message at a known absolute offset."""
        self.chunk = []
        self.static_offset = static_offset
        self.align_guarantee = 8

    def enter_unknown(self):
        """Enter a region of unknown offset (loop body, branch join)."""
        self.static_offset = None
        self.align_guarantee = self.fmt.universal_alignment

    def _advance(self, size):
        """Track offset knowledge across *size* emitted bytes."""
        if self.static_offset is not None:
            self.static_offset += size
        else:
            self.align_guarantee = m.largest_pow2_divisor(
                size, self.align_guarantee
            )

    def _layout(self, entries, start):
        return layout_entries(entries, start)

    def resolve(self, pres):
        if isinstance(pres, p.PresRef):
            return self.pres_registry[pres.name]
        return pres

    def should_outline(self, pres_ref):
        """Out-of-line marshaling for recursive types, or for every named
        type when the inlining pass is disabled."""
        if not self.flags.inline_marshal:
            return True
        return is_recursive(pres_ref.mint, self.mint_registry)

    def entry(self, codec, count=1, expr="", out_index=0, star=False):
        return m.AtomEntry(
            fmt=codec.format, size=codec.size, align=codec.alignment,
            count=count, star=star, expr=expr, out_index=out_index,
        )

    # -- conversions ----------------------------------------------------

    @staticmethod
    def pack_expr(codec, expr):
        """Wrap *expr* for packing (bool is an int subclass; only chars
        need conversion)."""
        if codec.conversion == "char":
            return "ord(%s)" % expr
        return expr

    @staticmethod
    def unpack_expr(codec, expr):
        if codec.conversion == "char":
            return "chr(%s)" % expr
        if codec.conversion == "bool":
            return "bool(%s)" % expr
        return expr


class MarshalLower(_LowerBase):
    """Lowers marshal code: ops writing into buffer ``b``."""

    #: Set by the Mach typed-message (MIG) back end: array data stages
    #: through a temporary before entering the message (Figure 7's extra
    #: copy pass).
    staged_copies = False

    # ------------------------------------------------------------------
    # Chunk machinery
    # ------------------------------------------------------------------

    def add_atom(self, codec, expr, count=1):
        self._admit_atom(codec)
        self.chunk.append(
            self.entry(codec, count, self.pack_expr(codec, expr))
        )
        if not self.flags.chunk_atoms or not self.flags.batch_buffer_checks:
            self.flush()

    def flush(self):
        if not self.chunk:
            return
        entries, self.chunk = self.chunk, []
        self.chunks_emitted += 1
        self.atoms_emitted += sum(entry.count for entry in entries)
        start = self.static_offset
        if start is not None:
            fmt, total, offsets = self._layout(entries, start)
            plan = m.ReservePlan("plain", self.temp("_o"), total)
        else:
            base_align = self._chunk_base_align
            fmt, total, offsets = self._layout(entries, 0)
            plan = self._reserve_dynamic_base(total, base_align)
        batched = (
            self.flags.chunk_atoms and self.flags.batch_buffer_checks
        )
        self.add(m.PutAtoms(
            endian=self.fmt.endian, fmt=fmt, total=total,
            offsets=tuple(offsets), entries=tuple(entries),
            reserve=plan, batched=batched, start=start,
        ))
        self._advance(total)

    def _reserve_dynamic_base(self, total, base_align):
        """Reserve *total* bytes with the chunk base aligned dynamically."""
        var = self.temp("_o")
        if self.align_guarantee >= base_align:
            return m.ReservePlan("plain", var, total)
        plan = m.ReservePlan(
            "pad_var", var, total, pad_var=self.temp("_p"),
            align=base_align,
        )
        self.align_guarantee = base_align
        return plan

    def _reserve(self, size, align):
        """Reserve *size* bytes aligned to *align*.

        Returns ``(static_pad, plan)``: the statically-known leading
        padding folded into the reservation, and the reserve plan.
        """
        if self.static_offset is not None:
            pad = -self.static_offset % align
            return pad, m.ReservePlan("plain", self.temp("_o"), pad + size)
        if self.align_guarantee >= align:
            return 0, m.ReservePlan("plain", self.temp("_o"), size)
        pad_var = self.temp("_p")
        plan = m.ReservePlan(
            "pad_var", self.temp("_o"), size, pad_var=pad_var, align=align
        )
        # Offset is now aligned; subsequent knowledge is modular only.
        self.align_guarantee = align
        return 0, plan

    def reserve_dynamic(self, size_expr, align):
        """Plan a runtime-sized reservation; *size_expr* must evaluate to
        the exact byte count including any trailing padding."""
        var = self.temp("_o")
        if self.static_offset is not None:
            pad = -self.static_offset % align
            if pad:
                plan = m.ReservePlan("pad_base", var, size_expr, pad=pad)
            else:
                plan = m.ReservePlan("plain", var, size_expr)
            self.static_offset = None
            self.align_guarantee = align
            return plan
        if self.align_guarantee >= align:
            return m.ReservePlan("plain", var, size_expr)
        plan = m.ReservePlan(
            "pad_var", var, size_expr, pad_var=self.temp("_p"), align=align
        )
        self.align_guarantee = align
        return plan

    # ------------------------------------------------------------------
    # PRES dispatch
    # ------------------------------------------------------------------

    def emit(self, pres, expr):
        """Lower marshal ops for *pres* reading the presented value from
        the Python expression *expr*."""
        if isinstance(pres, p.PresVoid):
            return
        if isinstance(pres, p.PresRef):
            self._emit_ref(pres, expr)
        elif isinstance(pres, (p.PresDirect, p.PresEnum)):
            self.add_atom(self.fmt.atom_codec(pres.mint), expr)
        elif isinstance(pres, p.PresString):
            self._emit_string(pres, expr)
        elif isinstance(pres, p.PresBytes):
            self._emit_bytes(pres, expr)
        elif isinstance(pres, p.PresFixedArray):
            self._emit_fixed_array(pres, expr)
        elif isinstance(pres, p.PresCountedArray):
            self._emit_counted_array(pres, expr)
        elif isinstance(pres, p.PresOptPtr):
            self._emit_optional(pres, expr)
        elif isinstance(pres, p.PresStruct):
            self._emit_struct(pres, expr)
        elif isinstance(pres, p.PresUnion):
            self._emit_union(pres, expr)
        elif isinstance(pres, p.PresException):
            self._emit_exception(pres, expr)
        else:
            raise BackEndError(
                "cannot marshal PRES node %r" % type(pres).__name__
            )

    def _emit_ref(self, pres, expr):
        if self.should_outline(pres):
            function = self.out_of_line.request("m", pres.name)
            self.flush()
            self.add(m.CallOutOfLine(
                kind="m", name=pres.name, function=function, arg_expr=expr,
            ))
            self.enter_unknown()
        else:
            self.emit(self.resolve(pres), expr)

    def _emit_struct(self, pres, expr):
        if len(pres.fields) > 1 and not expr.isidentifier():
            # Hoist the base object: the Python analog of the paper's
            # chunk pointer (one base, constant "offsets" = attributes).
            base = self.temp("_s")
            self.add(m.Bind(base, expr))
            expr = base
        for struct_field in pres.fields:
            self.emit(struct_field.pres, "%s.%s" % (expr, struct_field.name))

    def _emit_exception(self, pres, expr):
        if len(pres.fields) > 1 and not expr.isidentifier():
            base = self.temp("_s")
            self.add(m.Bind(base, expr))
            expr = base
        for struct_field in pres.fields:
            self.emit(struct_field.pres, "%s.%s" % (expr, struct_field.name))

    # -- arrays ---------------------------------------------------------

    def _header_entries(self, mint_array, count_expr):
        """Chunk entries encoding the array header (length/descriptor)."""
        header = self.fmt.array_header_size(mint_array)
        if header == 0:
            return []
        u32 = self.fmt.atom_codec(MintInteger(32, False))
        if header == 4:
            return [self.entry(u32, 1, count_expr)]
        if header == 8:
            element = self.mint_registry.resolve(mint_array.element)
            from repro.mint.types import is_atom

            descriptor_atom = (
                element if is_atom(element) else MintInteger(8, False)
            )
            word = self.fmt.descriptor_word(descriptor_atom)
            return [
                self.entry(u32, 1, str(word)),
                self.entry(u32, 1, count_expr),
            ]
        raise BackEndError("unsupported array header size %d" % header)

    def _emit_array_header(self, mint_array, count_expr):
        for entry in self._header_entries(mint_array, count_expr):
            self._admit_atom(_entry_codec(entry))
            self.chunk.append(entry)
            if not self.flags.chunk_atoms or not self.flags.batch_buffer_checks:
                self.flush()

    def _emit_string(self, pres, expr):
        self.flush()
        data = self.temp("_s")
        if pres.carries_length:
            # The length-carrying presentation (paper section 2.2): the
            # application hands over encoded bytes; no count, no encode.
            self.add(m.Bind(data, expr))
        else:
            self.add(m.Bind(data, "%s.encode('latin-1')" % expr))
        if pres.bound is not None:
            self.add(m.BoundsCheck(
                "len(%s) > %d" % (data, pres.bound), "MarshalError",
                "string exceeds bound %d" % pres.bound,
            ))
        n = self.temp("_n")
        nul = 1 if self.fmt.string_nul_terminated else 0
        self.add(m.Bind(n, "len(%s)%s" % (data, " + 1" if nul else "")))
        self._emit_byte_run(pres.mint, data, n, nul=nul)

    def _emit_bytes(self, pres, expr):
        self.flush()
        if pres.fixed_length is not None:
            self.add(m.BoundsCheck(
                "len(%s) != %d" % (expr, pres.fixed_length), "MarshalError",
                "opaque must be exactly %d bytes" % pres.fixed_length,
            ))
            self._emit_byte_run(
                pres.mint, expr, str(pres.fixed_length),
                static_count=pres.fixed_length,
            )
            return
        if pres.bound is not None:
            self.add(m.BoundsCheck(
                "len(%s) > %d" % (expr, pres.bound), "MarshalError",
                "opaque exceeds bound %d" % pres.bound,
            ))
        n = self.temp("_n")
        self.add(m.Bind(n, "len(%s)" % expr))
        self._emit_byte_run(pres.mint, expr, n)

    def _emit_byte_run(self, mint_array, data_expr, n_expr, nul=0,
                       static_count=None):
        """One slice-assignment bulk copy of a byte-grained array —
        the memcpy optimization.  Handles header, data, NUL, padding."""
        if not self.flags.memcpy_arrays:
            self._emit_byte_run_slow(mint_array, data_expr, n_expr, nul)
            return
        if self.staged_copies:
            # MIG typed-message staging: byte data passes through a copy.
            stage = self.temp("_stage")
            self.add(m.Bind(stage, "bytes(%s)" % data_expr))
            data_expr = stage
        header = self.fmt.array_header_size(mint_array)
        pad_to4 = self.fmt.pads_byte_runs(mint_array)
        header_align = self.fmt.array_header_alignment(mint_array)
        header_pack = self._header_pack(mint_array, n_expr)
        if static_count is not None and not nul:
            total = header + static_count
            trail = -static_count % 4 if pad_to4 else 0
            total += trail
            pad0, plan = self._reserve(total, max(header_align, 1))
            self.add(m.CopyRun(
                variant="static", reserve=plan, data_expr=data_expr,
                header=header_pack, position=header, lead_pad=pad0,
                static_count=static_count, n_expr=n_expr,
                pad_to4=pad_to4, trail_pad=trail,
            ))
            self._advance(pad0 + total)
            return
        # Runtime-sized run.
        size_expr = "%d + %s" % (header, n_expr) if header else n_expr
        if pad_to4:
            size_expr = "%s + (-%s %% 4)" % (size_expr, n_expr)
        plan = self.reserve_dynamic(size_expr, max(header_align, 1))
        self.add(m.CopyRun(
            variant="dynamic", reserve=plan, data_expr=data_expr,
            header=header_pack, position=header, n_expr=n_expr,
            end_var=self.temp("_e"), nul=nul, pad_to4=pad_to4,
        ))
        self.static_offset = None
        self.align_guarantee = max(
            4 if pad_to4 else 1, self.fmt.universal_alignment
        )

    def _header_pack(self, mint_array, n_expr):
        """The array header as a ``(fmt, args)`` pack, or None."""
        entries = self._header_entries(mint_array, n_expr)
        if not entries:
            return None
        fmt = self.fmt.endian + "I" * len(entries)
        return fmt, tuple(entry.expr for entry in entries)

    def _emit_byte_run_slow(self, mint_array, data_expr, n_expr, nul):
        """Byte-at-a-time marshaling (memcpy pass disabled).

        Wire layout is identical to the bulk-copy path — one byte per
        element — but each byte performs its own buffer check and store,
        the way naive per-datum marshal functions behave.  The loop is an
        IR ``Loop`` op, not a renderer-private code path.
        """
        self._emit_array_header(mint_array, n_expr)
        self.flush()
        element = self.temp("_c")
        self.push_body()
        offset = self.temp("_o")
        self.add(m.ReserveOne(offset))
        self.add(m.StoreByte(offset, element))
        body = self.pop_body()
        self.add(m.Loop(kind="bytes", body=body, var=element,
                        iterable=data_expr))
        if nul:
            offset = self.temp("_o")
            self.add(m.ReserveOne(offset))
            self.add(m.StoreByte(offset, "0"))
        if self.fmt.pads_byte_runs(mint_array):
            self.add(m.PadToFour(self.temp("_p"), self.temp("_o")))
        self.enter_unknown()

    def _atom_element_codec(self, element_pres):
        """The codec for an atomic element presentation, else None."""
        element = self.resolve(element_pres)
        if isinstance(element, (p.PresDirect, p.PresEnum)):
            return self.fmt.atom_codec(element.mint)
        return None

    def _emit_fixed_array(self, pres, expr):
        self.add(m.BoundsCheck(
            "len(%s) != %d" % (expr, pres.length), "MarshalError",
            "fixed array needs %d elements" % pres.length,
        ))
        codec = self._atom_element_codec(pres.element)
        header = self.fmt.array_header_size(pres.mint)
        if codec is not None and self.flags.memcpy_arrays:
            # Statically-sized atomic array: join the current chunk as one
            # star entry (a single batched pack).
            self._emit_array_header(pres.mint, str(pres.length))
            if codec.conversion == "char":
                expr = "map(ord, %s)" % expr
            self._admit_atom(codec)
            self.chunk.append(
                self.entry(codec, pres.length, expr, star=True)
            )
            if not self.flags.chunk_atoms or not self.flags.batch_buffer_checks:
                self.flush()
            return
        if codec is not None and pres.length <= UNROLL_LIMIT and header == 0:
            for index in range(pres.length):
                self.add_atom(codec, "%s[%d]" % (expr, index))
            return
        self._emit_array_header(pres.mint, str(pres.length))
        self._emit_element_loop(pres.element, expr)

    def _emit_counted_array(self, pres, expr):
        self.flush()
        n = self.temp("_n")
        self.add(m.Bind(n, "len(%s)" % expr))
        if pres.bound is not None:
            self.add(m.BoundsCheck(
                "%s > %d" % (n, pres.bound), "MarshalError",
                "array exceeds bound %d" % pres.bound,
            ))
        codec = self._atom_element_codec(pres.element)
        if codec is not None and self.flags.memcpy_arrays:
            self._emit_batched_array(pres.mint, codec, expr, n)
            return
        self._emit_array_header(pres.mint, n)
        self._emit_element_loop(pres.element, expr)

    def _emit_batched_array(self, mint_array, codec, expr, n_expr):
        """Variable atomic array as one header + one array-wide pack."""
        header = self.fmt.array_header_size(mint_array)
        header_align = self.fmt.array_header_alignment(mint_array)
        if codec.conversion == "char":
            expr = "map(ord, %s)" % expr
        header_pack = self._header_pack(mint_array, n_expr)
        if self.staged_copies:
            # MIG typed-message staging: pack into a staging buffer, then
            # copy it into the message after the header (the extra pass
            # Flick's marshal-buffer management avoids; Figure 7).
            stage = self.temp("_stage")
            size_expr = "%d + %s * %d" % (header, n_expr, codec.size)
            plan = self.reserve_dynamic(size_expr, max(header_align, 1))
            self.add(m.PutAtomArray(
                variant="staged", endian=self.fmt.endian, fmt=codec.format,
                size=codec.size, n_expr=n_expr, data_expr=expr,
                reserve=plan, header=header_pack, position=header,
                stage_var=stage,
            ))
            self.static_offset = None
            self.align_guarantee = self.fmt.universal_alignment
            return
        if codec.alignment <= header_align or header == 0:
            size_expr = "%d + %s * %d" % (header, n_expr, codec.size)
            plan = self.reserve_dynamic(
                size_expr, max(header_align, codec.alignment)
            )
            self.add(m.PutAtomArray(
                variant="joint", endian=self.fmt.endian, fmt=codec.format,
                size=codec.size, n_expr=n_expr, data_expr=expr,
                reserve=plan, header=header_pack, position=header,
            ))
        else:
            # Element alignment exceeds the header's (e.g. CDR doubles):
            # two reservations with dynamic alignment between.
            plan = self.reserve_dynamic(str(header), header_align)
            self.static_offset = None
            self.align_guarantee = header_align
            split = self.reserve_dynamic(
                "%s * %d" % (n_expr, codec.size), codec.alignment
            )
            self.add(m.PutAtomArray(
                variant="split", endian=self.fmt.endian, fmt=codec.format,
                size=codec.size, n_expr=n_expr, data_expr=expr,
                reserve=plan, header=header_pack, position=header,
                split_reserve=split,
            ))
        self.static_offset = None
        self.align_guarantee = max(
            m.largest_pow2_divisor(codec.size, 8),
            self.fmt.universal_alignment,
        )

    def _emit_element_loop(self, element_pres, expr):
        self.flush()
        element = self.temp("_e")
        self.push_body()
        self.enter_unknown()
        self.emit(element_pres, element)
        self.flush()
        body = self.pop_body()
        self.add(m.Loop(kind="elements", body=body, var=element,
                        iterable=expr))
        self.enter_unknown()

    # -- optional / union ------------------------------------------------

    def _emit_optional(self, pres, expr):
        self.flush()
        if not expr.isidentifier():
            temp = self.temp("_v")
            self.add(m.Bind(temp, expr))
            expr = temp
        self.push_body()
        self.enter_unknown()
        self._emit_array_header(pres.mint, "0")
        self.flush()
        absent = self.pop_body()
        self.push_body()
        self.enter_unknown()
        self._emit_array_header(pres.mint, "1")
        self.emit(pres.element, expr)
        self.flush()
        present = self.pop_body()
        self.add(m.Branch(arms=[
            m.BranchArm("%s is None" % expr, absent),
            m.BranchArm(None, present),
        ]))
        self.enter_unknown()

    def _emit_union(self, pres, expr):
        self.flush()
        disc = self.temp("_d")
        payload = self.temp("_u")
        self.add(m.Bind("%s, %s" % (disc, payload), expr))
        codec = self.fmt.atom_codec(pres.mint.discriminator)
        arms = []
        default_arm = None
        for arm in pres.arms:
            if arm.is_default:
                default_arm = arm
                continue
            self.push_body()
            self.enter_unknown()
            self.add_atom(codec, disc)
            self.emit(arm.pres, payload)
            self.flush()
            arms.append(m.BranchArm(
                _labels_condition(disc, arm.labels), self.pop_body()
            ))
        self.push_body()
        self.enter_unknown()
        if default_arm is not None:
            self.add_atom(codec, disc)
            self.emit(default_arm.pres, payload)
            self.flush()
        else:
            self.add(m.Raise(
                error="MarshalError",
                message_expr="'no union arm for discriminator '"
                             " + repr(%s)" % disc,
                literal=False,
            ))
        tail = self.pop_body()
        if arms:
            arms.append(m.BranchArm(None, tail))
        else:
            arms.append(m.BranchArm("True", tail))
        self.add(m.Branch(arms=arms))
        self.enter_unknown()


class UnmarshalLower(_LowerBase):
    """Lowers unmarshal code: ops reading ``d`` at offset ``o``.

    :meth:`emit` returns a Python *expression* for the decoded value; the
    expression is valid once :meth:`flush` has been called.  Aggregates
    compose their field expressions inline, so one chunk decodes a whole
    fixed-layout region with a single ``unpack_from``.
    """

    def __init__(self, wire_format, flags, presc, out_of_line,
                 zero_copy=False, names=None):
        super().__init__(wire_format, flags, presc, out_of_line, names)
        self.zero_copy = zero_copy
        self._tuple_var = None
        self._out_count = 0

    # ------------------------------------------------------------------
    # Chunk machinery
    # ------------------------------------------------------------------

    def read_atom(self, codec, count=1, star=False):
        """Queue an atom read; returns the (post-flush) element expression
        (or tuple-slice expression for starred entries)."""
        starred = star or count > 1
        if not self.flags.chunk_atoms:
            return self._read_atom_now(codec, count, starred)
        self._admit_atom(codec)
        if self._tuple_var is None or not self.chunk:
            self._tuple_var = self.temp("_t")
            self._out_count = 0
        entry = self.entry(codec, count, out_index=self._out_count,
                           star=starred)
        self.chunk.append(entry)
        self._out_count += count
        if starred:
            return "%s[%d:%d]" % (
                self._tuple_var, entry.out_index, entry.out_index + count
            )
        return "%s[%d]" % (self._tuple_var, entry.out_index)

    def _read_atom_now(self, codec, count, starred=False):
        """Unchunked per-atom read (baseline-shaped code)."""
        starred = starred or count > 1
        self._align_for(codec.alignment)
        var = self.temp("_v")
        fmt = (
            "%d%s" % (count, codec.format) if starred else codec.format
        )
        self.add(m.GetAtoms(
            var=var, endian=self.fmt.endian, fmt=fmt,
            total=codec.size * count, entries=(
                self.entry(codec, count, star=starred),
            ),
            single=True, subscript=None if starred else 0,
        ))
        self._advance(codec.size * count)
        return var

    def _align_for(self, align):
        if self.static_offset is not None:
            pad = -self.static_offset % align
            if pad:
                self.add(m.AlignTo(mode="pad", pad=pad))
                self._advance(pad)
            return
        if self.align_guarantee >= align:
            return
        self.add(m.AlignTo(mode="dynamic", align=align))
        self.align_guarantee = align

    def flush(self):
        if not self.chunk:
            self._tuple_var = None
            return
        entries, self.chunk = self.chunk, []
        self.chunks_emitted += 1
        self.atoms_emitted += sum(entry.count for entry in entries)
        tuple_var, self._tuple_var = self._tuple_var, None
        self._out_count = 0
        if self.static_offset is not None:
            fmt, total, _offsets = self._layout(entries, self.static_offset)
        else:
            base_align = self._chunk_base_align
            if self.align_guarantee < base_align:
                self.add(m.AlignTo(mode="dynamic", align=base_align))
                self.align_guarantee = base_align
            fmt, total, _offsets = self._layout(entries, 0)
        self.add(m.GetAtoms(
            var=tuple_var, endian=self.fmt.endian, fmt=fmt, total=total,
            entries=tuple(entries),
        ))
        self._advance(total)

    # ------------------------------------------------------------------
    # PRES dispatch — returns value expressions
    # ------------------------------------------------------------------

    def emit(self, pres):
        if isinstance(pres, p.PresVoid):
            return "None"
        if isinstance(pres, p.PresRef):
            return self._emit_ref(pres)
        if isinstance(pres, (p.PresDirect, p.PresEnum)):
            codec = self.fmt.atom_codec(pres.mint)
            return self.unpack_expr(codec, self.read_atom(codec))
        if isinstance(pres, p.PresString):
            return self._emit_string(pres)
        if isinstance(pres, p.PresBytes):
            return self._emit_bytes(pres)
        if isinstance(pres, p.PresFixedArray):
            return self._emit_fixed_array(pres)
        if isinstance(pres, p.PresCountedArray):
            return self._emit_counted_array(pres)
        if isinstance(pres, p.PresOptPtr):
            return self._emit_optional(pres)
        if isinstance(pres, p.PresStruct):
            return self._emit_struct(pres)
        if isinstance(pres, p.PresUnion):
            return self._emit_union(pres)
        if isinstance(pres, p.PresException):
            return self._emit_exception(pres)
        raise BackEndError(
            "cannot unmarshal PRES node %r" % type(pres).__name__
        )

    def emit_value(self, pres):
        """Like :meth:`emit` but flushed and materialized in a variable."""
        expr = self.emit(pres)
        self.flush()
        if expr.isidentifier() or expr == "None":
            return expr
        var = self.temp("_v")
        self.add(m.Bind(var, expr))
        return var

    def _emit_ref(self, pres):
        if self.should_outline(pres):
            function = self.out_of_line.request("u", pres.name)
            self.flush()
            var = self.temp("_v")
            self.add(m.CallOutOfLine(
                kind="u", name=pres.name, function=function, var=var,
            ))
            self.enter_unknown()
            return var
        return self.emit(self.resolve(pres))

    def _emit_struct(self, pres):
        field_exprs = [
            self.emit(struct_field.pres) for struct_field in pres.fields
        ]
        return "%s(%s)" % (
            m.mangle(pres.record_name), ", ".join(field_exprs)
        )

    def _emit_exception(self, pres):
        field_exprs = [
            self.emit(struct_field.pres) for struct_field in pres.fields
        ]
        return "%s(%s)" % (
            m.mangle(pres.class_name), ", ".join(field_exprs)
        )

    # -- arrays ----------------------------------------------------------

    def _read_array_header(self, mint_array):
        """Read the length/descriptor header; returns the count expr (a
        realized variable), or None when the format writes no header."""
        header = self.fmt.array_header_size(mint_array)
        if header == 0:
            return None
        self.flush()
        if header == 4:
            self._align_for(self.fmt.array_header_alignment(mint_array))
            var = self.temp("_n")
            self.add(m.GetArrayHeader(
                var=var, endian=self.fmt.endian, fmt="I", index=0,
                advance=4,
            ))
            self._advance(4)
            return var
        if header == 8:
            self._align_for(4)
            var = self.temp("_n")
            self.add(m.GetArrayHeader(
                var=var, endian=self.fmt.endian, fmt="II", index=1,
                advance=8,
            ))
            self._advance(8)
            return var
        raise BackEndError("unsupported array header size %d" % header)

    def _check_remaining(self, size_expr):
        self.add(m.CheckRemaining(str(size_expr)))

    def _emit_string(self, pres):
        self.flush()
        count = self._read_array_header(pres.mint)
        if count is None:
            raise BackEndError("string without a length header")
        nul = 1 if self.fmt.string_nul_terminated else 0
        if pres.bound is not None:
            self.add(m.BoundsCheck(
                "%s > %d" % (count, pres.bound + nul), "UnmarshalError",
                "string exceeds bound %d" % pres.bound,
            ))
        self._check_remaining(count)
        var = self.temp("_v")
        if pres.carries_length:
            mode = "raw"
        elif not self.flags.memcpy_arrays:
            # Character-at-a-time decode (memcpy ablation).
            mode = "slow"
        else:
            mode = "decode"
        self.add(m.GetRun(
            var=var, kind="string", count_expr=count, nul=nul, mode=mode,
            pad_to4=self.fmt.pads_byte_runs(pres.mint),
        ))
        self.static_offset = None
        self.align_guarantee = self.fmt.universal_alignment
        return var

    def _emit_bytes(self, pres):
        self.flush()
        count = self._read_array_header(pres.mint)
        if pres.fixed_length is not None:
            if count is not None:
                self.add(m.BoundsCheck(
                    "%s != %d" % (count, pres.fixed_length),
                    "UnmarshalError", "fixed opaque length mismatch",
                ))
            count = str(pres.fixed_length)
        elif count is None:
            raise BackEndError("variable opaque without a length header")
        elif pres.bound is not None:
            self.add(m.BoundsCheck(
                "%s > %d" % (count, pres.bound), "UnmarshalError",
                "opaque exceeds bound %d" % pres.bound,
            ))
        self._check_remaining(count)
        var = self.temp("_v")
        self.add(m.GetRun(
            var=var, kind="bytes", count_expr=count,
            mode="view" if self.zero_copy else "copy",
            pad_to4=self.fmt.pads_byte_runs(pres.mint),
        ))
        self.static_offset = None
        self.align_guarantee = self.fmt.universal_alignment
        return var

    def _atom_element_codec(self, element_pres):
        element = self.resolve(element_pres)
        if isinstance(element, (p.PresDirect, p.PresEnum)):
            return self.fmt.atom_codec(element.mint), element
        return None, element

    def _emit_fixed_array(self, pres):
        codec, _element = self._atom_element_codec(pres.element)
        count = self._read_array_header(pres.mint)
        if count is not None:
            self.add(m.BoundsCheck(
                "%s != %d" % (count, pres.length), "UnmarshalError",
                "fixed array length mismatch",
            ))
        if codec is not None and self.flags.memcpy_arrays:
            slice_expr = self.read_atom(codec, count=pres.length, star=True)
            return self._convert_atom_slice(codec, slice_expr)
        if codec is not None and pres.length <= UNROLL_LIMIT and count is None:
            elements = [
                self.unpack_expr(codec, self.read_atom(codec))
                for _ in range(pres.length)
            ]
            return "[%s]" % ", ".join(elements)
        return self._emit_element_loop(pres.element, str(pres.length))

    def _convert_atom_slice(self, codec, slice_expr):
        if codec.conversion == "char":
            return "[chr(_c) for _c in %s]" % slice_expr
        if codec.conversion == "bool":
            return "[bool(_c) for _c in %s]" % slice_expr
        return "list(%s)" % slice_expr

    def _emit_counted_array(self, pres):
        count = self._read_array_header(pres.mint)
        if count is None:
            raise BackEndError("counted array without a length header")
        if pres.bound is not None:
            self.add(m.BoundsCheck(
                "%s > %d" % (count, pres.bound), "UnmarshalError",
                "array exceeds bound %d" % pres.bound,
            ))
        codec, _element = self._atom_element_codec(pres.element)
        if codec is not None and self.flags.memcpy_arrays:
            self._align_for(codec.alignment)
            self._check_remaining("%s * %d" % (count, codec.size))
            var = self.temp("_v")
            self.add(m.GetAtomArray(
                var=var, endian=self.fmt.endian, fmt=codec.format,
                size=codec.size, count_expr=count,
                conversion=codec.conversion or "int",
            ))
            self.static_offset = None
            self.align_guarantee = max(
                m.largest_pow2_divisor(codec.size, 8),
                self.fmt.universal_alignment,
            )
            return var
        # Every element consumes at least one byte, so a declared count
        # beyond the remaining bytes can never decode: reject it before
        # looping (a forged count would otherwise spin building millions
        # of elements out of nothing before failing).
        self._check_remaining(count)
        return self._emit_element_loop(pres.element, count)

    def _emit_element_loop(self, element_pres, count_expr):
        self.flush()
        var = self.temp("_v")
        self.add(m.Bind(var, "[]"))
        append = self.temp("_a")
        self.add(m.Bind(append, "%s.append" % var))
        self.push_body()
        self.enter_unknown()
        element_expr = self.emit(element_pres)
        self.flush()
        self.add(m.ExprStmt("%s(%s)" % (append, element_expr)))
        body = self.pop_body()
        self.add(m.Loop(kind="range", body=body, count_expr=count_expr))
        self.enter_unknown()
        return var

    # -- optional / union -------------------------------------------------

    def _emit_optional(self, pres):
        count = self._read_array_header(pres.mint)
        if count is None:
            raise BackEndError("optional data without a header")
        var = self.temp("_v")
        self.push_body()
        self.add(m.Bind(var, "None"))
        absent = self.pop_body()
        self.push_body()
        self.enter_unknown()
        element_expr = self.emit(pres.element)
        self.flush()
        self.add(m.Bind(var, element_expr))
        present = self.pop_body()
        self.push_body()
        self.add(m.Raise(error="UnmarshalError",
                         message_expr="bad optional count"))
        bad = self.pop_body()
        self.add(m.Branch(arms=[
            m.BranchArm("%s == 0" % count, absent),
            m.BranchArm("%s == 1" % count, present),
            m.BranchArm(None, bad),
        ]))
        self.enter_unknown()
        return var

    def _emit_union(self, pres):
        self.flush()
        codec = self.fmt.atom_codec(pres.mint.discriminator)
        disc = self.unpack_expr(codec, self.read_atom(codec))
        self.flush()
        disc_var = self.temp("_d")
        self.add(m.Bind(disc_var, disc))
        var = self.temp("_v")
        arms = []
        default_arm = None
        for arm in pres.arms:
            if arm.is_default:
                default_arm = arm
                continue
            self.push_body()
            self.enter_unknown()
            payload = self.emit(arm.pres)
            self.flush()
            self.add(m.Bind(var, "(%s, %s)" % (disc_var, payload)))
            arms.append(m.BranchArm(
                _labels_condition(disc_var, arm.labels), self.pop_body()
            ))
        self.push_body()
        self.enter_unknown()
        if default_arm is not None:
            payload = self.emit(default_arm.pres)
            self.flush()
            self.add(m.Bind(var, "(%s, %s)" % (disc_var, payload)))
        else:
            self.add(m.Raise(
                error="UnmarshalError",
                message_expr="'no union arm for discriminator '"
                             " + repr(%s)" % disc_var,
                literal=False,
            ))
        tail = self.pop_body()
        if arms:
            arms.append(m.BranchArm(None, tail))
        else:
            arms.append(m.BranchArm("True", tail))
        self.add(m.Branch(arms=arms))
        self.enter_unknown()
        return var


def layout_entries(entries, start):
    """Lay out a chunk beginning at absolute offset *start*.

    Pads are computed against the true wire positions, so chunked and
    unchunked code produce byte-identical messages.  Returns
    ``(fmt, total, offsets)``, offsets relative to the chunk base.
    """
    parts = []
    offset = start
    offsets = []
    for entry in entries:
        pad = -offset % entry.align
        if pad:
            parts.append("%dx" % pad)
        offset += pad
        offsets.append(offset - start)
        if entry.star or entry.count > 1:
            parts.append("%d%s" % (entry.count, entry.fmt))
        else:
            parts.append(entry.fmt)
        offset += entry.size * entry.count
    return "".join(parts), offset - start, offsets


def _labels_condition(disc, labels):
    if len(labels) == 1:
        return "%s == %r" % (disc, labels[0])
    return "%s in %r" % (disc, tuple(labels))


def _entry_codec(entry):
    """A codec-like view of an AtomEntry (for chunk admission)."""
    return _CodecView(entry.fmt, entry.size, entry.align)


class _CodecView:
    __slots__ = ("format", "size", "alignment")

    def __init__(self, fmt, size, alignment):
        self.format = fmt
        self.size = size
        self.alignment = alignment
