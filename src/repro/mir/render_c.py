"""The C renderer.

C stubs are rendered from the typed presentation level by
:mod:`repro.backend.cemit`, which runs its own C-specific chunker over
the same pass configuration (OptFlags) the MIR pipeline consumes — C
needs struct declarations, storage classes, and expression syntax that
the Python-oriented op expressions do not carry.  This module is the
renderer facade the back end calls, so all three renderers hang off the
same layer; see INTERNALS section 10 for the contract.
"""

from __future__ import annotations


def render_c(backend, presc, flags):
    """Return ``(c_source, c_header)`` for *presc* under *flags*."""
    from repro.backend.cemit import emit_c_stubs

    return emit_c_stubs(backend, presc, flags)
