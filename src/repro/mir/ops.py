"""MIR: the explicit marshal intermediate representation.

This module defines the typed op vocabulary shared by every renderer.
A stub's marshal/unmarshal behaviour is described twice:

* as **naive type IR** (:class:`TypeNode` trees built by
  :mod:`repro.mir.build` from one PRES_C walk) — a flag-independent,
  direction-neutral description of what travels on the wire, and
* as **lowered op sequences** (:class:`MirFunction` bodies produced by
  the pass pipeline in :mod:`repro.mir.passes`) — straight-line typed
  ops with struct formats and constant offsets already decided, which
  the Python-source renderer, the closure renderer, and the C renderer
  consume without re-running any optimization logic.

Value positions in lowered ops are Python expression strings whose free
names are the function's parameters plus variables bound by earlier ops
(the renderer contract, INTERNALS section 10).  The closure renderer
compiles these expressions once per op; the source renderer pastes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

#: Inline fixed arrays of atoms up to this many elements when chunking
#: without the batched-copy optimization; longer ones loop.
UNROLL_LIMIT = 16


def largest_pow2_divisor(value, limit):
    """The largest power of two <= limit dividing value (for alignment)."""
    align = limit
    while align > 1 and value % align:
        align //= 2
    return max(align, 1)


def mangle(name):
    return name.replace("::", "__").replace(" ", "_")


# ----------------------------------------------------------------------
# Naive type IR (direction-neutral; built once from PRES_C)
# ----------------------------------------------------------------------


@dataclass
class TypeNode:
    """Base class for naive marshal-IR type nodes."""

    #: The PRES node this was built from (renderers that need
    #: presentation detail — the C renderer — reach through this).
    pres: object = field(default=None, repr=False)


@dataclass
class TVoid(TypeNode):
    pass


@dataclass
class TAtom(TypeNode):
    codec: object = None          # AtomCodec
    mint: object = None


@dataclass
class TString(TypeNode):
    mint: object = None           # the MINT array
    bound: Optional[int] = None
    carries_length: bool = False


@dataclass
class TBytes(TypeNode):
    mint: object = None
    bound: Optional[int] = None
    fixed_length: Optional[int] = None


@dataclass
class TFixedArray(TypeNode):
    mint: object = None
    length: int = 0
    element: TypeNode = None
    element_codec: object = None  # AtomCodec when the element is atomic


@dataclass
class TCountedArray(TypeNode):
    mint: object = None
    bound: Optional[int] = None
    element: TypeNode = None
    element_codec: object = None


@dataclass
class TOptional(TypeNode):
    mint: object = None
    element: TypeNode = None


@dataclass
class TStructField:
    name: str
    node: TypeNode


@dataclass
class TStruct(TypeNode):
    record_name: str = ""
    fields: List[TStructField] = field(default_factory=list)


@dataclass
class TException(TypeNode):
    class_name: str = ""
    fields: List[TStructField] = field(default_factory=list)


@dataclass
class TUnionArm:
    labels: Tuple[int, ...]
    is_default: bool
    node: TypeNode


@dataclass
class TUnion(TypeNode):
    disc_codec: object = None
    arms: List[TUnionArm] = field(default_factory=list)


@dataclass
class TRef(TypeNode):
    """A named type reference; ``recursive`` marks cycle participants."""

    name: str = ""
    recursive: bool = False


@dataclass
class ListShape:
    """A helper type shaped like the classic tail-recursive list
    (a struct whose last field optionally points back to itself) —
    annotated by the ``iterative_lists`` pass."""

    struct: TStruct
    tail_name: str
    tail: TOptional


@dataclass
class TypeChannel:
    """One marshaled value stream: an ordered list of (name, node)."""

    items: List[Tuple[str, TypeNode]] = field(default_factory=list)


@dataclass
class NaiveProgram:
    """The naive marshal IR for one interface: per-operation channels
    plus the registry of named helper types, built from one PRES_C
    walk (:func:`repro.mir.build.build_naive`)."""

    interface_name: str
    wire_name: str
    #: op name -> {"request": TypeChannel, "reply_arms": [...]}.
    operations: Dict[str, dict] = field(default_factory=dict)
    #: named type -> TypeNode (resolved, cycle-safe via TRef).
    types: Dict[str, TypeNode] = field(default_factory=dict)
    #: named type -> ListShape (set by the iterative_lists pass).
    list_shapes: Dict[str, ListShape] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Lowered ops
# ----------------------------------------------------------------------


@dataclass
class Op:
    """Base class for lowered MIR ops."""


@dataclass
class ReservePlan:
    """How a marshal op acquires buffer space.

    kind:
      ``plain``    — ``var = b.reserve(size)``
      ``pad_base`` — statically known leading pad before a runtime-sized
                     region: ``var = b.reserve(P + (size)) + P`` plus a
                     zero fill of the pad bytes
      ``pad_var``  — dynamically aligned base: compute the pad at run
                     time, reserve pad+size, zero the pad
    """

    kind: str
    var: str
    size: object                  # int or expression string
    pad: int = 0                  # pad_base
    pad_var: Optional[str] = None  # pad_var
    align: int = 0                # pad_var


@dataclass
class AtomEntry:
    """One member of a chunk (a PutAtoms/GetAtoms op)."""

    fmt: str                      # struct format character
    size: int
    align: int
    count: int = 1
    star: bool = False
    expr: str = ""                # marshal: pack-ready value expression
    out_index: int = 0            # unmarshal: index into the tuple


@dataclass
class PutHeader(Op):
    """Copy a constant header template and apply field patches."""

    const: str                    # module-level constant name
    template: bytes = b""
    patches: Tuple[Tuple[int, str, str], ...] = ()


@dataclass
class HeaderPatch(Op):
    """Post-body size patch: write ``b.length - delta`` at offset."""

    offset: int
    fmt: str
    delta: int


@dataclass
class PutAtoms(Op):
    """One marshal chunk: a single reserve guarding one or more atoms
    packed at constant offsets from the chunk base (section 3.2)."""

    endian: str
    fmt: str                      # multi-field body format (with x pads)
    total: int
    offsets: Tuple[int, ...]
    entries: Tuple[AtomEntry, ...]
    reserve: ReservePlan
    batched: bool                 # one multi-field pack vs per-atom packs
    #: Absolute message offset of the chunk when statically known — the
    #: header-constant folding pass uses it to re-lay-out entries.
    start: Optional[int] = None


@dataclass
class GetAtoms(Op):
    """One unmarshal chunk: a single ``unpack_from`` into a tuple."""

    var: str
    endian: str
    fmt: str
    total: int
    entries: Tuple[AtomEntry, ...]
    single: bool = False          # per-atom read (chunking disabled)
    subscript: Optional[int] = None  # [0] for non-starred single reads


@dataclass
class GetArrayHeader(Op):
    """Read an array length/descriptor header into ``var``."""

    var: str
    endian: str
    fmt: str                      # "I" or "II"
    index: int                    # which unpacked word is the count
    advance: int                  # 4 or 8


@dataclass
class AlignTo(Op):
    """Advance the unmarshal offset to an alignment boundary.

    mode ``pad``: statically known pad → ``o += pad``
    mode ``dynamic``: ``o += -o % align``
    """

    mode: str
    pad: int = 0
    align: int = 0


@dataclass
class CopyRun(Op):
    """A byte-grained bulk copy (string/opaque), marshal direction.

    variant ``static``: compile-time byte count; one reserve covers
    header + data + trailing pad, all offsets constant.
    variant ``dynamic``: runtime byte count; one runtime-sized reserve.
    """

    variant: str
    reserve: ReservePlan
    data_expr: str
    header: Optional[Tuple[str, Tuple[str, ...]]] = None  # (fmt, args)
    position: int = 0             # data offset past the header
    lead_pad: int = 0             # static variant: pad before the header
    static_count: Optional[int] = None
    n_expr: str = ""
    end_var: str = ""             # dynamic variant
    nul: int = 0
    pad_to4: bool = False
    trail_pad: int = 0            # static variant trailing pad


@dataclass
class PutAtomArray(Op):
    """A counted atomic array as one header plus one array-wide pack.

    variant ``joint``: header and elements in one reservation.
    variant ``split``: element alignment exceeds the header's; two
    reservations with dynamic alignment between (e.g. CDR doubles).
    variant ``staged``: MIG typed-message staging — pack into a staging
    bytearray, then copy it after the header (one extra pass).
    """

    variant: str
    endian: str
    fmt: str                      # element format character
    size: int                     # element size
    n_expr: str
    data_expr: str
    reserve: ReservePlan
    header: Optional[Tuple[str, Tuple[str, ...]]] = None
    position: int = 0
    split_reserve: Optional[ReservePlan] = None
    stage_var: str = ""


@dataclass
class GetAtomArray(Op):
    """Counted atomic array decode: one array-wide unpack + convert."""

    var: str
    endian: str
    fmt: str
    size: int
    count_expr: str
    conversion: str = "int"       # int | float | bool | char


@dataclass
class GetRun(Op):
    """String/opaque decode from the receive buffer."""

    var: str
    kind: str                     # string | bytes
    count_expr: str
    nul: int = 0
    mode: str = "decode"          # decode | raw | slow | view | copy
    pad_to4: bool = False


@dataclass
class CheckRemaining(Op):
    """Reject a count that exceeds the remaining receive bytes."""

    size_expr: str


@dataclass
class ReserveOne(Op):
    """``var = b.reserve(1)`` — the naive per-byte free-space check
    (memcpy/check-hoisting passes disabled)."""

    var: str


@dataclass
class StoreByte(Op):
    """``b.data[offset_var] = value`` — one byte store."""

    offset_var: str
    value_expr: str


@dataclass
class PadToFour(Op):
    """Marshal-side dynamic pad to a 4-byte boundary (slow byte runs)."""

    pad_var: str
    offset_var: str


@dataclass
class ReplyErrorTail(Op):
    """Marker for the protocol-specific unknown-reply-status tail of
    ``_u_rep_*``; renderers expand it via the back end's
    ``reply_error_tail_ops`` hook result stored in ``ops``."""

    ops: List["Op"] = field(default_factory=list)


@dataclass
class BoundsCheck(Op):
    """``if cond: raise Error('message')`` — bound/length validation."""

    cond: str
    error: str                    # MarshalError | UnmarshalError
    message: str


@dataclass
class Bind(Op):
    """``var = expr``."""

    var: str
    expr: str


@dataclass
class ExprStmt(Op):
    """Evaluate an expression for effect (e.g. a list append)."""

    expr: str


@dataclass
class CallOutOfLine(Op):
    """Call an out-of-line helper: marshal ``_m_X(b, expr)`` or
    unmarshal ``var, o = _u_X(d, o)``."""

    kind: str                     # m | u
    name: str                     # helper type name (unmangled)
    function: str                 # rendered function name
    arg_expr: str = ""            # marshal value
    var: str = ""                 # unmarshal result variable


@dataclass
class Loop(Op):
    """``for var in iterable: body`` (kinds: elements, bytes) or
    ``for _ in range(count): body`` (kind: range)."""

    kind: str
    body: List[Op]
    var: str = ""
    iterable: str = ""
    count_expr: str = ""


@dataclass
class ListLoop(Op):
    """The iterative-list form (paper footnote 5): a while-loop over a
    tail-recursive list, wire-identical to the recursive helper."""

    kind: str                     # m | u
    record: str = ""              # mangled record constructor (u)
    tail_name: str = ""
    node_ops: List[Op] = field(default_factory=list)   # leading fields
    flag_ops: List[Op] = field(default_factory=list)   # presence word
    stop_ops: List[Op] = field(default_factory=list)   # tail==None arm
    next_ops: List[Op] = field(default_factory=list)   # tail!=None arm
    field_exprs: Tuple[str, ...] = ()                  # u: node fields
    flag_var: str = ""                                 # u: presence var
    head_ops: List[Op] = field(default_factory=list)   # u: first node
    head_exprs: Tuple[str, ...] = ()


@dataclass
class BranchArm:
    cond: Optional[str]           # None renders as else
    body: List[Op]


@dataclass
class Branch(Op):
    """if/elif/else over op bodies (optionals, unions, reply arms)."""

    arms: List[BranchArm]


@dataclass
class Raise(Op):
    """``raise Error(message)`` or ``raise expr``."""

    error: str = ""               # error class; empty → raise value_expr
    message_expr: str = ""        # expression producing the message
    literal: bool = True          # message_expr is a plain string literal
    value_expr: str = ""


@dataclass
class CheckEnd(Op):
    """``_chk_end(d, o)`` — reject trailing reply bytes."""


@dataclass
class Return(Op):
    """Function return.

    kind ``args``:   ``return (e0, e1,), o``   (request unmarshal)
    kind ``value``:  ``return expr, o``        (unmarshal helper)
    kind ``plain``:  ``return expr``           (reply success)
    kind ``bare``:   ``return``                (iterative marshal)
    """

    kind: str
    exprs: Tuple[str, ...] = ()


@dataclass
class MirFunction:
    """One lowered codec function."""

    name: str
    kind: str                     # m_req | u_req | m_rep_ok | m_rep_exc
                                  # | u_rep | m_helper | u_helper
    params: Tuple[str, ...]
    ops: List[Op]
    #: Extra module-level constants this function needs
    #: (name -> bytes), e.g. folded header templates.
    consts: Dict[str, bytes] = field(default_factory=dict)
    #: Chunks flushed while lowering (request marshal feeds metadata).
    chunks: int = 0
    atoms: int = 0
    #: The operation this belongs to, and the helper type name if any.
    operation: str = ""
    type_name: str = ""


@dataclass
class MirProgram:
    """Lowered program: codec functions in module emission order."""

    interface_name: str
    wire_name: str
    functions: List[MirFunction] = field(default_factory=list)
    #: Helper alias map from the out-of-line dedup pass:
    #: dropped function name -> surviving function name.
    aliases: Dict[str, str] = field(default_factory=dict)
    #: Pass pipeline report: pass name -> enabled?
    passes: Dict[str, bool] = field(default_factory=dict)

    def function(self, name):
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)


def walk_ops(ops):
    """Yield every op in *ops*, descending into structured bodies."""
    for op in ops:
        yield op
        if isinstance(op, Loop):
            for inner in walk_ops(op.body):
                yield inner
        elif isinstance(op, Branch):
            for arm in op.arms:
                for inner in walk_ops(arm.body):
                    yield inner
        elif isinstance(op, ListLoop):
            for body in (op.node_ops, op.flag_ops, op.stop_ops,
                         op.next_ops, op.head_ops):
                for inner in walk_ops(body):
                    yield inner
        elif isinstance(op, ReplyErrorTail):
            for inner in walk_ops(op.ops):
                yield inner


def rewrite_calls(ops, aliases):
    """Rewrite CallOutOfLine targets through the *aliases* map."""
    for op in walk_ops(ops):
        if isinstance(op, CallOutOfLine) and op.function in aliases:
            op.function = aliases[op.function]


__all__ = [name for name in dir() if not name.startswith("_")]
