"""Recursive-descent parser for the ONC RPC IDL (XDR language + rpcgen).

Follows the RFC 1831/1832 grammar with rpcgen's extensions: ``program``
definitions, ``%`` pass-through lines (discarded), multi-argument procedures
(rpcgen ``-N`` style), and ``struct foo`` type references.
"""

from __future__ import annotations

from repro.errors import IdlSyntaxError
from repro.idl.lexer import Lexer, LexerSpec, TokenKind
from repro.idl.source import SourceFile
from repro.oncrpc import ast
from repro.oncrpc.ast import Decoration

ONCRPC_KEYWORDS = frozenset(
    """
    bool case const default double enum float hyper int opaque program
    quadruple string struct switch typedef union unsigned version void
    char short TRUE FALSE
    """.split()
)

_SPEC = LexerSpec(keywords=ONCRPC_KEYWORDS, allow_hash_comments=True)


def parse_oncrpc_idl(text, name="<oncrpc-idl>"):
    """Parse *text* and return an :class:`ast.XdrSpecification`."""
    # rpcgen's '%' pass-through lines are a lexical oddity; strip them
    # before tokenizing, preserving line numbers.
    lines = []
    for line in text.split("\n"):
        lines.append("" if line.lstrip().startswith("%") else line)
    return _Parser("\n".join(lines), name).parse_specification()


class _Parser:
    def __init__(self, text, name):
        self.lexer = Lexer(SourceFile(text, name), _SPEC)

    # ------------------------------------------------------------------

    def parse_specification(self):
        definitions = []
        while not self.lexer.at_end():
            definitions.append(self.parse_definition())
        return ast.XdrSpecification(tuple(definitions))

    def parse_definition(self):
        token = self.lexer.peek()
        if token.is_keyword("const"):
            return self.parse_const()
        if token.is_keyword("typedef"):
            return self.parse_typedef()
        if token.is_keyword("enum"):
            definition = self.parse_enum_def(require_name=True)
            self.lexer.expect_punct(";")
            return ast.XdrTypedef(
                ast.XdrDeclaration(definition, definition.name),
                token.location,
            )
        if token.is_keyword("struct"):
            definition = self.parse_struct_def(require_name=True)
            self.lexer.expect_punct(";")
            return ast.XdrTypedef(
                ast.XdrDeclaration(definition, definition.name),
                token.location,
            )
        if token.is_keyword("union"):
            definition = self.parse_union_def(require_name=True)
            self.lexer.expect_punct(";")
            return ast.XdrTypedef(
                ast.XdrDeclaration(definition, definition.name),
                token.location,
            )
        if token.is_keyword("program"):
            return self.parse_program()
        raise IdlSyntaxError(
            "expected a definition, found %s" % token, token.location
        )

    def parse_const(self):
        location = self.lexer.expect_keyword("const").location
        name = self.lexer.expect_ident().text
        self.lexer.expect_punct("=")
        value = self.parse_value()
        self.lexer.expect_punct(";")
        return ast.XdrConst(name, value, location)

    def parse_typedef(self):
        location = self.lexer.expect_keyword("typedef").location
        declaration = self.parse_declaration()
        self.lexer.expect_punct(";")
        if declaration.name is None:
            raise IdlSyntaxError("typedef requires a name", location)
        return ast.XdrTypedef(declaration, location)

    # ------------------------------------------------------------------
    # Values
    # ------------------------------------------------------------------

    def parse_value(self):
        token = self.lexer.peek()
        if token.kind is TokenKind.INT:
            self.lexer.next()
            return ast.XdrValue.of(token.value)
        if token.is_punct("-"):
            self.lexer.next()
            number = self.lexer.expect_int()
            return ast.XdrValue.of(-number.value)
        if token.is_keyword("TRUE"):
            self.lexer.next()
            return ast.XdrValue.of(True)
        if token.is_keyword("FALSE"):
            self.lexer.next()
            return ast.XdrValue.of(False)
        if token.kind is TokenKind.IDENT:
            self.lexer.next()
            return ast.XdrValue.ref(token.text)
        raise IdlSyntaxError(
            "expected a constant, found %s" % token, token.location
        )

    # ------------------------------------------------------------------
    # Type specifiers
    # ------------------------------------------------------------------

    def parse_type_specifier(self):
        token = self.lexer.peek()
        if token.is_keyword("unsigned"):
            self.lexer.next()
            inner = self.lexer.peek()
            for kind in ("int", "hyper", "char", "short"):
                if inner.is_keyword(kind):
                    self.lexer.next()
                    return ast.XdrPrimitive("unsigned " + kind)
            # bare `unsigned` means `unsigned int` in rpcgen
            return ast.XdrPrimitive("unsigned int")
        for kind in ("int", "hyper", "float", "double", "bool", "void",
                     "char", "short"):
            if token.is_keyword(kind):
                self.lexer.next()
                return ast.XdrPrimitive(kind)
        if token.is_keyword("quadruple"):
            raise IdlSyntaxError(
                "quadruple precision is not supported", token.location
            )
        if token.is_keyword("enum"):
            return self.parse_enum_def(require_name=False)
        if token.is_keyword("struct"):
            # `struct foo` may be a reference or an inline definition.
            if (
                self.lexer.peek(1).kind is TokenKind.IDENT
                and not self.lexer.peek(2).is_punct("{")
            ):
                self.lexer.next()
                return ast.XdrNamed(self.lexer.expect_ident().text)
            return self.parse_struct_def(require_name=False)
        if token.is_keyword("union"):
            return self.parse_union_def(require_name=False)
        if token.kind is TokenKind.IDENT:
            self.lexer.next()
            return ast.XdrNamed(token.text)
        raise IdlSyntaxError(
            "expected a type specifier, found %s" % token, token.location
        )

    def parse_enum_def(self, require_name):
        self.lexer.expect_keyword("enum")
        name = None
        if self.lexer.peek().kind is TokenKind.IDENT:
            name = self.lexer.expect_ident().text
        elif require_name:
            token = self.lexer.peek()
            raise IdlSyntaxError("enum requires a name", token.location)
        self.lexer.expect_punct("{")
        members = []
        while True:
            member = self.lexer.expect_ident().text
            value = None
            if self.lexer.accept_punct("="):
                value = self.parse_value()
            members.append((member, value))
            if not self.lexer.accept_punct(","):
                break
        self.lexer.expect_punct("}")
        return ast.XdrEnumDef(name, tuple(members))

    def parse_struct_def(self, require_name):
        self.lexer.expect_keyword("struct")
        name = None
        if self.lexer.peek().kind is TokenKind.IDENT:
            name = self.lexer.expect_ident().text
        elif require_name:
            token = self.lexer.peek()
            raise IdlSyntaxError("struct requires a name", token.location)
        self.lexer.expect_punct("{")
        members = []
        while not self.lexer.peek().is_punct("}"):
            declaration = self.parse_declaration()
            self.lexer.expect_punct(";")
            if not declaration.is_void:
                members.append(declaration)
        self.lexer.expect_punct("}")
        return ast.XdrStructDef(name, tuple(members))

    def parse_union_def(self, require_name):
        self.lexer.expect_keyword("union")
        name = None
        if self.lexer.peek().kind is TokenKind.IDENT:
            name = self.lexer.expect_ident().text
        elif require_name:
            token = self.lexer.peek()
            raise IdlSyntaxError("union requires a name", token.location)
        self.lexer.expect_keyword("switch")
        self.lexer.expect_punct("(")
        discriminator = self.parse_declaration()
        self.lexer.expect_punct(")")
        self.lexer.expect_punct("{")
        cases = []
        default = None
        while not self.lexer.peek().is_punct("}"):
            token = self.lexer.peek()
            if token.is_keyword("case"):
                values = []
                while self.lexer.accept_keyword("case"):
                    values.append(self.parse_value())
                    self.lexer.expect_punct(":")
                declaration = self.parse_declaration()
                self.lexer.expect_punct(";")
                cases.append(ast.XdrUnionCase(tuple(values), declaration))
            elif token.is_keyword("default"):
                self.lexer.next()
                self.lexer.expect_punct(":")
                default = self.parse_declaration()
                self.lexer.expect_punct(";")
            else:
                raise IdlSyntaxError(
                    "expected 'case' or 'default', found %s" % token,
                    token.location,
                )
        self.lexer.expect_punct("}")
        return ast.XdrUnionDef(name, discriminator, tuple(cases), default)

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def parse_declaration(self):
        token = self.lexer.peek()
        if token.is_keyword("void"):
            self.lexer.next()
            return ast.XdrDeclaration(ast.XdrPrimitive("void"), None)
        if token.is_keyword("opaque"):
            self.lexer.next()
            name = self.lexer.expect_ident().text
            if self.lexer.accept_punct("["):
                size = self.parse_value()
                self.lexer.expect_punct("]")
                return ast.XdrDeclaration(
                    ast.XdrPrimitive("unsigned char"), name,
                    Decoration.OPAQUE_FIXED, size,
                )
            self.lexer.expect_punct("<")
            size = None
            if not self.lexer.peek().is_punct(">"):
                size = self.parse_value()
            self.lexer.expect_punct(">")
            return ast.XdrDeclaration(
                ast.XdrPrimitive("unsigned char"), name,
                Decoration.OPAQUE_VAR, size,
            )
        if token.is_keyword("string"):
            self.lexer.next()
            name = self.lexer.expect_ident().text
            self.lexer.expect_punct("<")
            size = None
            if not self.lexer.peek().is_punct(">"):
                size = self.parse_value()
            self.lexer.expect_punct(">")
            return ast.XdrDeclaration(
                ast.XdrPrimitive("char"), name, Decoration.STRING, size
            )
        base = self.parse_type_specifier()
        if self.lexer.accept_punct("*"):
            name = self.lexer.expect_ident().text
            return ast.XdrDeclaration(base, name, Decoration.OPTIONAL)
        if isinstance(base, ast.XdrPrimitive) and base.kind == "void":
            return ast.XdrDeclaration(base, None)
        name = self.lexer.expect_ident().text
        if self.lexer.accept_punct("["):
            size = self.parse_value()
            self.lexer.expect_punct("]")
            return ast.XdrDeclaration(base, name, Decoration.FIXED_ARRAY, size)
        if self.lexer.accept_punct("<"):
            size = None
            if not self.lexer.peek().is_punct(">"):
                size = self.parse_value()
            self.lexer.expect_punct(">")
            return ast.XdrDeclaration(base, name, Decoration.VAR_ARRAY, size)
        return ast.XdrDeclaration(base, name)

    # ------------------------------------------------------------------
    # Programs
    # ------------------------------------------------------------------

    def parse_program(self):
        location = self.lexer.expect_keyword("program").location
        name = self.lexer.expect_ident().text
        self.lexer.expect_punct("{")
        versions = []
        while not self.lexer.peek().is_punct("}"):
            versions.append(self.parse_version())
        self.lexer.expect_punct("}")
        self.lexer.expect_punct("=")
        number = self.lexer.expect_int().value
        self.lexer.expect_punct(";")
        return ast.XdrProgram(name, tuple(versions), number, location)

    def parse_version(self):
        location = self.lexer.expect_keyword("version").location
        name = self.lexer.expect_ident().text
        self.lexer.expect_punct("{")
        procedures = []
        while not self.lexer.peek().is_punct("}"):
            procedures.append(self.parse_procedure())
        self.lexer.expect_punct("}")
        self.lexer.expect_punct("=")
        number = self.lexer.expect_int().value
        self.lexer.expect_punct(";")
        return ast.XdrVersion(name, tuple(procedures), number, location)

    def parse_procedure(self):
        location = self.lexer.peek().location
        result = self.parse_proc_type()
        name = self.lexer.expect_ident().text
        self.lexer.expect_punct("(")
        arguments = []
        if not self.lexer.peek().is_punct(")"):
            argument = self.parse_proc_type()
            if not (
                isinstance(argument, ast.XdrPrimitive)
                and argument.kind == "void"
            ):
                arguments.append(argument)
            while self.lexer.accept_punct(","):
                arguments.append(self.parse_proc_type())
        self.lexer.expect_punct(")")
        self.lexer.expect_punct("=")
        number = self.lexer.expect_int().value
        self.lexer.expect_punct(";")
        return ast.XdrProcedure(
            name, result, tuple(arguments), number, location
        )

    def parse_proc_type(self):
        """Procedure argument/result types; `string` is legal here."""
        token = self.lexer.peek()
        if token.is_keyword("string"):
            self.lexer.next()
            # `string` in a procedure heading means unbounded string.
            return ast.XdrPrimitive("string")
        if token.is_keyword("opaque"):
            raise IdlSyntaxError(
                "opaque is not a legal procedure type; use a typedef",
                token.location,
            )
        return self.parse_type_specifier()
