"""Lower the ONC RPC AST to AOI.

XDR's flat global namespace maps directly onto the AOI root scope.  The
interesting work is decoration expansion (``opaque x<42>`` becomes a bounded
octet sequence; ``foo *next`` becomes :class:`AoiOptional`) and the lowering
of rpcgen ``program``/``version`` blocks into AOI interfaces: each version
becomes one interface named ``Program::Version`` with ``code = (program
number, version number)`` and per-procedure integer request codes, which is
exactly the identification the ONC RPC call header carries (RFC 1831).
"""

from __future__ import annotations

from repro.errors import IdlSemanticError
from repro.aoi import (
    AoiArray,
    AoiBoolean,
    AoiChar,
    AoiConstant,
    AoiEnum,
    AoiFloat,
    AoiInteger,
    AoiInterface,
    AoiNamedRef,
    AoiOctet,
    AoiOperation,
    AoiOptional,
    AoiParameter,
    AoiRoot,
    AoiSequence,
    AoiString,
    AoiStruct,
    AoiStructField,
    AoiUnion,
    AoiUnionCase,
    AoiVoid,
    Direction,
)
from repro.oncrpc import ast
from repro.oncrpc.ast import Decoration

_PRIMITIVES = {
    "int": AoiInteger(32, True),
    "unsigned int": AoiInteger(32, False),
    "hyper": AoiInteger(64, True),
    "unsigned hyper": AoiInteger(64, False),
    "short": AoiInteger(16, True),
    "unsigned short": AoiInteger(16, False),
    "char": AoiChar(),
    "unsigned char": AoiOctet(),
    "float": AoiFloat(32),
    "double": AoiFloat(64),
    "bool": AoiBoolean(),
    "void": AoiVoid(),
    "string": AoiString(None),
}


def oncrpc_to_aoi(specification, name="<oncrpc-idl>"):
    """Lower an :class:`ast.XdrSpecification` to an :class:`AoiRoot`."""
    return _Lowering(name).lower(specification)


class _Lowering:
    def __init__(self, name):
        self.root = AoiRoot(name)
        self.constants = {}
        self._anonymous_counter = 0

    def lower(self, specification):
        for definition in specification.definitions:
            if isinstance(definition, ast.XdrConst):
                value = self.eval_value(definition.value)
                self.constants[definition.name] = value
                self.root.define_constant(
                    AoiConstant(definition.name, AoiInteger(32, True), value)
                )
            elif isinstance(definition, ast.XdrTypedef):
                self.lower_typedef(definition)
            elif isinstance(definition, ast.XdrProgram):
                self.lower_program(definition)
            else:
                raise IdlSemanticError(
                    "unexpected definition %r" % type(definition).__name__
                )
        return self.root

    # ------------------------------------------------------------------

    def eval_value(self, value):
        if value is None:
            return None
        if value.reference is not None:
            if value.reference not in self.constants:
                raise IdlSemanticError(
                    "reference to undefined constant %r" % value.reference
                )
            return self.constants[value.reference]
        return value.literal

    def fresh_name(self, hint):
        self._anonymous_counter += 1
        return "%s_anon_%d" % (hint, self._anonymous_counter)

    # ------------------------------------------------------------------

    def lower_typedef(self, typedef):
        declaration = typedef.declaration
        aoi_type = self.lower_declaration(declaration, declaration.name)
        if declaration.name in self.root.types:
            # Inline struct/union/enum definitions register themselves under
            # their own names; `struct foo {...};` at the top level arrives
            # here as a typedef of foo to itself, which is a no-op.
            if (
                isinstance(aoi_type, AoiNamedRef)
                and aoi_type.name == declaration.name
            ):
                return
            raise IdlSemanticError(
                "redefinition of type %r" % declaration.name
            )
        self.root.define_type(declaration.name, aoi_type)

    def lower_declaration(self, declaration, name_hint):
        """Lower one XDR declaration to the AOI type it declares."""
        base = self.lower_type(declaration.type, name_hint)
        decoration = declaration.decoration
        size = self.eval_value(declaration.size)
        if decoration == Decoration.PLAIN:
            return base
        if decoration == Decoration.FIXED_ARRAY:
            if size is None or size <= 0:
                raise IdlSemanticError(
                    "fixed array %r needs a positive size" % name_hint
                )
            return AoiArray(base, size)
        if decoration == Decoration.VAR_ARRAY:
            return AoiSequence(base, size)
        if decoration == Decoration.OPTIONAL:
            return AoiOptional(base)
        if decoration == Decoration.STRING:
            return AoiString(size)
        if decoration == Decoration.OPAQUE_FIXED:
            return AoiArray(AoiOctet(), size)
        if decoration == Decoration.OPAQUE_VAR:
            return AoiSequence(AoiOctet(), size)
        raise IdlSemanticError("unknown decoration %r" % decoration)

    def lower_type(self, xdr_type, name_hint):
        if isinstance(xdr_type, ast.XdrPrimitive):
            try:
                return _PRIMITIVES[xdr_type.kind]
            except KeyError:
                raise IdlSemanticError(
                    "unsupported primitive %r" % xdr_type.kind
                ) from None
        if isinstance(xdr_type, ast.XdrNamed):
            return AoiNamedRef(xdr_type.name)
        if isinstance(xdr_type, ast.XdrEnumDef):
            return self.lower_enum(xdr_type, name_hint)
        if isinstance(xdr_type, ast.XdrStructDef):
            return self.lower_struct(xdr_type, name_hint)
        if isinstance(xdr_type, ast.XdrUnionDef):
            return self.lower_union(xdr_type, name_hint)
        raise IdlSemanticError(
            "unsupported type %r" % type(xdr_type).__name__
        )

    def lower_enum(self, enum_def, name_hint):
        name = enum_def.name or self.fresh_name(name_hint or "enum")
        members = []
        next_value = 0
        for member_name, member_value in enum_def.members:
            if member_value is not None:
                next_value = self.eval_value(member_value)
            members.append((member_name, next_value))
            self.constants[member_name] = next_value
            next_value += 1
        aoi_enum = AoiEnum(name, tuple(members))
        self.root.define_type(name, aoi_enum)
        return AoiNamedRef(name)

    def lower_struct(self, struct_def, name_hint):
        name = struct_def.name or self.fresh_name(name_hint or "struct")
        fields = tuple(
            AoiStructField(
                member.name,
                self.lower_declaration(member, "%s.%s" % (name, member.name)),
            )
            for member in struct_def.members
        )
        self.root.define_type(name, AoiStruct(name, fields))
        return AoiNamedRef(name)

    def lower_union(self, union_def, name_hint):
        name = union_def.name or self.fresh_name(name_hint or "union")
        discriminator = self.lower_declaration(
            union_def.discriminator, "%s.discriminator" % name
        )
        cases = []
        for case in union_def.cases:
            values = tuple(self.eval_value(value) for value in case.values)
            declaration = case.declaration
            case_type = (
                AoiVoid()
                if declaration.is_void
                else self.lower_declaration(
                    declaration, "%s.%s" % (name, declaration.name)
                )
            )
            cases.append(
                AoiUnionCase(values, declaration.name or "_void", case_type)
            )
        if union_def.default is not None:
            declaration = union_def.default
            case_type = (
                AoiVoid()
                if declaration.is_void
                else self.lower_declaration(
                    declaration, "%s.default" % name
                )
            )
            cases.append(
                AoiUnionCase((), declaration.name or "_default", case_type)
            )
        self.root.define_type(
            name, AoiUnion(name, discriminator, tuple(cases))
        )
        return AoiNamedRef(name)

    # ------------------------------------------------------------------

    def lower_program(self, program):
        for version in program.versions:
            operations = []
            for procedure in version.procedures:
                parameters = tuple(
                    AoiParameter(
                        "arg%d" % index,
                        self.lower_type(argument, procedure.name),
                        Direction.IN,
                    )
                    for index, argument in enumerate(procedure.arguments, 1)
                )
                operations.append(
                    AoiOperation(
                        procedure.name,
                        parameters,
                        self.lower_type(procedure.result, procedure.name),
                        request_code=procedure.number,
                    )
                )
            self.root.add_interface(
                AoiInterface(
                    "%s::%s" % (program.name, version.name),
                    tuple(operations),
                    code=(program.number, version.number),
                )
            )
