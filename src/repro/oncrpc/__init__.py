"""The ONC RPC front end.

Parses the XDR data-description language of RFC 1831/1832 plus rpcgen's
``program``/``version`` RPC extension, and lowers the result to AOI.  This is
the language the paper's Mail example uses:

.. code-block:: c

    program Mail {
        version MailVers {
            void send(string) = 1;
        } = 1;
    } = 0x20000001;
"""

from repro.oncrpc.parser import parse_oncrpc_idl
from repro.oncrpc.to_aoi import oncrpc_to_aoi


def compile_oncrpc_idl(text, name="<oncrpc-idl>"):
    """Parse ONC RPC IDL *text* and return a validated :class:`AoiRoot`.

    .. deprecated::
        Use :func:`repro.api.parse` (front end only) or
        :func:`repro.api.compile` (full pipeline) instead.
    """
    import warnings

    warnings.warn(
        "compile_oncrpc_idl is deprecated; use repro.api.parse(text, "
        "'oncrpc') or repro.api.compile(text, 'oncrpc')",
        DeprecationWarning, stacklevel=2,
    )
    from repro import api

    return api.parse(text, "oncrpc", name=name)


__all__ = ["parse_oncrpc_idl", "oncrpc_to_aoi", "compile_oncrpc_idl"]
