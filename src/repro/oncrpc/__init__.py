"""The ONC RPC front end.

Parses the XDR data-description language of RFC 1831/1832 plus rpcgen's
``program``/``version`` RPC extension, and lowers the result to AOI.  This is
the language the paper's Mail example uses:

.. code-block:: c

    program Mail {
        version MailVers {
            void send(string) = 1;
        } = 1;
    } = 0x20000001;
"""

import re

from repro import frontends
from repro.oncrpc.parser import parse_oncrpc_idl
from repro.oncrpc.to_aoi import oncrpc_to_aoi


def _lower(specification, name):
    from repro.aoi import validate

    return validate(oncrpc_to_aoi(specification, name=name))


frontends.register(frontends.FrontEnd(
    name="oncrpc",
    description="ONC RPC / XDR (RFC 1831/1832 + rpcgen programs)",
    suffixes=(".x",),
    patterns=(
        ("program/version block",
         re.compile(r"\b(?:program|version)\s+\w+\s*\{")),
    ),
    parse=parse_oncrpc_idl,
    lower=_lower,
    priority=20,
    presentation="rpcgen",
    sample=("program Probe { version ProbeV { int poke(int) = 1; }"
            " = 1; } = 0x20009999;\n"),
))

compile_oncrpc_idl = frontends.make_deprecated_shim(
    "oncrpc", "compile_oncrpc_idl")

__all__ = ["parse_oncrpc_idl", "oncrpc_to_aoi", "compile_oncrpc_idl"]
