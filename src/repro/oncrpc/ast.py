"""Abstract syntax tree for the ONC RPC (XDR language) front end.

XDR declarations are represented close to the RFC 1831/1832 grammar: a
*declaration* is a type specifier plus one declared name with an optional
array/pointer decoration, and a *program* holds versions holding procedures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.idl.source import SourceLocation


class XdrType:
    """Base class for XDR type specifiers."""


@dataclass(frozen=True)
class XdrPrimitive(XdrType):
    """int, unsigned int, hyper, unsigned hyper, float, double, bool, void."""

    kind: str

    KINDS = (
        "int", "unsigned int", "hyper", "unsigned hyper",
        "float", "double", "bool", "void", "char", "unsigned char",
        "short", "unsigned short",
    )


@dataclass(frozen=True)
class XdrNamed(XdrType):
    """Reference to a named type (including ``struct foo`` references)."""

    name: str


@dataclass(frozen=True)
class XdrEnumDef(XdrType):
    """``enum name { A = 1, ... }``; members may omit explicit values."""

    name: Optional[str]
    members: Tuple[Tuple[str, Optional["XdrValue"]], ...]


@dataclass(frozen=True)
class XdrStructDef(XdrType):
    name: Optional[str]
    members: Tuple["XdrDeclaration", ...]


@dataclass(frozen=True)
class XdrUnionDef(XdrType):
    name: Optional[str]
    discriminator: "XdrDeclaration"
    cases: Tuple["XdrUnionCase", ...]
    default: Optional["XdrDeclaration"] = None


@dataclass(frozen=True)
class XdrUnionCase:
    """``case value: declaration;`` — several values may share an arm."""

    values: Tuple["XdrValue", ...]
    declaration: "XdrDeclaration"


@dataclass(frozen=True)
class XdrValue:
    """A constant: an integer/bool literal or a reference to a constant."""

    literal: Optional[object] = None
    reference: Optional[str] = None

    @classmethod
    def of(cls, literal):
        return cls(literal=literal)

    @classmethod
    def ref(cls, name):
        return cls(reference=name)


class Decoration:
    """How a declaration decorates its base type."""

    PLAIN = "plain"
    FIXED_ARRAY = "fixed"      # name[n]
    VAR_ARRAY = "var"          # name<n> or name<>
    OPTIONAL = "optional"      # *name
    STRING = "string"          # string name<n>
    OPAQUE_FIXED = "opaque_fixed"
    OPAQUE_VAR = "opaque_var"


@dataclass(frozen=True)
class XdrDeclaration:
    """One declared datum: base type, name, and decoration."""

    type: XdrType
    name: Optional[str]  # None for bare `void`
    decoration: str = Decoration.PLAIN
    size: Optional[XdrValue] = None  # array length / bound

    @property
    def is_void(self):
        return (
            isinstance(self.type, XdrPrimitive) and self.type.kind == "void"
        )


@dataclass(frozen=True)
class XdrTypedef:
    declaration: XdrDeclaration
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class XdrConst:
    name: str
    value: XdrValue
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class XdrProcedure:
    """``result_type name(arg_type, ...) = number;``"""

    name: str
    result: XdrType
    arguments: Tuple[XdrType, ...]
    number: int
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class XdrVersion:
    name: str
    procedures: Tuple[XdrProcedure, ...]
    number: int
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class XdrProgram:
    name: str
    versions: Tuple[XdrVersion, ...]
    number: int
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class XdrSpecification:
    definitions: Tuple[object, ...]
