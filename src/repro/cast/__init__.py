"""CAST: the C Abstract Syntax Tree (paper section 2.2.2).

Flick keeps an explicit representation of the C declarations and statements
it emits; this is what lets presentation generators and back ends make
fine-grained specializations, and what lets the back ends associate target
language data with on-the-wire data.  CAST here covers the C subset the
stubs need: declarations, struct/union/enum definitions, functions, and the
statement/expression forms used by marshaling code.
"""

from repro.cast.nodes import (
    ArrayOf,
    Assign,
    BinOp,
    Block,
    Break,
    Call,
    Case,
    CastExpr,
    CharLit,
    Comment,
    Deref,
    DoWhile,
    EnumDef,
    ExprStmt,
    FieldDecl,
    For,
    FuncDecl,
    FuncDef,
    Ident,
    If,
    Index,
    IntLit,
    Member,
    Param,
    Pointer,
    Return,
    StrLit,
    StructDef,
    Switch,
    Ternary,
    TypeName,
    Typedef,
    UnaryOp,
    UnionDef,
    VarDecl,
    While,
)
from repro.cast.emit import CEmitter, emit_c

__all__ = [
    "ArrayOf", "Assign", "BinOp", "Block", "Break", "CEmitter", "Call",
    "Case", "CastExpr", "CharLit", "Comment", "Deref", "DoWhile", "EnumDef",
    "ExprStmt", "FieldDecl", "For", "FuncDecl", "FuncDef", "Ident", "If",
    "Index", "IntLit", "Member", "Param", "Pointer", "Return", "StrLit",
    "StructDef", "Switch", "Ternary", "TypeName", "Typedef", "UnaryOp",
    "UnionDef", "VarDecl", "While", "emit_c",
]
