"""Render CAST nodes to C source text.

The emitter handles C's inside-out declarator syntax (``char *argv[10]``),
operator precedence (parenthesizing only where required), and statement
indentation.  Back ends use :func:`emit_c` on a list of top-level
declarations to produce the ``.c``/``.h`` fidelity artifacts.
"""

from __future__ import annotations

from repro.cast import nodes as n
from repro.errors import FlickError

# C operator precedence, higher binds tighter.  Used to decide parentheses.
_PRECEDENCE = {
    ",": 1,
    "=": 2,
    "?:": 3,
    "||": 4,
    "&&": 5,
    "|": 6,
    "^": 7,
    "&": 8,
    "==": 9, "!=": 9,
    "<": 10, ">": 10, "<=": 10, ">=": 10,
    "<<": 11, ">>": 11,
    "+": 12, "-": 12,
    "*": 13, "/": 13, "%": 13,
    "unary": 14,
    "postfix": 15,
    "primary": 16,
}


class CEmitter:
    """Stateful pretty-printer; one instance per output file."""

    def __init__(self, indent="    "):
        self.indent_text = indent
        self.lines = []
        self.depth = 0

    # ------------------------------------------------------------------

    def getvalue(self):
        return "\n".join(self.lines) + "\n"

    def line(self, text=""):
        if text:
            self.lines.append(self.indent_text * self.depth + text)
        else:
            self.lines.append("")

    # ------------------------------------------------------------------
    # Declarators: C types print around their declared name.
    # ------------------------------------------------------------------

    def declarator(self, ctype, name):
        """Render *ctype* declaring *name* (name may be "")."""
        if isinstance(ctype, n.TypeName):
            return ("%s %s" % (ctype.name, name)).rstrip()
        if isinstance(ctype, n.Pointer):
            inner = "*%s" % name
            if isinstance(ctype.target, n.ArrayOf):
                inner = "(%s)" % inner
            return self.declarator(ctype.target, inner)
        if isinstance(ctype, n.ArrayOf):
            length = "" if ctype.length is None else str(ctype.length)
            return self.declarator(ctype.element, "%s[%s]" % (name, length))
        raise FlickError("cannot emit C type %r" % (ctype,))

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def expr(self, expression, parent_precedence=0):
        text, precedence = self._expr(expression)
        if precedence < parent_precedence:
            return "(%s)" % text
        return text

    def _expr(self, e):
        if isinstance(e, n.Ident):
            return e.name, _PRECEDENCE["primary"]
        if isinstance(e, n.IntLit):
            return str(e.value), _PRECEDENCE["primary"]
        if isinstance(e, n.StrLit):
            return '"%s"' % _escape(e.value), _PRECEDENCE["primary"]
        if isinstance(e, n.CharLit):
            return "'%s'" % _escape(e.value), _PRECEDENCE["primary"]
        if isinstance(e, n.Call):
            function = self.expr(e.function, _PRECEDENCE["postfix"])
            arguments = ", ".join(self.expr(a, _PRECEDENCE["="]) for a in e.arguments)
            return "%s(%s)" % (function, arguments), _PRECEDENCE["postfix"]
        if isinstance(e, n.Member):
            base = self.expr(e.base, _PRECEDENCE["postfix"])
            separator = "->" if e.arrow else "."
            return "%s%s%s" % (base, separator, e.field), _PRECEDENCE["postfix"]
        if isinstance(e, n.Index):
            base = self.expr(e.base, _PRECEDENCE["postfix"])
            index = self.expr(e.index)
            return "%s[%s]" % (base, index), _PRECEDENCE["postfix"]
        if isinstance(e, n.Deref):
            operand = self.expr(e.operand, _PRECEDENCE["unary"])
            return "*%s" % operand, _PRECEDENCE["unary"]
        if isinstance(e, n.UnaryOp):
            operand = self.expr(e.operand, _PRECEDENCE["unary"])
            if e.operator in ("++", "--"):
                return "%s%s" % (operand, e.operator), _PRECEDENCE["postfix"]
            return "%s%s" % (e.operator, operand), _PRECEDENCE["unary"]
        if isinstance(e, n.BinOp):
            precedence = _PRECEDENCE[e.operator]
            left = self.expr(e.left, precedence)
            right = self.expr(e.right, precedence + 1)
            return "%s %s %s" % (left, e.operator, right), precedence
        if isinstance(e, n.Assign):
            target = self.expr(e.target, _PRECEDENCE["unary"])
            value = self.expr(e.value, _PRECEDENCE["="])
            return "%s %s= %s" % (target, e.operator, value), _PRECEDENCE["="]
        if isinstance(e, n.Ternary):
            condition = self.expr(e.condition, _PRECEDENCE["?:"] + 1)
            then = self.expr(e.then, _PRECEDENCE["?:"])
            otherwise = self.expr(e.otherwise, _PRECEDENCE["?:"])
            return "%s ? %s : %s" % (condition, then, otherwise), _PRECEDENCE["?:"]
        if isinstance(e, n.CastExpr):
            operand = self.expr(e.operand, _PRECEDENCE["unary"])
            return "(%s)%s" % (self.declarator(e.type, ""), operand), _PRECEDENCE["unary"]
        raise FlickError("cannot emit C expression %r" % (e,))

    # ------------------------------------------------------------------
    # Statements and declarations
    # ------------------------------------------------------------------

    def stmt(self, statement):
        if isinstance(statement, n.ExprStmt):
            self.line("%s;" % self.expr(statement.expression))
        elif isinstance(statement, n.VarDecl):
            text = self.declarator(statement.type, statement.name)
            if statement.initializer is not None:
                text += " = %s" % self.expr(statement.initializer, _PRECEDENCE["="])
            self.line("%s;" % text)
        elif isinstance(statement, n.Block):
            self.line("{")
            self.depth += 1
            for inner in statement.statements:
                self.stmt(inner)
            self.depth -= 1
            self.line("}")
        elif isinstance(statement, n.If):
            self._emit_if(statement)
        elif isinstance(statement, n.While):
            self.line("while (%s)" % self.expr(statement.condition))
            self._nested(statement.body)
        elif isinstance(statement, n.DoWhile):
            self.line("do")
            self._nested(statement.body)
            self.line("while (%s);" % self.expr(statement.condition))
        elif isinstance(statement, n.For):
            parts = (
                "" if statement.initializer is None else self.expr(statement.initializer),
                "" if statement.condition is None else self.expr(statement.condition),
                "" if statement.step is None else self.expr(statement.step),
            )
            self.line("for (%s; %s; %s)" % parts)
            self._nested(statement.body)
        elif isinstance(statement, n.Switch):
            self.line("switch (%s) {" % self.expr(statement.discriminator))
            for case in statement.cases:
                if case.value is None:
                    self.line("default:")
                else:
                    self.line("case %s:" % self.expr(case.value))
                self.depth += 1
                for inner in case.body:
                    self.stmt(inner)
                self.depth -= 1
            self.line("}")
        elif isinstance(statement, n.Return):
            if statement.value is None:
                self.line("return;")
            else:
                self.line("return %s;" % self.expr(statement.value))
        elif isinstance(statement, n.Break):
            self.line("break;")
        elif isinstance(statement, n.Comment):
            for text_line in statement.text.split("\n"):
                self.line("/* %s */" % text_line)
        elif isinstance(statement, n.StructDef):
            self._composite("struct", statement.name, statement.fields)
        elif isinstance(statement, n.UnionDef):
            self._composite("union", statement.name, statement.fields)
        elif isinstance(statement, n.EnumDef):
            self.line("enum %s {" % statement.name)
            self.depth += 1
            for index, (member, value) in enumerate(statement.members):
                comma = "," if index < len(statement.members) - 1 else ""
                self.line("%s = %d%s" % (member, value, comma))
            self.depth -= 1
            self.line("};")
        elif isinstance(statement, n.Typedef):
            self.line("typedef %s;" % self.declarator(statement.type, statement.name))
        elif isinstance(statement, n.FuncDecl):
            self.line("%s;" % self._prototype(statement))
        elif isinstance(statement, n.FuncDef):
            self.line(self._prototype(statement.declaration))
            self.stmt(statement.body)
        else:
            raise FlickError("cannot emit C statement %r" % (statement,))

    def _emit_if(self, statement):
        self.line("if (%s)" % self.expr(statement.condition))
        self._nested(statement.then)
        otherwise = statement.otherwise
        if otherwise is not None:
            self.line("else")
            self._nested(otherwise)

    def _nested(self, body):
        if isinstance(body, n.Block):
            self.stmt(body)
        else:
            self.depth += 1
            self.stmt(body)
            self.depth -= 1

    def _composite(self, keyword, name, fields):
        self.line("%s %s {" % (keyword, name))
        self.depth += 1
        for field_decl in fields:
            self.line("%s;" % self.declarator(field_decl.type, field_decl.name))
        self.depth -= 1
        self.line("};")

    def _prototype(self, declaration):
        if declaration.parameters:
            parameters = ", ".join(
                self.declarator(parameter.type, parameter.name)
                for parameter in declaration.parameters
            )
        else:
            parameters = "void"
        return self.declarator(
            declaration.return_type,
            "%s(%s)" % (declaration.name, parameters),
        )


_ESCAPE_MAP = {
    "\\": "\\\\",
    '"': '\\"',
    "'": "\\'",
    "\n": "\\n",
    "\t": "\\t",
    "\r": "\\r",
    "\0": "\\0",
}


def _escape(text):
    return "".join(_ESCAPE_MAP.get(char, char) for char in text)


def emit_c(declarations, header_comment=None):
    """Render a list of top-level CAST declarations to C source text."""
    emitter = CEmitter()
    if header_comment:
        emitter.stmt(n.Comment(header_comment))
        emitter.line()
    for declaration in declarations:
        emitter.stmt(declaration)
        emitter.line()
    return emitter.getvalue()
