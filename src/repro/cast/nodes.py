"""CAST node definitions.

A deliberately syntax-shaped C representation: types, declarations,
statements, and expressions, each a frozen dataclass.  The pretty-printer in
:mod:`repro.cast.emit` renders them to compilable C source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


# ----------------------------------------------------------------------
# Types
# ----------------------------------------------------------------------


class CType:
    """Base class for C type expressions."""


@dataclass(frozen=True)
class TypeName(CType):
    """A named type: ``int``, ``CORBA_long``, ``struct foo``, etc."""

    name: str


@dataclass(frozen=True)
class Pointer(CType):
    """Pointer to *target*."""

    target: CType


@dataclass(frozen=True)
class ArrayOf(CType):
    """Array of *element*, optionally with a constant *length*."""

    element: CType
    length: Optional[int] = None


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


class CExpr:
    """Base class for C expressions."""


@dataclass(frozen=True)
class Ident(CExpr):
    name: str


@dataclass(frozen=True)
class IntLit(CExpr):
    value: int


@dataclass(frozen=True)
class StrLit(CExpr):
    value: str


@dataclass(frozen=True)
class CharLit(CExpr):
    value: str


@dataclass(frozen=True)
class Call(CExpr):
    function: CExpr
    arguments: Tuple[CExpr, ...] = ()


@dataclass(frozen=True)
class Member(CExpr):
    """``base.field`` or ``base->field`` (``arrow=True``)."""

    base: CExpr
    field: str
    arrow: bool = False


@dataclass(frozen=True)
class Index(CExpr):
    base: CExpr
    index: CExpr


@dataclass(frozen=True)
class UnaryOp(CExpr):
    operator: str  # "-", "!", "~", "&", "*", "++", "--"
    operand: CExpr


@dataclass(frozen=True)
class Deref(CExpr):
    operand: CExpr


@dataclass(frozen=True)
class BinOp(CExpr):
    operator: str
    left: CExpr
    right: CExpr


@dataclass(frozen=True)
class Assign(CExpr):
    """``target op= value`` (``operator`` of "" means plain assignment)."""

    target: CExpr
    value: CExpr
    operator: str = ""


@dataclass(frozen=True)
class Ternary(CExpr):
    condition: CExpr
    then: CExpr
    otherwise: CExpr


@dataclass(frozen=True)
class CastExpr(CExpr):
    type: CType
    operand: CExpr


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


class CStmt:
    """Base class for C statements."""


@dataclass(frozen=True)
class ExprStmt(CStmt):
    expression: CExpr


@dataclass(frozen=True)
class VarDecl(CStmt):
    """A local or global variable declaration with optional initializer."""

    type: CType
    name: str
    initializer: Optional[CExpr] = None


@dataclass(frozen=True)
class Block(CStmt):
    statements: Tuple[CStmt, ...] = ()


@dataclass(frozen=True)
class If(CStmt):
    condition: CExpr
    then: CStmt
    otherwise: Optional[CStmt] = None


@dataclass(frozen=True)
class While(CStmt):
    condition: CExpr
    body: CStmt


@dataclass(frozen=True)
class DoWhile(CStmt):
    body: CStmt
    condition: CExpr


@dataclass(frozen=True)
class For(CStmt):
    initializer: Optional[CExpr]
    condition: Optional[CExpr]
    step: Optional[CExpr]
    body: CStmt


@dataclass(frozen=True)
class Case(CStmt):
    """One ``case`` (or ``default`` when *value* is None) of a switch."""

    value: Optional[CExpr]
    body: Tuple[CStmt, ...] = ()


@dataclass(frozen=True)
class Switch(CStmt):
    discriminator: CExpr
    cases: Tuple[Case, ...] = ()


@dataclass(frozen=True)
class Return(CStmt):
    value: Optional[CExpr] = None


@dataclass(frozen=True)
class Break(CStmt):
    pass


@dataclass(frozen=True)
class Comment(CStmt):
    text: str


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FieldDecl:
    type: CType
    name: str


@dataclass(frozen=True)
class StructDef(CStmt):
    name: str
    fields: Tuple[FieldDecl, ...] = ()


@dataclass(frozen=True)
class UnionDef(CStmt):
    name: str
    fields: Tuple[FieldDecl, ...] = ()


@dataclass(frozen=True)
class EnumDef(CStmt):
    name: str
    members: Tuple[Tuple[str, int], ...] = ()


@dataclass(frozen=True)
class Typedef(CStmt):
    type: CType
    name: str


@dataclass(frozen=True)
class Param:
    type: CType
    name: str


@dataclass(frozen=True)
class FuncDecl(CStmt):
    """A function prototype."""

    return_type: CType
    name: str
    parameters: Tuple[Param, ...] = ()


@dataclass(frozen=True)
class FuncDef(CStmt):
    """A function definition: a prototype plus a body."""

    declaration: FuncDecl
    body: Block = field(default_factory=Block)
