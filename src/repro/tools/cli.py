"""The ``flick`` command-line interface.

Mirrors the compiler-kit usage of the paper: pick a front end, a
presentation generator, and a back end, and get stubs out::

    flick compile mail.idl --frontend corba --backend iiop -o out/
    flick compile db.x --frontend oncrpc --backend oncrpc-xdr --emit c,py
    flick compile arith.defs --frontend mig -o out/
    flick compile mail.idl --baseline rpcgen      # a comparator's stubs
    flick compile db.x --disable-pass chunk_atoms # ablate one MIR pass
    flick inspect mail.idl                        # storage/demux analyses
    flick ir mail.idl --op send                   # dump the marshal IR
    flick diff old.idl new.idl --json             # wire-compatibility diff
    flick lint mail.x                             # schema-evolution lint
    flick bridge mail.idl --ingress iiop --egress onc
    flick gateway mail.idl --listen iiop:0.0.0.0:9090 \
        --upstream onc:10.0.0.7:111 --check
    flick profile prof.json --op send         # payload-shape report
    flick top 127.0.0.1:9464                  # live /metrics view
    flick list

``flick diff`` exits 0 when every operation is WIRE_IDENTICAL, 1 when
the worst verdict is DECODE_COMPATIBLE, 2 on BREAKING, and 3 on a
compile or usage error.  ``flick lint`` exits 0 when no finding reaches
the ``--fail-on`` severity (default: warning), 1 otherwise, and 3 on
error.  ``flick bridge`` uses the diff exit codes for a protocol *pair*
(ingress schema/protocol against egress schema/protocol), and
``flick gateway --check`` refuses to serve a BREAKING bridge with
exit 2.

Output files are written as ``<interface>_<backend>.py``, ``...c``, and
``...h`` under the output directory (default: the current directory).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.errors import FlickError


def _lang_choices():
    """Registered front-end names (the registry is the only source)."""
    from repro import frontends

    return frontends.names()


def _aoi_lang_choices():
    """Front ends with an AOI (diffable/bridgeable over TCP protocols)."""
    from repro import frontends

    return tuple(
        fe.name for fe in frontends.all_frontends()
        if fe.has_aoi and fe.servable
    )


def build_parser():
    parser = argparse.ArgumentParser(
        prog="flick",
        description="Flick: a flexible, optimizing IDL compiler"
                    " (PLDI 1997 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_parser = sub.add_parser(
        "compile", help="compile an IDL file to stubs"
    )
    compile_parser.add_argument("input", help="IDL source file")
    compile_parser.add_argument(
        "--frontend", choices=_lang_choices(), default=None,
        help="IDL front end (default: guessed from the file suffix)",
    )
    compile_parser.add_argument(
        "--pgen", default=None,
        help="presentation style (corba-c, rpcgen, fluke)",
    )
    compile_parser.add_argument(
        "--backend", default=None,
        help="back end (iiop, oncrpc-xdr, mach3, fluke)",
    )
    compile_parser.add_argument(
        "--interface", default=None,
        help="interface to compile (required if the file defines several)",
    )
    compile_parser.add_argument(
        "-o", "--output", default=".", help="output directory"
    )
    compile_parser.add_argument(
        "--emit", default="py,c,h",
        help="comma-separated outputs: py, c, h (default: all)",
    )
    compile_parser.add_argument(
        "--no-opt", action="store_true",
        help="disable all back-end optimizations",
    )
    compile_parser.add_argument(
        "--disable", default="",
        help="comma-separated OptFlags fields to turn off"
             " (e.g. chunk_atoms,memcpy_arrays)",
    )
    compile_parser.add_argument(
        "--disable-pass", action="append", default=[], metavar="NAME",
        dest="disable_pass",
        help="turn off one MIR optimization pass by name (repeatable;"
             " an unknown name lists the available passes)",
    )
    compile_parser.add_argument(
        "--little-endian", action="store_true",
        help="generate little-endian CDR stubs (IIOP back end only)",
    )
    compile_parser.add_argument(
        "--baseline", default=None,
        help="generate stubs with a comparator compiler instead of Flick"
             " (rpcgen, powerrpc, orbeline, ilu, mig)",
    )
    compile_parser.add_argument(
        "--timing", action="store_true",
        help="report per-phase compile times (parse, AOI lowering,"
             " presentation, back-end emit) and generated-stub sizes",
    )

    ir_parser = sub.add_parser(
        "ir",
        help="dump the marshal IR the optimizing back end compiles",
    )
    ir_parser.add_argument("input", help="IDL source file")
    ir_parser.add_argument(
        "--frontend", choices=_lang_choices(), default=None,
        help="IDL front end (default: guessed from the file suffix)",
    )
    ir_parser.add_argument("--pgen", default=None)
    ir_parser.add_argument("--backend", default=None)
    ir_parser.add_argument("--interface", default=None)
    ir_parser.add_argument(
        "--op", default=None, metavar="NAME",
        help="dump only the functions of this operation",
    )
    ir_parser.add_argument(
        "--no-opt", action="store_true",
        help="dump the unoptimized IR (every pass off)",
    )
    ir_parser.add_argument(
        "--disable-pass", action="append", default=[], metavar="NAME",
        dest="disable_pass",
        help="turn off one MIR pass by name (repeatable)",
    )

    inspect_parser = sub.add_parser(
        "inspect",
        help="explain what the compiler would generate for an IDL file",
    )
    inspect_parser.add_argument("input", help="IDL source file")
    inspect_parser.add_argument("--frontend", default=None)
    inspect_parser.add_argument("--pgen", default=None)
    inspect_parser.add_argument("--backend", default=None)
    inspect_parser.add_argument("--interface", default=None)

    serve_parser = sub.add_parser(
        "serve",
        help="compile an IDL interface and serve it over TCP",
    )
    serve_parser.add_argument("input", help="IDL source file")
    serve_parser.add_argument(
        "--impl", required=True,
        help="servant implementation as module:Class; the class is"
             " instantiated with the stub module (or with no arguments)",
    )
    serve_parser.add_argument("--frontend", default=None)
    serve_parser.add_argument("--pgen", default=None)
    serve_parser.add_argument(
        "--backend", default=None,
        help="wire protocol: iiop or oncrpc-xdr"
             " (default: the front end's default)",
    )
    serve_parser.add_argument("--interface", default=None)
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=0,
                              help="TCP port (0 picks a free port)")
    serve_parser.add_argument(
        "--aio", action="store_true",
        help="serve with the concurrent asyncio runtime (pipelining,"
             " backpressure, graceful drain) instead of the blocking"
             " thread-per-connection server",
    )
    serve_parser.add_argument(
        "--stats", action="store_true",
        help="collect per-operation call counts, errors, and latency"
             " histograms; printed at shutdown",
    )
    serve_parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="enable tracing and append finished spans to PATH as JSON"
             " lines (one object per span)",
    )
    serve_parser.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve Prometheus metrics at http://HOST:PORT/metrics"
             " (0 picks a free port; implies --stats)",
    )
    serve_parser.add_argument(
        "--profile", default=None, metavar="PATH",
        help="enable the payload-shape profiler and save its snapshot"
             " to PATH at shutdown (inspect with `flick profile PATH`)",
    )
    serve_parser.add_argument(
        "--profile-sample", type=int, default=64, metavar="N",
        help="profile every N-th codec call (default: 64; 1 profiles"
             " everything)",
    )
    serve_parser.add_argument(
        "--max-concurrency", type=int, default=64,
        help="in-flight request cap for the asyncio runtime",
    )
    serve_parser.add_argument(
        "--dispatch-mode", choices=("thread", "inline"), default="thread",
        help="run each dispatch on a worker thread (safe for blocking"
             " servants) or inline on the event loop (fastest)",
    )
    serve_parser.add_argument(
        "--max-pending", type=int, default=None, metavar="N",
        help="overload bound for the asyncio runtime: when all"
             " --max-concurrency slots are busy, at most N further"
             " requests wait; beyond that requests are shed with a"
             " protocol error reply (default: queue unboundedly)",
    )
    serve_parser.add_argument(
        "--fault-plan", default=None, metavar="FILE",
        help="inject faults into inbound requests per a FaultPlan JSON"
             " file (chaos testing: drop/delay/duplicate/reorder/"
             "truncate/corrupt/reset probabilities and a seed)",
    )
    serve_parser.add_argument(
        "--duration", type=float, default=None,
        help="serve for this many seconds, then exit (default: forever)",
    )
    serve_parser.add_argument(
        "--tiering", default="off", metavar="auto|off|FILE",
        help="profile-guided tiered execution: every op starts on the"
             " compile-time renderer; a hotness counter promotes hot"
             " ops to the renderer the cost model scores best for their"
             " observed payloads, recompiled in the background,"
             " byte-identity-verified on a shadow call, and reverted"
             " when the recompile turns out slower; FILE loads a"
             " TierPolicy JSON (threshold, hysteresis, revert_ratio,"
             " ...)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="supervised multi-process mode: N worker processes share"
             " the listen address (SO_REUSEPORT accept sharding);"
             " crashed workers restart with backoff, SIGHUP re-reads"
             " the IDL and rolls a compatible schema worker-by-worker,"
             " and --metrics-port serves the aggregated /metrics,"
             " /profile, /healthz, and /readyz endpoints",
    )

    diff_parser = sub.add_parser(
        "diff",
        help="classify the wire compatibility of two IDL versions",
    )
    diff_parser.add_argument("old", help="the currently deployed IDL file")
    diff_parser.add_argument("new", help="the proposed IDL file")
    diff_parser.add_argument(
        "--lang", choices=_lang_choices(), default=None,
        help="IDL language (default: detected per file; the two files"
             " may use different languages, e.g. diff an IDL file"
             " against the pyschema .py replacing it)",
    )
    diff_parser.add_argument(
        "--interface", default=None,
        help="interface to diff (required if a file defines several)",
    )
    diff_parser.add_argument(
        "--protocol", action="append", default=None,
        metavar="BACKEND",
        help="wire protocol to diff under (repeatable; default:"
             " oncrpc-xdr and iiop, or mach3 for MIG)",
    )
    diff_parser.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report instead of text",
    )

    lint_parser = sub.add_parser(
        "lint",
        help="flag schema-evolution hazards in an IDL file",
    )
    lint_parser.add_argument("input", help="IDL source file")
    lint_parser.add_argument(
        "--lang", choices=_lang_choices(), default=None,
        help="IDL language (default: detected)",
    )
    lint_parser.add_argument("--interface", default=None)
    lint_parser.add_argument(
        "--protocol", default=None, metavar="BACKEND",
        help="wire protocol to lint under (default: the language's own)",
    )
    lint_parser.add_argument(
        "--fail-on", choices=("info", "warning", "error"),
        default="warning",
        help="lowest severity that makes the exit code nonzero",
    )
    lint_parser.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report instead of text",
    )

    bridge_parser = sub.add_parser(
        "bridge",
        help="statically verify a cross-protocol bridge is lossless",
    )
    bridge_parser.add_argument(
        "ingress", help="IDL file the gateway serves on the ingress side"
    )
    bridge_parser.add_argument(
        "egress", nargs="?", default=None,
        help="IDL file the upstream server was built against"
             " (default: the ingress file — same schema, two protocols)",
    )
    bridge_parser.add_argument(
        "--ingress", dest="ingress_protocol", default="iiop",
        metavar="PROTO",
        help="ingress wire protocol: iiop or onc/oncrpc-xdr"
             " (default: iiop)",
    )
    bridge_parser.add_argument(
        "--egress", dest="egress_protocol", default="oncrpc-xdr",
        metavar="PROTO",
        help="egress wire protocol (default: oncrpc-xdr)",
    )
    bridge_parser.add_argument(
        "--lang", choices=_aoi_lang_choices(), default=None,
        help="IDL language (default: detected per file)",
    )
    bridge_parser.add_argument("--interface", default=None)
    bridge_parser.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report instead of text",
    )

    gateway_parser = sub.add_parser(
        "gateway",
        help="serve one protocol, forward to an upstream on another",
    )
    gateway_parser.add_argument("input", help="IDL source file")
    gateway_parser.add_argument(
        "--listen", required=True, metavar="PROTO:HOST:PORT",
        help="ingress endpoint, e.g. iiop:0.0.0.0:9090"
             " (port 0 picks a free port)",
    )
    gateway_parser.add_argument(
        "--upstream", required=True, metavar="PROTO:HOST:PORT",
        help="egress endpoint of the real server, e.g. onc:10.0.0.7:111",
    )
    gateway_parser.add_argument(
        "--upstream-idl", default=None, metavar="FILE",
        help="IDL file the upstream was built against (default: the"
             " ingress file; set during migrations)",
    )
    gateway_parser.add_argument(
        "--lang", choices=_aoi_lang_choices(), default=None,
        help="IDL language (default: detected)",
    )
    gateway_parser.add_argument("--interface", default=None)
    gateway_parser.add_argument(
        "--check", action="store_true",
        help="verify the bridge statically before serving; refuse a"
             " BREAKING bridge with exit 2",
    )
    gateway_parser.add_argument(
        "--no-fuse", action="store_true",
        help="disable the fused byte-copy plans (always decode and"
             " re-encode; for debugging and benchmarking)",
    )
    gateway_parser.add_argument(
        "--pool-size", type=int, default=4,
        help="multiplexed upstream connections (default: 4)",
    )
    gateway_parser.add_argument(
        "--max-concurrency", type=int, default=64,
        help="in-flight request cap on the ingress side",
    )
    gateway_parser.add_argument(
        "--max-pending", type=int, default=None, metavar="N",
        help="overload bound: beyond N queued requests, shed with a"
             " protocol error reply (default: queue unboundedly)",
    )
    gateway_parser.add_argument(
        "--stats", action="store_true",
        help="collect per-operation and per-bridge counters; printed"
             " at shutdown",
    )
    gateway_parser.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve Prometheus metrics at /metrics (implies --stats)",
    )
    gateway_parser.add_argument(
        "--profile", default=None, metavar="PATH",
        help="enable the payload-shape profiler (fused/re-encode path"
             " ratios, transcoded sizes) and save its snapshot to PATH"
             " at shutdown",
    )
    gateway_parser.add_argument(
        "--profile-sample", type=int, default=64, metavar="N",
        help="profile every N-th transcoded message (default: 64)",
    )
    gateway_parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="append finished spans to PATH as JSON lines; client,"
             " gateway, and upstream spans share one trace id",
    )
    gateway_parser.add_argument(
        "--fault-plan", default=None, metavar="FILE",
        help="inject faults into ingress requests per a FaultPlan JSON",
    )
    gateway_parser.add_argument(
        "--upstream-fault-plan", default=None, metavar="FILE",
        help="inject faults on the egress leg instead",
    )
    gateway_parser.add_argument(
        "--duration", type=float, default=None,
        help="serve for this many seconds, then exit (default: forever)",
    )
    gateway_parser.add_argument(
        "--tiering", default="off", metavar="auto|off|FILE",
        help="profile-guided tiered execution for the ingress-side"
             " codecs (decode requests / encode replies); see flick"
             " serve --tiering",
    )
    gateway_parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="supervised multi-process mode (see flick serve --workers)",
    )

    profile_parser = sub.add_parser(
        "profile",
        help="report a payload-shape profile snapshot"
             " (from `flick serve --profile`)",
    )
    profile_parser.add_argument(
        "snapshots", nargs="+", metavar="SNAPSHOT",
        help="profile snapshot JSON file(s); several are merged"
             " (profiles from different workers combine losslessly)",
    )
    profile_parser.add_argument(
        "--op", default=None, metavar="NAME",
        help="report only this operation",
    )
    profile_parser.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report instead of text",
    )

    top_parser = sub.add_parser(
        "top",
        help="live per-operation view of a serving endpoint's /metrics",
    )
    top_parser.add_argument(
        "target", metavar="HOST:PORT",
        help="a --metrics-port endpoint, e.g. 127.0.0.1:9464",
    )
    top_parser.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="poll interval (default: 2s)",
    )
    top_parser.add_argument(
        "--once", action="store_true",
        help="print one snapshot (cumulative totals, no rates) and exit",
    )

    sub.add_parser("list", help="list front ends, presentations, back ends")
    return parser


#: Accepted protocol spellings for ``flick bridge`` / ``flick gateway``.
_PROTOCOL_ALIASES = {
    "iiop": "iiop",
    "giop": "iiop",
    "onc": "oncrpc-xdr",
    "oncrpc": "oncrpc-xdr",
    "oncrpc-xdr": "oncrpc-xdr",
    "xdr": "oncrpc-xdr",
}


def _backend_for_protocol(spelling):
    try:
        return _PROTOCOL_ALIASES[spelling.lower()]
    except KeyError:
        raise FlickError(
            "unknown gateway protocol %r; use one of: %s"
            % (spelling, ", ".join(sorted(_PROTOCOL_ALIASES)))
        )


def _parse_endpoint(spec, flag):
    parts = spec.rsplit(":", 2)
    if len(parts) != 3:
        raise FlickError(
            "%s must look like PROTO:HOST:PORT, got %r" % (flag, spec)
        )
    proto, host, port = parts
    try:
        port = int(port)
    except ValueError:
        raise FlickError("%s port %r is not a number" % (flag, port))
    return _backend_for_protocol(proto), host, port


def _guess_frontend(path, text="", explicit=None):
    """The IDL language for *path*: the explicit flag, then detection."""
    if explicit:
        return explicit
    from repro import api

    try:
        return api.detect_lang(text, name=path)
    except FlickError:
        return "corba"


def _build_flags(args):
    from repro.core import OptFlags

    flags = OptFlags.all_off() if args.no_opt else OptFlags()
    disabled = [
        name for name in getattr(args, "disable", "").split(",") if name
    ]
    if disabled:
        flags = flags.but(**{name: False for name in disabled})
    for name in getattr(args, "disable_pass", ()):
        try:
            flags = flags.disable_pass(name)
        except ValueError as error:
            raise FlickError(str(error))
    return flags


def _apply_baseline(args, all_prescs):
    from repro.compilers import make_baseline

    compiler = make_baseline(args.baseline)
    return [compiler.generate(presc) for presc in all_prescs]


def command_compile(args):
    from repro import api

    with open(args.input) as handle:
        text = handle.read()
    lang = _guess_frontend(args.input, text, args.frontend)
    backend_options = {}
    if getattr(args, "little_endian", False):
        if args.backend not in (None, "iiop"):
            raise FlickError(
                "--little-endian applies only to the iiop back end"
            )
        backend_options["little_endian"] = True
    flags = _build_flags(args)
    if args.interface:
        results = [api.compile(
            text, lang, interface=args.interface, flags=flags,
            name=args.input, presentation=args.pgen, backend=args.backend,
            **backend_options,
        )]
    else:
        by_name = api.compile_all(
            text, lang, flags=flags, name=args.input,
            presentation=args.pgen, backend=args.backend,
            **backend_options,
        )
        if not by_name:
            raise FlickError("the input defines no interfaces")
        results = list(by_name.values())
    timed_results = results
    if args.baseline:
        all_stubs = _apply_baseline(
            args, [result.presc for result in results]
        )
    else:
        all_stubs = [result.stubs for result in results]
    emit = {kind.strip() for kind in args.emit.split(",") if kind.strip()}
    os.makedirs(args.output, exist_ok=True)
    if "c" in emit or "h" in emit:
        # Ship the support header alongside the generated C so it
        # compiles out of the box.
        import shutil

        from repro.backend import runtime_header_path

        shutil.copy(
            runtime_header_path(),
            os.path.join(args.output, "flick-runtime.h"),
        )
    for stubs in all_stubs:
        base = os.path.join(
            args.output,
            "%s_%s" % (
                stubs.interface_name.replace("::", "_").lower(),
                stubs.backend_name.replace("-", "_"),
            ),
        )
        written = []
        if "py" in emit:
            _write(base + ".py", stubs.py_source, written)
        if "c" in emit:
            _write(base + ".c", stubs.c_source, written)
        if "h" in emit:
            _write(base + ".h", stubs.c_header, written)
        print(
            "compiled %s (%s presentation, %s back end): %s"
            % (
                stubs.interface_name,
                stubs.presentation_style,
                stubs.backend_name,
                ", ".join(written),
            )
        )
    if getattr(args, "timing", False):
        for result in timed_results:
            _print_timing(result)
    return 0


def _print_timing(result):
    timings = result.timings or {}
    phases = "  ".join(
        "%s %.2fms" % (key[:-2], seconds * 1e3)
        for key, seconds in timings.items()
        if key.endswith("_s") and key != "total_s"
    )
    print("timing %s: %s  (total %.2fms)"
          % (result.stubs.interface_name, phases,
             timings.get("total_s", 0.0) * 1e3))
    summary = result.emit_summary()
    print("  emitted: %d operation(s), %d bytes (%d lines),"
          " %d marshal chunk(s)"
          % (summary["operations"], summary["stub_bytes"],
             summary["stub_lines"], summary["request_chunks"]))


def _write(path, content, written):
    with open(path, "w") as handle:
        handle.write(content)
    written.append(path)


def command_ir(args):
    """Dump the (optimized) marshal IR for one interface."""
    from repro import api
    from repro.mir.dump import dump_program

    with open(args.input) as handle:
        text = handle.read()
    lang = _guess_frontend(args.input, text, args.frontend)
    flags = _build_flags(args)
    result = api.compile(
        text, lang, interface=args.interface, flags=flags,
        name=args.input, presentation=args.pgen, backend=args.backend,
    )
    program = result.stubs.mir
    if program is None:
        raise FlickError(
            "the %s back end produced no marshal IR"
            % result.stubs.backend_name
        )
    if args.op is not None:
        operations = sorted(
            {fn.operation for fn in program.functions if fn.operation}
        )
        if args.op not in operations:
            raise FlickError(
                "no operation %r; have: %s"
                % (args.op, ", ".join(operations))
            )
    print(dump_program(program, op_filter=args.op), end="")
    return 0


def command_inspect(args):
    """Explain the compiler's analyses for each operation."""
    from repro import api
    from repro.mint.analysis import analyze_storage
    from repro.backend import make_backend

    with open(args.input) as handle:
        text = handle.read()
    lang = _guess_frontend(args.input, text, args.frontend)
    if args.interface:
        results = [api.compile(
            text, lang, interface=args.interface, name=args.input,
            presentation=args.pgen, backend=args.backend,
        )]
    else:
        results = list(api.compile_all(
            text, lang, name=args.input, presentation=args.pgen,
            backend=args.backend,
        ).values())
    for result in results:
        presc = result.presc
        stubs = result.stubs
        backend_name = stubs.backend_name
        backend = make_backend(backend_name)
        print("interface %s  (presentation %s, back end %s)"
              % (presc.interface_name, presc.presentation_style,
                 backend_name))
        print("  wire id: %r" % (presc.interface_code,))
        print("  demux:   %s" % stubs.metadata["demux"])
        for stub in presc.stubs:
            info = analyze_storage(
                stub.request_pres.mint, backend.wire_format,
                presc.mint_registry,
            )
            if info.max_size is None:
                size_text = ">= %d bytes (unbounded)" % info.min_size
            elif info.storage_class.value == "fixed":
                size_text = "<= %d bytes (fixed layout)" % info.max_size
            else:
                size_text = "%d..%d bytes (bounded)" % (
                    info.min_size, info.max_size,
                )
            chunks = stubs.metadata["operations"].get(
                stub.operation_name, {}
            ).get("request_chunks", "?")
            oneway = " oneway" if stub.oneway else ""
            print("  %-20s request body %s; %s marshal chunk(s);%s key=%r"
                  % (stub.operation_name, size_text, chunks, oneway,
                     backend.demux_key(presc, stub)))
        if stubs.metadata["records"]:
            print("  records: %s" % ", ".join(stubs.metadata["records"]))
        if stubs.metadata["exceptions"]:
            print("  exceptions: %s"
                  % ", ".join(stubs.metadata["exceptions"]))
    return 0


#: Back ends whose messages the socket servers can carry.
_SERVABLE_BACKENDS = ("iiop", "oncrpc-xdr")


def _load_servant(spec, stub_module):
    """Instantiate the servant named by a ``module:Class`` spec."""
    import importlib

    module_name, separator, class_name = spec.partition(":")
    if not separator or not module_name or not class_name:
        raise FlickError(
            "--impl must look like module:Class, not %r" % spec
        )
    cwd = os.getcwd()
    if cwd not in sys.path:
        sys.path.insert(0, cwd)
    try:
        impl_module = importlib.import_module(module_name)
    except ImportError as error:
        raise FlickError(
            "cannot import servant module %r: %s" % (module_name, error)
        )
    try:
        impl_class = getattr(impl_module, class_name)
    except AttributeError:
        raise FlickError(
            "module %r has no class %r" % (module_name, class_name)
        )
    try:
        return impl_class(stub_module)
    except TypeError:
        return impl_class()


def _compile_for_serving(args, text):
    from repro import api, frontends

    lang = _guess_frontend(args.input, text, args.frontend)
    if not frontends.get(lang).servable:
        raise FlickError(
            "serve carries TCP protocols only (iiop, oncrpc-xdr);"
            " %s interfaces target kernel IPC" % lang.upper()
        )
    if args.interface:
        result = api.compile(
            text, lang, interface=args.interface, name=args.input,
            presentation=args.pgen, backend=args.backend,
        )
    else:
        by_name = api.compile_all(
            text, lang, name=args.input, presentation=args.pgen,
            backend=args.backend,
        )
        if not by_name:
            raise FlickError("the input defines no interfaces")
        if len(by_name) > 1:
            raise FlickError(
                "the input defines several interfaces (%s);"
                " pick one with --interface" % ", ".join(sorted(by_name))
            )
        result = next(iter(by_name.values()))
    if result.stubs.backend_name not in _SERVABLE_BACKENDS:
        raise FlickError(
            "serve supports the %s back ends, not %r"
            % (" and ".join(_SERVABLE_BACKENDS), result.stubs.backend_name)
        )
    return result


def _resolve_tiering(args):
    """The serve/gateway ``--tiering`` value as a TierPolicy (or None)."""
    from repro.runtime.tiering import resolve_policy

    return resolve_policy(getattr(args, "tiering", "off"))


def _run_supervised(args, template, *, what, profile):
    """Run a worker fleet under the supervisor until shutdown."""
    from repro.runtime.signals import SignalDriver
    from repro.runtime.supervisor import Supervisor, SupervisorHttpServer

    supervisor = Supervisor(
        template, args.workers, idl_path=args.input,
        profile_path=profile,
    )
    driver = SignalDriver(on_hup=supervisor.request_rollout).install()
    endpoint = None
    try:
        supervisor.start()
        print(
            "supervising %d worker(s) serving %s (%s back end) on"
            " %s:%d; SIGHUP re-reads %s and rolls a compatible schema"
            % (args.workers, what or supervisor.interface_name,
               supervisor.backend_name, supervisor.host,
               supervisor.port, args.input),
            flush=True,
        )
        if profile:
            print("profiling payload shapes to %s (merged across"
                  " workers at shutdown)" % profile, flush=True)
        if args.metrics_port is not None:
            from repro import obs  # noqa: F401 (endpoint idiom parity)

            endpoint = SupervisorHttpServer(
                supervisor, template.host, args.metrics_port
            ).start()
            print(
                "fleet endpoints on http://%s:%d"
                " (/metrics /profile /healthz /readyz)"
                % endpoint.address[:2],
                flush=True,
            )
        try:
            driver.wait(args.duration)
        except KeyboardInterrupt:
            pass
        print("shutting down (draining %d worker(s))" % args.workers,
              flush=True)
    finally:
        if endpoint is not None:
            endpoint.stop()
        merged = supervisor.stop()
        if profile and merged is not None:
            print("merged profile snapshot saved to %s" % profile,
                  flush=True)
        driver.uninstall()
    return 0


def _command_serve_supervised(args):
    from repro.runtime.supervisor import WorkerConfig

    for flag, name in ((args.trace, "--trace"),
                       (args.fault_plan, "--fault-plan")):
        if flag:
            raise FlickError(
                "%s is per-process; it is not supported with --workers"
                % name)
    with open(args.input) as handle:
        text = handle.read()
    result = _compile_for_serving(args, text)  # fail fast, same checks
    _resolve_tiering(args)  # fail fast on a bad --tiering FILE
    template = WorkerConfig(
        kind="serve", lang=args.frontend, pgen=args.pgen,
        backend=args.backend, interface=args.interface, impl=args.impl,
        host=args.host, port=args.port,
        max_concurrency=args.max_concurrency,
        dispatch_mode=args.dispatch_mode, max_pending=args.max_pending,
        profile_sample=args.profile_sample, tiering=args.tiering,
        sys_paths=[os.getcwd()],
    )
    return _run_supervised(
        args, template, what=result.stubs.interface_name,
        profile=args.profile,
    )


def command_serve(args):
    """Compile an interface, bind a servant, and serve it over TCP."""
    from repro import obs
    from repro.runtime import ServerStats, StubServer
    from repro.runtime.aio import ServeOptions
    from repro.runtime.signals import SignalDriver

    if args.workers is not None:
        return _command_serve_supervised(args)
    options = ServeOptions(
        host=args.host, port=args.port, aio=args.aio,
        max_concurrency=args.max_concurrency,
        dispatch_mode=args.dispatch_mode, stats=args.stats,
        trace_path=args.trace, metrics_port=args.metrics_port,
        max_pending=args.max_pending, fault_plan=args.fault_plan,
    )
    with open(args.input) as handle:
        text = handle.read()
    result = _compile_for_serving(args, text)
    stub_module = result.module
    impl = _load_servant(args.impl, stub_module)
    stub_server = StubServer(stub_module, impl)
    want_stats = options.stats or options.metrics_port is not None
    stats = ServerStats() if want_stats else None
    if options.trace_path:
        obs.configure(obs.JsonlExporter(options.trace_path))
        obs.instrument_stub_module(stub_module)
    if args.profile:
        # After tracing: profile wrappers then wrap trace wrappers, so
        # sampled codec calls carry span context for exemplars.
        obs.profile.configure(
            sample=args.profile_sample,
            registry=stats.registry if stats is not None else None,
        )
        obs.profile.instrument_stub_module(stub_module)
    fault_plan = None
    if options.fault_plan:
        from repro.faults import FaultPlan

        fault_plan = FaultPlan.load(options.fault_plan)
    tiering_engine = None
    tier_policy = _resolve_tiering(args)
    if tier_policy is not None:
        from repro.runtime.tiering import TieringEngine

        # Created after the trace/profile wrappers above so the
        # hotness wrappers sit outermost and count every call.
        tiering_engine = TieringEngine(
            result, policy=tier_policy,
            registry=stats.registry if stats is not None else None,
        )
    server_kwargs = {"stats": stats}
    if tiering_engine is not None:
        server_kwargs["tiering"] = tiering_engine
    if fault_plan is not None:
        server_kwargs["fault_plan"] = fault_plan
    if options.aio:
        server = stub_server.aio_server(
            options.host, options.port,
            max_concurrency=options.max_concurrency,
            dispatch_mode=options.dispatch_mode,
            drain_timeout=options.drain_timeout,
            max_pending=options.max_pending,
            **server_kwargs,
        )
        runtime_name = "asyncio runtime, %s dispatch" % options.dispatch_mode
    else:
        if options.max_pending is not None:
            raise FlickError(
                "--max-pending applies to the asyncio runtime; add --aio"
            )
        server = stub_server.tcp_server(
            options.host, options.port, **server_kwargs
        )
        runtime_name = "blocking thread-per-connection"
    metrics_server = None
    driver = SignalDriver().install()
    try:
        with server:
            host, port = server.address
            print(
                "serving %s (%s back end; %s) on %s:%d"
                % (result.stubs.interface_name, result.stubs.backend_name,
                   runtime_name, host, port),
                flush=True,
            )
            if options.trace_path:
                print("tracing spans to %s" % options.trace_path,
                      flush=True)
            if args.profile:
                print("profiling payload shapes to %s (1/%d sampling)"
                      % (args.profile, max(1, args.profile_sample)),
                      flush=True)
            if tiering_engine is not None:
                print(
                    "tiered execution on (%s): hot ops recompile at"
                    " score >= %d"
                    % (args.tiering, tiering_engine.policy.threshold),
                    flush=True,
                )
            if fault_plan is not None:
                print("fault plan active: %s" % options.fault_plan,
                      flush=True)
            if options.metrics_port is not None:
                metrics_server = obs.MetricsHttpServer(
                    stats.registry, options.host, options.metrics_port
                ).start()
                print(
                    "metrics on http://%s:%d/metrics"
                    % metrics_server.address[:2],
                    flush=True,
                )
            try:
                driver.wait(args.duration)
            except KeyboardInterrupt:
                driver.request_shutdown()
            if driver.shutdown_requested:
                # SIGTERM/SIGINT: bounded graceful drain — finish
                # in-flight replies, refuse new work, then exit 0.
                print("shutting down (draining in-flight requests)",
                      flush=True)
                server.drain(options.drain_timeout)
    finally:
        driver.uninstall()
        if metrics_server is not None:
            metrics_server.stop()
        if args.profile:
            # Profile wrappers wrap trace wrappers; unwind in reverse.
            snapshot = obs.profile.shutdown()
            if snapshot is not None:
                snapshot.save(args.profile)
                print("profile snapshot saved to %s" % args.profile,
                      flush=True)
        if options.trace_path:
            obs.shutdown()  # flush and close the span file
    if stats is not None:
        print(stats.format_table(), flush=True)
    return 0


def command_diff(args):
    """Classify the wire compatibility of two IDL versions."""
    import json

    from repro import api
    from repro.compat import diff_texts
    from repro.compat.report import (
        diff_exit_code,
        diff_report_json,
        diff_report_text,
    )

    with open(args.old) as handle:
        old_text = handle.read()
    with open(args.new) as handle:
        new_text = handle.read()
    from repro import frontends

    # Each side detects independently: a migration can diff an IDL file
    # against the pyschema .py that replaces it.
    old_lang = new_lang = args.lang
    if args.lang is None:
        try:
            old_lang = api.detect_lang(old_text, name=args.old)
        except FlickError:
            old_lang = None
        try:
            new_lang = api.detect_lang(new_text, name=args.new)
        except FlickError:
            new_lang = None
    lang = old_lang if old_lang == new_lang else None
    if args.protocol:
        protocols = tuple(args.protocol)
    else:
        fe = frontends.get(old_lang) if old_lang else None
        if fe is not None and fe.diff_protocols:
            protocols = fe.diff_protocols
        else:
            from repro.compat.ifacediff import DEFAULT_PROTOCOLS

            protocols = DEFAULT_PROTOCOLS
    diffs = diff_texts(
        old_text, new_text, lang, interface=args.interface,
        protocols=protocols, old_name=args.old, new_name=args.new,
    )
    if args.json:
        print(json.dumps(
            diff_report_json(diffs, args.old, args.new, lang=lang),
            indent=2, sort_keys=True,
        ))
    else:
        print(diff_report_text(diffs, args.old, args.new))
    return diff_exit_code(diffs)


def command_lint(args):
    """Flag schema-evolution hazards in one IDL file."""
    import json

    from repro.compat.lint import lint_text
    from repro.compat.report import (
        lint_exit_code,
        lint_report_json,
        lint_report_text,
    )

    with open(args.input) as handle:
        text = handle.read()
    findings, protocol = lint_text(
        text, args.lang, name=args.input, interface=args.interface,
        backend=args.protocol,
    )
    if args.json:
        print(json.dumps(
            lint_report_json(findings, args.input, lang=args.lang,
                             protocol=protocol),
            indent=2, sort_keys=True,
        ))
    else:
        print(lint_report_text(findings, args.input))
    return lint_exit_code(findings, fail_on=args.fail_on)


def _compile_bridge_sides(ingress_path, egress_path, ingress_backend,
                          egress_backend, lang, interface):
    from repro import api

    with open(ingress_path) as handle:
        ingress_text = handle.read()
    if egress_path is None or egress_path == ingress_path:
        egress_path, egress_text = ingress_path, ingress_text
    else:
        with open(egress_path) as handle:
            egress_text = handle.read()
    ingress = api.compile(
        ingress_text, lang, interface=interface, name=ingress_path,
        backend=ingress_backend,
    )
    egress = api.compile(
        egress_text, lang, interface=interface, name=egress_path,
        backend=egress_backend,
    )
    return ingress, egress, egress_path


def command_bridge(args):
    """Statically verify a protocol bridge (pair diff; exit 0/1/2)."""
    import json

    from repro.gateway import (
        bridge_exit_code,
        bridge_report_json,
        bridge_report_text,
        check_bridge,
        predict_fused,
    )

    ingress_backend = _backend_for_protocol(args.ingress_protocol)
    egress_backend = _backend_for_protocol(args.egress_protocol)
    ingress, egress, egress_path = _compile_bridge_sides(
        args.ingress, args.egress, ingress_backend, egress_backend,
        args.lang, args.interface,
    )
    diff = check_bridge(ingress, egress)
    predictions = predict_fused(ingress, egress)
    if args.json:
        document = bridge_report_json(diff, args.ingress, egress_path)
        document["fused"] = {
            op: {direction: prediction.to_json()
                 for direction, prediction in directions.items()}
            for op, directions in predictions.items()
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(bridge_report_text(diff, args.ingress, egress_path))
        print(_fused_prediction_text(predictions))
    return bridge_exit_code(diff)


def _fused_prediction_text(predictions):
    """Render per-op fused-fraction predictions for ``flick bridge``."""
    lines = ["predicted gateway cost (fused copy plans):"]
    total = 0
    fused_channels = 0
    for op in sorted(predictions):
        parts = []
        for direction in ("request", "reply"):
            prediction = predictions[op].get(direction)
            if prediction is None:
                continue
            total += 1
            fused_channels += prediction.fused
            parts.append(
                "%s %s (%.0f%% of bytes coverable)"
                % (direction,
                   "fused" if prediction.fused else "re-encode",
                   100.0 * prediction.byte_fraction)
            )
        lines.append("  %-20s %s" % (op, "; ".join(parts) or "oneway"))
    if total:
        lines.append(
            "  overall: %d/%d channels take the fused path"
            % (fused_channels, total))
    return "\n".join(lines)


def _command_gateway_supervised(args, ingress_backend, listen_host,
                                listen_port, egress_backend,
                                upstream_host, upstream_port,
                                upstream_path):
    from repro.runtime.supervisor import WorkerConfig

    for flag, name in ((args.trace, "--trace"),
                       (args.fault_plan, "--fault-plan"),
                       (args.upstream_fault_plan,
                        "--upstream-fault-plan")):
        if flag:
            raise FlickError(
                "%s is per-process; it is not supported with --workers"
                % name)
    _resolve_tiering(args)  # fail fast on a bad --tiering FILE
    template = WorkerConfig(
        kind="gateway", lang=args.lang, backend=ingress_backend,
        interface=args.interface, host=listen_host, port=listen_port,
        max_concurrency=args.max_concurrency,
        max_pending=args.max_pending, dispatch_mode="inline",
        profile_sample=args.profile_sample,
        upstream_host=upstream_host, upstream_port=upstream_port,
        upstream_backend=egress_backend,
        upstream_idl_path=(
            upstream_path if upstream_path != args.input else None),
        pool_size=args.pool_size, fuse=not args.no_fuse,
        tiering=args.tiering, sys_paths=[os.getcwd()],
    )
    return _run_supervised(
        args, template,
        what="%s->%s gateway" % (ingress_backend, egress_backend),
        profile=args.profile,
    )


def command_gateway(args):
    """Serve a bridge: ingress protocol in, egress protocol out."""
    from repro import obs
    from repro.gateway import (
        AioGatewayServer,
        bridge_exit_code,
        bridge_report_text,
        build_plan,
        check_bridge,
    )
    from repro.runtime import ServerStats
    from repro.runtime.signals import SignalDriver

    ingress_backend, listen_host, listen_port = _parse_endpoint(
        args.listen, "--listen")
    egress_backend, upstream_host, upstream_port = _parse_endpoint(
        args.upstream, "--upstream")
    if ingress_backend == egress_backend and args.upstream_idl is None:
        raise FlickError(
            "both endpoints speak %s; a gateway bridges two protocols"
            " (or two schemas: add --upstream-idl)" % ingress_backend
        )
    ingress, egress, upstream_path = _compile_bridge_sides(
        args.input, args.upstream_idl, ingress_backend, egress_backend,
        args.lang, args.interface,
    )
    if args.check:
        diff = check_bridge(ingress, egress)
        if bridge_exit_code(diff) >= 2:
            print(bridge_report_text(diff, args.input, upstream_path),
                  file=sys.stderr)
            print(
                "flick gateway: refusing to serve a BREAKING bridge"
                " (%s -> %s)" % (args.input, upstream_path),
                file=sys.stderr,
            )
            return 2
        print("bridge check: %s" % diff.verdict.name, flush=True)
    if args.workers is not None:
        return _command_gateway_supervised(
            args, ingress_backend, listen_host, listen_port,
            egress_backend, upstream_host, upstream_port, upstream_path)
    plan = build_plan(ingress, egress, fuse=not args.no_fuse)
    want_stats = args.stats or args.metrics_port is not None
    stats = ServerStats() if want_stats else None
    if args.trace:
        obs.configure(obs.JsonlExporter(args.trace))
    if args.profile:
        obs.profile.configure(
            sample=args.profile_sample,
            registry=stats.registry if stats is not None else None,
        )
    fault_plan = upstream_fault_plan = None
    if args.fault_plan or args.upstream_fault_plan:
        from repro.faults import FaultPlan

        if args.fault_plan:
            fault_plan = FaultPlan.load(args.fault_plan)
        if args.upstream_fault_plan:
            upstream_fault_plan = FaultPlan.load(args.upstream_fault_plan)
    tiering = _gateway_tiering(args, ingress, stats)
    server = AioGatewayServer(
        plan, upstream_host, upstream_port,
        pool_size=args.pool_size,
        upstream_fault_plan=upstream_fault_plan,
        host=listen_host, port=listen_port, stats=stats,
        max_concurrency=args.max_concurrency,
        max_pending=args.max_pending, fault_plan=fault_plan,
        tiering=tiering,
    )
    metrics_server = None
    driver = SignalDriver().install()
    try:
        with server:
            host, port = server.address
            print(
                "gateway %s: listening %s on %s:%d, forwarding %s to"
                " %s:%d (%d/%d requests fused)"
                % (plan.interface_name, ingress_backend, host, port,
                   egress_backend, upstream_host, upstream_port,
                   len(plan.fused_request_ops), len(plan.ops)),
                flush=True,
            )
            if args.trace:
                print("tracing spans to %s" % args.trace, flush=True)
            if args.metrics_port is not None:
                metrics_server = obs.MetricsHttpServer(
                    stats.registry, listen_host, args.metrics_port
                ).start()
                print(
                    "metrics on http://%s:%d/metrics"
                    % metrics_server.address[:2],
                    flush=True,
                )
            try:
                driver.wait(args.duration)
            except KeyboardInterrupt:
                driver.request_shutdown()
            if driver.shutdown_requested:
                print("shutting down (draining in-flight requests)",
                      flush=True)
                server.drain()
    finally:
        driver.uninstall()
        if metrics_server is not None:
            metrics_server.stop()
        if args.profile:
            snapshot = obs.profile.shutdown()
            if snapshot is not None:
                snapshot.save(args.profile)
                print("profile snapshot saved to %s" % args.profile,
                      flush=True)
        if args.trace:
            obs.shutdown()
    if stats is not None:
        print(stats.format_table(), flush=True)
    return 0


def _gateway_tiering(args, ingress, stats):
    """Tiering engines for a gateway: the ingress side only.

    The gateway's hot ingress-side codecs (``_u_req_*`` request
    decode, ``_m_rep_ok_*`` reply encode) are the ones the hotness
    counter covers; the egress-side encode/decode pair stays on its
    compile-time renderer.
    """
    policy = _resolve_tiering(args)
    if policy is None:
        return ()
    if getattr(ingress.stubs, "backend_instance", None) is None:
        return ()
    from repro.runtime.tiering import TieringEngine

    return (TieringEngine(
        ingress, policy=policy,
        registry=stats.registry if stats is not None else None,
    ),)


def _profile_summary(profile):
    """Derived, report-ready numbers for one OpProfile."""
    size = profile.size
    summary = {
        "calls": profile.calls,
        "sampled": profile.sampled,
        "size": {
            "mean": round(size.mean, 1),
            "p50": size.percentile(50),
            "p99": size.percentile(99),
            "max": size.max,
        },
        "channels": {},
        "arms": {},
    }
    for path, hist in sorted(profile.channels.items()):
        summary["channels"][path] = {
            "kind": hist.kind,
            "modes": [list(mode) for mode in hist.modes()],
            "p50": hist.percentile(50),
            "p99": hist.percentile(99),
        }
    for path, counter in sorted(profile.arms.items()):
        top, fraction = counter.skew()
        summary["arms"][path] = {
            "counts": counter.to_json(),
            "top": top,
            "skew": round(fraction, 4),
        }
    fused = profile.fused_fraction
    if fused is not None:
        summary["fused_fraction"] = round(fused, 4)
    for kind, hist in sorted(profile.codec.items()):
        summary.setdefault("codec", {})[kind] = {
            "p50_us": round(hist.percentile(50) * 1e6, 1),
            "p99_us": round(hist.percentile(99) * 1e6, 1),
        }
    if profile.exemplars:
        summary["exemplars"] = list(profile.exemplars)
    return summary


def _profile_text(op, profiles, hint):
    lines = ["%s:" % op]
    for profile in profiles:
        summary = _profile_summary(profile)
        size = summary["size"]
        lines.append(
            "  %-8s calls=%d sampled=%d  bytes p50=%d p99=%d max=%d"
            % (profile.direction, profile.calls, profile.sampled,
               size["p50"], size["p99"], size["max"]))
        for path, channel in summary["channels"].items():
            modes = ", ".join("%dx%d" % (value, count)
                              for value, count in channel["modes"])
            lines.append(
                "    %-24s %-5s p50=%-6d p99=%-6d modes: %s"
                % (path, channel["kind"], channel["p50"],
                   channel["p99"], modes))
        for path, arm in summary["arms"].items():
            lines.append(
                "    %-24s arm   top=%s (%.0f%%)  %s"
                % (path, arm["top"], 100.0 * arm["skew"],
                   " ".join("%s:%d" % item
                            for item in sorted(arm["counts"].items()))))
        if "fused_fraction" in summary:
            lines.append("    %-24s %.1f%% of messages fused"
                         % ("gateway", 100.0 * summary["fused_fraction"]))
        for exemplar in profile.exemplars[:3]:
            lines.append(
                "    slow exemplar: %.3f ms, %d bytes, trace=%s"
                % (1e3 * exemplar["duration_s"], exemplar.get("bytes", 0),
                   exemplar.get("trace_id")))
    renderer, reason, _scores = hint
    lines.append("  renderer hint: %s (%s)" % (renderer, reason))
    return "\n".join(lines)


def command_profile(args):
    import json

    from repro.obs.profile import (
        ProfileSnapshot,
        SNAPSHOT_VERSION,
        renderer_hint,
    )

    try:
        snapshot = ProfileSnapshot.load(args.snapshots[0])
        for path in args.snapshots[1:]:
            snapshot.merge(ProfileSnapshot.load(path))
    except ValueError as error:
        raise FlickError(str(error)) from None
    names = snapshot.op_names()
    if args.op is not None:
        if args.op not in names:
            raise FlickError(
                "operation %r is not in the snapshot (have: %s)"
                % (args.op, ", ".join(names) or "none"))
        names = [args.op]
    if args.json:
        document = {
            "version": SNAPSHOT_VERSION,
            "sample": snapshot.sample,
            "ops": {},
        }
        for op in names:
            profiles = snapshot.for_op(op)
            renderer, reason, scores = renderer_hint(profiles)
            document["ops"][op] = {
                "directions": {
                    profile.direction: profile.to_json()
                    for profile in profiles
                },
                "summary": {
                    profile.direction: _profile_summary(profile)
                    for profile in profiles
                },
                "renderer_hint": {
                    "renderer": renderer,
                    "reason": reason,
                    "scores": {name: round(score, 2)
                               for name, score in scores.items()},
                },
            }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    print("payload-shape profile (1/%d sampling, %d snapshot%s)"
          % (snapshot.sample, len(args.snapshots),
             "" if len(args.snapshots) == 1 else "s"))
    for op in names:
        profiles = snapshot.for_op(op)
        print(_profile_text(op, profiles, renderer_hint(profiles)))
    return 0


def _bucket_percentile(buckets, q):
    """Interpolated percentile from cumulative ``[(le, count)]``."""
    if not buckets:
        return 0.0
    buckets = sorted(buckets)
    total = buckets[-1][1]
    if not total:
        return 0.0
    rank = max(1, total * q / 100.0)
    previous = 0.0
    previous_count = 0
    for bound, cumulative in buckets:
        if cumulative >= rank:
            if bound == float("inf"):
                return previous
            span = cumulative - previous_count
            if not span:
                return bound
            return previous + (bound - previous) * (
                (rank - previous_count) / span)
        previous, previous_count = bound, cumulative
    return previous


def _top_rows(samples):
    """Per-op cumulative stats out of one parsed /metrics scrape."""
    rows = {}

    def row(op):
        return rows.setdefault(op, {
            "requests": 0.0, "errors": 0.0, "bytes": 0.0,
            "buckets": [], "fused": 0.0, "transcoded": 0.0,
            "tier_hot": 0, "tier_series": 0,
        })

    for labels, value in samples.get(
            "flick_server_requests_total", {}).items():
        labeldict = dict(labels)
        row(labeldict.get("op", "?"))["requests"] += value
    for labels, value in samples.get(
            "flick_server_errors_total", {}).items():
        labeldict = dict(labels)
        row(labeldict.get("op", "?"))["errors"] += value
    for labels, value in samples.get(
            "flick_server_latency_seconds_bucket", {}).items():
        labeldict = dict(labels)
        bound = labeldict.get("le", "+Inf")
        bound = float("inf") if bound == "+Inf" else float(bound)
        row(labeldict.get("op", "?"))["buckets"].append((bound, value))
    sample_rate = 1.0
    for _labels, value in samples.get(
            "flick_profile_sample_rate", {}).items():
        sample_rate = value or 1.0
    for labels, value in samples.get(
            "flick_profile_message_bytes_sum", {}).items():
        labeldict = dict(labels)
        # Sampled byte totals scale back up by the sampling rate.
        row(labeldict.get("op", "?"))["bytes"] += value * sample_rate
    for labels, value in samples.get(
            "flick_profile_transcode_total", {}).items():
        labeldict = dict(labels)
        entry = row(labeldict.get("op", "?"))
        entry["transcoded"] += value
        if labeldict.get("path") == "fused":
            entry["fused"] += value
    # flick_tier_current is one gauge series per (op, worker): count
    # how many of the op's workers run the recompiled tier.
    for labels, value in samples.get(
            "flick_tier_current", {}).items():
        labeldict = dict(labels)
        entry = row(labeldict.get("op", "?"))
        entry["tier_series"] += 1
        if value >= 1:
            entry["tier_hot"] += 1
    return rows


def _top_table(rows, previous=None, interval=None):
    header = ("%-20s %10s %8s %9s %9s %10s %7s %6s"
              % ("op", "requests" if previous is None else "req/s",
                 "errors", "p50 ms", "p99 ms",
                 "bytes" if previous is None else "bytes/s", "fused",
                 "tier"))
    lines = [header, "-" * len(header)]
    ranked = sorted(rows.items(),
                    key=lambda item: -item[1]["requests"])
    for op, stats in ranked:
        requests = stats["requests"]
        nbytes = stats["bytes"]
        if previous is not None:
            before = previous.get(op, {"requests": 0.0, "bytes": 0.0})
            requests = (requests - before["requests"]) / interval
            nbytes = (nbytes - before["bytes"]) / interval
        fused = ("%.0f%%" % (100.0 * stats["fused"] / stats["transcoded"])
                 if stats["transcoded"] else "-")
        series = stats.get("tier_series", 0)
        if not series:
            tier = "-"
        elif series == 1:
            tier = str(stats["tier_hot"])
        else:  # several workers: how many run the recompiled tier
            tier = "%d/%d" % (stats["tier_hot"], series)
        lines.append(
            "%-20s %10.1f %8d %9.2f %9.2f %10s %7s %6s"
            % (op, requests, stats["errors"],
               1e3 * _bucket_percentile(stats["buckets"], 50),
               1e3 * _bucket_percentile(stats["buckets"], 99),
               _human_bytes(nbytes), fused, tier))
    return "\n".join(lines)


def _human_bytes(n):
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024.0:
            return "%.1f%s" % (n, unit)
        n /= 1024.0
    return "%.1fTiB" % n


def command_top(args):
    import time
    import urllib.error
    import urllib.request

    from repro.obs.metrics import parse_prometheus

    host, _sep, port = args.target.rpartition(":")
    if not host or not port.isdigit():
        raise FlickError(
            "top target must look like HOST:PORT, got %r" % args.target)
    url = "http://%s:%s/metrics" % (host, port)

    def scrape():
        try:
            with urllib.request.urlopen(url, timeout=5.0) as response:
                text = response.read().decode("utf-8")
        except (urllib.error.URLError, TimeoutError) as error:
            raise FlickError("cannot scrape %s: %s" % (url, error)) \
                from None
        try:
            return _top_rows(parse_prometheus(text))
        except ValueError as error:
            raise FlickError("bad exposition from %s: %s" % (url, error)) \
                from None

    if args.once:
        rows = scrape()
        print("flick top %s (cumulative totals)" % args.target)
        print(_top_table(rows))
        return 0
    previous = scrape()
    try:
        while True:
            time.sleep(args.interval)
            rows = scrape()
            sys.stdout.write("\x1b[2J\x1b[H")
            print("flick top %s  every %.1fs  (ctrl-c to quit)"
                  % (args.target, args.interval))
            print(_top_table(rows, previous, args.interval))
            sys.stdout.flush()
            previous = rows
    except KeyboardInterrupt:
        return 0


def command_list(_args):
    from repro import frontends
    from repro.backend import BACKENDS
    from repro.pgen import PRESENTATIONS
    from repro.compilers import BASELINES

    print("front ends:     %s" % ", ".join(frontends.names()))
    for fe in frontends.all_frontends():
        print("  %-10s %s (suffixes: %s%s)"
              % (fe.name, fe.description, ", ".join(fe.suffixes),
                 "" if fe.has_aoi else "; conjoined, no AOI"))
    print("presentations:  %s" % ", ".join(sorted(PRESENTATIONS)))
    print("back ends:      %s" % ", ".join(sorted(BACKENDS)))
    print("baselines:      %s" % ", ".join(sorted(BASELINES)))
    return 0


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "compile":
            return command_compile(args)
        if args.command == "ir":
            return command_ir(args)
        if args.command == "inspect":
            return command_inspect(args)
        if args.command == "serve":
            return command_serve(args)
        if args.command == "diff":
            return command_diff(args)
        if args.command == "lint":
            return command_lint(args)
        if args.command == "bridge":
            return command_bridge(args)
        if args.command == "gateway":
            return command_gateway(args)
        if args.command == "profile":
            return command_profile(args)
        if args.command == "top":
            return command_top(args)
        if args.command == "list":
            return command_list(args)
    except (FlickError, OSError) as error:
        print("flick: error: %s" % error, file=sys.stderr)
        # diff/lint/bridge reserve 1 and 2 for verdicts; 3 = did not run.
        return 3 if args.command in ("diff", "lint", "bridge") else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
