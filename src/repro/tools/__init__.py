"""Command-line tools."""
