"""Ablation: message demultiplexing (paper section 3.3).

Paper: the server dispatch function decodes discriminators in machine-word
chunks through a ``switch`` (hashed lookup here) with unmarshal code
inlined into the dispatch path, instead of comparing operation identifiers
one by one.

Toggled flag: ``hash_demux``.  Workload: a 48-operation interface, timing
dispatch of the *last* operation (the linear chain's worst case, a string
comparison per miss under IIOP).
"""

import time

import pytest

from repro import Flick, OptFlags
from repro.encoding import MarshalBuffer

from benchmarks.harness import fmt, print_table

OPERATIONS = 96

IDL = "interface Wide {\n%s\n};" % "\n".join(
    "  void op_%02d(in long x);" % index for index in range(OPERATIONS)
)


def measure_dispatch(module, operation, budget=0.05):
    request = MarshalBuffer()
    getattr(module, "_m_req_%s" % operation)(request, 1, 7)
    data = request.getvalue()

    class _Impl:
        def __getattr__(self, _name):
            return lambda *args: None

    impl = _Impl()
    reply = MarshalBuffer()
    module.dispatch(data, impl, reply)
    iterations = 0
    clock = time.perf_counter
    start = clock()
    while True:
        reply.reset()
        module.dispatch(data, impl, reply)
        iterations += 1
        if clock() - start >= budget:
            break
    return iterations / (clock() - start)


def run(budget=0.05):
    data = {}
    for label, flags in (
        ("hash", OptFlags()),
        ("linear", OptFlags(hash_demux=False)),
    ):
        module = Flick(
            frontend="corba", backend="iiop", flags=flags
        ).compile(IDL).load_module()
        data[(label, "first")] = measure_dispatch(
            module, "op_00", budget
        )
        data[(label, "last")] = measure_dispatch(
            module, "op_%02d" % (OPERATIONS - 1), budget
        )
    rows = [
        [position, fmt(data[("hash", position)] / 1000),
         fmt(data[("linear", position)] / 1000)]
        for position in ("first", "last")
    ]
    return rows, data


class TestDemuxAblation:
    def test_hashed_demux_beats_linear_scan(self, benchmark):
        rows, data = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table(
            "Ablation (sec. 3.3): hashed vs linear demux;"
            " dispatches/ms, %d-operation interface" % OPERATIONS,
            ("operation", "hash", "linear"),
            rows,
        )
        # The last operation pays the full linear scan.
        assert data[("hash", "last")] > 1.1 * data[("linear", "last")]
        # Hashing is position-independent; linear degrades with position.
        hash_spread = (
            data[("hash", "first")] / data[("hash", "last")]
        )
        linear_spread = (
            data[("linear", "first")] / data[("linear", "last")]
        )
        assert linear_spread > hash_spread
