"""Figure 4: end-to-end throughput across 10 Mbps Ethernet.

Paper: "the maximum end-to-end throughput of all the compilers' stubs is
approximately 6-7.5 Mbps when communicating across a 10Mbps Ethernet.
Flick's optimizations have relatively little impact on overall
throughput" — the slow wire is the bottleneck for everyone.
"""

import pytest

from repro.runtime import ETHERNET_10

from benchmarks.harness import (
    client_class_name,
    compiled,
    fmt,
    measure_end_to_end,
    print_table,
    record_prefix,
    workload_args,
)

COMPILERS = ("flick-xdr", "rpcgen", "powerrpc")
SIZES = (64, 1024, 16384, 262144)


def run_series(budget=0.03):
    rows = []
    data = {}
    for size in SIZES:
        row = [str(size)]
        for name in COMPILERS:
            _result, module = compiled(name)
            args = workload_args(module, "ints", size, record_prefix(name))
            mbps = measure_end_to_end(
                module, client_class_name(name), "ints", args,
                ETHERNET_10, size, budget=budget,
            )
            data[(name, size)] = mbps
            row.append(fmt(mbps))
        rows.append(row)
    return rows, data


class TestFigure4:
    def test_series(self, benchmark):
        rows, data = benchmark.pedantic(run_series, rounds=1, iterations=1)
        print_table(
            "Figure 4: end-to-end over 10Mbps Ethernet (int arrays), Mbit/s",
            ("bytes",) + COMPILERS,
            rows,
        )
        # Everyone is wire-limited: below the 7.5 Mbps effective cap...
        for (name, size), mbps in data.items():
            assert mbps < 7.6, (name, size, mbps)
        # ...and at large sizes all compilers converge near the cap:
        # marshal quality has little impact (the paper's observation).
        largest = SIZES[-1]
        flick = data[("flick-xdr", largest)]
        rpcgen = data[("rpcgen", largest)]
        assert flick > 5.0
        assert flick / rpcgen < 2.0
