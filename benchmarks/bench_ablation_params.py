"""Ablation: parameter storage management (paper section 3.1).

Paper: unmarshaled data can live "within the marshal buffer itself ...
especially important when the encoded and target language data formats of
an object are identical", valid for ``in`` parameters because servants may
not keep references after returning.  The reproduction presents large
received byte arrays as zero-copy views into the receive buffer.

Toggled flag: ``zero_copy_server``.  Workload: opaque blobs.
"""

import pytest

from repro import Flick, OptFlags

from benchmarks.harness import fmt, measure_unmarshal, print_table

IDL = """
typedef opaque blob<>;
program STORE {
  version SV {
    void put(blob) = 1;
  } = 1;
} = 0x20000055;
"""


def run(budget=0.05):
    data = {}
    for label, flags in (
        ("view", OptFlags(zero_copy_server=True)),
        ("copy", OptFlags()),
    ):
        module = Flick(
            frontend="oncrpc", flags=flags
        ).compile(IDL).load_module()
        for size in (1024, 65536, 1048576):
            payload = bytes(size)
            mbps, _m = measure_unmarshal(
                module, "put", (payload,), body_offset=40, budget=budget,
                as_view=(label == "view"),
            )
            data[(label, size)] = mbps
    rows = []
    for size in (1024, 65536, 1048576):
        view, copy = data[("view", size)], data[("copy", size)]
        rows.append([str(size), fmt(view), fmt(copy),
                     "%.0f%%" % (100 * (view / copy - 1))])
    return rows, data


class TestParameterStorageAblation:
    def test_buffer_reuse_helps_large_data(self, benchmark):
        rows, data = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table(
            "Ablation (sec. 3.1): unmarshaled data in the receive buffer"
            " (view) vs copied out; blob unmarshal MB/s",
            ("bytes", "view", "copy", "speedup"),
            rows,
        )
        # The paper: reuse of marshal buffer space matters most when the
        # amount of data is large.
        assert data[("view", 1048576)] > data[("copy", 1048576)]
        large_gain = data[("view", 1048576)] / data[("copy", 1048576)]
        small_gain = data[("view", 1024)] / data[("copy", 1024)]
        assert large_gain > small_gain
