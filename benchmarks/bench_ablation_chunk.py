"""Ablation: chunk analysis (paper section 3.2).

Paper: addressing fixed-layout message regions through a chunk pointer at
constant offsets — here, coalescing a region into a single multi-field
``struct.pack_into`` — "can reduce some data marshaling times by 14%".

Toggled flag: ``chunk_atoms``.  Workload: rectangle arrays, whose 16-byte
elements are the paper's fixed-layout case.
"""

import pytest

from repro import Flick, OptFlags
from repro.workloads import BENCH_IDL_ONC, make_rect_array

from benchmarks.harness import fmt, measure_marshal, print_table


def run(budget=0.05):
    data = {}
    for label, flags in (
        ("on", OptFlags()),
        ("off", OptFlags().disable_pass("chunk_atoms")),
    ):
        module = Flick(
            frontend="oncrpc", flags=flags
        ).compile(BENCH_IDL_ONC).load_module()
        for size in (1024, 65536):
            args = (make_rect_array(module, size, record_prefix=""),)
            data[(label, size)], _m = measure_marshal(
                module, "rects", args, budget=budget
            )
    rows = []
    for size in (1024, 65536):
        on, off = data[("on", size)], data[("off", size)]
        rows.append([str(size), fmt(on), fmt(off),
                     "%.0f%%" % (100 * (1 - off / on))])
    return rows, data


class TestChunkAblation:
    def test_chunking_helps_fixed_layouts(self, benchmark):
        rows, data = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table(
            "Ablation (sec. 3.2): chunked vs per-atom packs; rect arrays"
            " marshal MB/s",
            ("bytes", "chunked", "per-atom", "time saved"),
            rows,
        )
        # Paper: ~14% reduction; the per-atom penalty is larger in
        # Python, so require at least the paper's effect.
        for size in (1024, 65536):
            saved = 1 - data[("off", size)] / data[("on", size)]
            assert saved > 0.14, (size, saved)
