"""Throughput under injected wire faults: the cost of surviving.

Not a paper figure: this benchmark characterizes the hostile-wire
hardening layer.  The same pooled client drives the same asyncio echo
server twice — once clean, once with a seeded 1 % bit-corruption
:class:`~repro.faults.FaultPlan` applied to every inbound record — and
every call is idempotent with retry enabled, so the corrupted requests
are answered with protocol error replies (or orphaned, when the flipped
bit lands in the XID) and transparently retried.

The numbers to watch: **all calls complete** despite the faults, the
server's malformed-frame counter matches the injector's realized
corruption count, and aggregate throughput degrades gracefully rather
than collapsing (each corrupted call costs one error-reply round trip or
one deadline window, amortized across the worker pool).
"""

from __future__ import annotations

import asyncio
import time

from benchmarks.harness import compiled, fmt, print_table, save_json
from repro.encoding import MarshalBuffer
from repro.faults import FaultPlan
from repro.runtime import StubServer
from repro.runtime.aio import (
    CallOptions,
    CircuitBreaker,
    ClientStats,
    ConnectionPool,
    RetryPolicy,
    ServerStats,
)
from repro.workloads import make_int_array

WORKERS = 8
CALLS_PER_WORKER = 75
POOL_SIZE = 4

#: The headline plan: 1 % of inbound records get one flipped bit.
CORRUPT_PROBABILITY = 0.01
PLAN_SEED = 20260806

#: Per-attempt deadline; a corrupted XID orphans the reply, so this is
#: the worst-case cost of one corrupted call before its retry.
DEADLINE_S = 0.25


class EchoServant:
    def ints(self, values):
        pass


def _request_bytes(module):
    buffer = MarshalBuffer()
    module._m_req_ints(buffer, 1, make_int_array(64))
    return buffer.getvalue()


def _drive(address, request, client_stats):
    """Run the fixed call matrix; returns (calls/s, failures)."""
    failures = []
    elapsed = [0.0]

    async def main():
        pool = ConnectionPool(
            *address, pool_size=POOL_SIZE, stats=client_stats,
            breaker=CircuitBreaker(failure_threshold=16,
                                   recovery_time=0.05),
            options=CallOptions(
                deadline=DEADLINE_S, idempotent=True,
                retry_deadlines=True,
                retry=RetryPolicy(max_attempts=8, base_delay=0.01),
            ),
        )

        async def worker():
            for _ in range(CALLS_PER_WORKER):
                try:
                    await pool.acall(request)
                except Exception as error:
                    failures.append(repr(error))

        start = time.perf_counter()
        await asyncio.gather(*[worker() for _ in range(WORKERS)])
        elapsed[0] = time.perf_counter() - start
        await pool.aclose()

    asyncio.run(main())
    total = WORKERS * CALLS_PER_WORKER
    return total / elapsed[0], failures


def _measure():
    _result, module = compiled("flick-xdr")
    request = _request_bytes(module)
    runs = {}
    for label, plan in (
        ("clean", None),
        ("corrupt_1pct", FaultPlan(seed=PLAN_SEED,
                                   corrupt=CORRUPT_PROBABILITY)),
    ):
        stats = ServerStats()
        client_stats = ClientStats()
        server = StubServer(module, EchoServant()).aio_server(
            dispatch_mode="inline", stats=stats, fault_plan=plan,
        )
        with server:
            rate, failures = _drive(
                server.address, request, client_stats
            )
            # The server must still be healthy after the fault storm.
            check, check_failures = _drive(
                server.address, request, ClientStats()
            )
        injector = server._injector
        runs[label] = {
            "calls_per_s": rate,
            "failures": failures + check_failures,
            "post_storm_calls_per_s": check,
            "corrupted_frames": (
                injector.counts["corrupt"] if injector else 0
            ),
            "malformed_replies": stats.malformed.value,
            "retries": client_stats.retries.value,
            "deadline_expiries": client_stats.deadline_expiries.value,
            "remote_errors": client_stats.remote_errors.value,
        }
    return runs


class TestFaultRecovery:
    def test_throughput_under_corruption(self, benchmark):
        runs = benchmark.pedantic(_measure, rounds=1, iterations=1)
        clean, hostile = runs["clean"], runs["corrupt_1pct"]
        print_table(
            "Echo throughput under %.0f%% record corruption (calls/s)"
            % (CORRUPT_PROBABILITY * 100),
            ("run", "calls/s", "corrupted", "retries", "failures"),
            [
                [label, fmt(run["calls_per_s"]),
                 str(run["corrupted_frames"]), str(run["retries"]),
                 str(len(run["failures"]))]
                for label, run in runs.items()
            ],
            save_as="fault_recovery",
        )
        save_json("fault_recovery", {
            "workers": WORKERS,
            "calls_per_worker": CALLS_PER_WORKER,
            "corrupt_probability": CORRUPT_PROBABILITY,
            "plan_seed": PLAN_SEED,
            "deadline_s": DEADLINE_S,
            "runs": runs,
        })
        # Every idempotent call completed, clean or hostile.
        assert clean["failures"] == []
        assert hostile["failures"] == [], hostile["failures"][:5]
        # Faults actually fired and were answered or retried through.
        assert hostile["corrupted_frames"] >= 1
        assert hostile["retries"] >= 1
        # Graceful degradation, not collapse.
        assert hostile["calls_per_s"] > 0.05 * clean["calls_per_s"], runs
        assert hostile["post_storm_calls_per_s"] > 0
