"""Table 3: tested IDL compilers and their attributes.

Reprints the paper's compiler matrix as implemented by this reproduction
and verifies every listed configuration actually compiles the benchmark
interface and serves a call.
"""

import pytest

from repro import api
from repro.compilers import COMPILER_ATTRIBUTES, make_baseline
from repro.runtime import LoopbackTransport
from repro.workloads import BENCH_IDL_CORBA, BENCH_IDL_ONC, MIG_BENCH_IDL

from benchmarks.harness import print_table


def build_all():
    """Build one working client per Table 3 row; returns row statuses."""
    onc = api.compile(BENCH_IDL_ONC, "oncrpc")
    corba = api.compile(BENCH_IDL_CORBA, "corba", backend="iiop")
    onc_mach = api.compile(BENCH_IDL_ONC, "oncrpc", backend="mach3")
    mig_presc = api.compile(MIG_BENCH_IDL, "mig").presc

    class _Impl:
        def __getattr__(self, _name):
            return lambda *args: None

    def check(module, client_name):
        client = getattr(module, client_name)(
            LoopbackTransport(module.dispatch, _Impl())
        )
        client.ints([1, 2, 3])
        return "ok"

    statuses = {}
    statuses[("rpcgen", "ONC")] = check(
        make_baseline("rpcgen").generate(onc.presc).load(),
        "BENCH_BENCHVClient",
    )
    statuses[("PowerRPC", "CORBA-like")] = check(
        make_baseline("powerrpc").generate(onc.presc).load(),
        "BENCH_BENCHVClient",
    )
    statuses[("Flick", "ONC")] = check(
        onc.load_module(), "BENCH_BENCHVClient"
    )
    statuses[("ORBeline", "CORBA")] = check(
        make_baseline("orbeline").generate(corba.presc).load(),
        "Bench_BenchClient",
    )
    statuses[("ILU", "CORBA")] = check(
        make_baseline("ilu").generate(corba.presc).load(),
        "Bench_BenchClient",
    )
    statuses[("Flick", "CORBA")] = check(
        corba.load_module(), "Bench_BenchClient"
    )
    statuses[("MIG", "MIG")] = check(
        make_baseline("mig").generate(mig_presc).load(), "benchClient"
    )
    statuses[("Flick", "ONC", "mach")] = check(
        onc_mach.load_module(), "BENCH_BENCHVClient"
    )
    return statuses


class TestTable3:
    def test_compilers_and_attributes(self, benchmark):
        statuses = benchmark.pedantic(build_all, rounds=1, iterations=1)
        rows = [
            list(row) for row in COMPILER_ATTRIBUTES
        ]
        print_table(
            "Table 3: tested IDL compilers and their attributes",
            ("compiler", "origin", "IDL", "encoding", "transport"),
            rows,
        )
        assert all(status == "ok" for status in statuses.values())
        assert len(statuses) == len(COMPILER_ATTRIBUTES)
