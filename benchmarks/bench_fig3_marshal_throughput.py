"""Figure 3: marshal throughput.

Paper: "Flick-generated marshal code is between 2 and 5 times faster for
small messages and between 5 and 17 times faster for large messages"
(versus rpcgen, PowerRPC, ILU, ORBeline).  Integer arrays marshal faster
than structure arrays because the memcpy/batched-copy optimization applies
only to arrays of atomic types.

This module regenerates the figure's series: three workloads (integer
arrays, rectangle arrays, directory entries) across message sizes, for
Flick and the four comparators.
"""

import pytest

from benchmarks.harness import (
    compiled,
    fmt,
    measure_marshal,
    print_table,
    record_prefix,
    workload_args,
)

COMPILERS = ("flick-xdr", "rpcgen", "powerrpc", "orbeline", "ilu")

INT_SIZES = (64, 1024, 16384, 262144, 1048576)
RECT_SIZES = (64, 1024, 16384, 262144)
DIR_SIZES = (256, 4096, 65536, 262144)


def _series(workload, sizes, budget):
    rows = []
    data = {}
    for size in sizes:
        row = [str(size)]
        for name in COMPILERS:
            _result, module = compiled(name)
            args = workload_args(module, workload, size,
                                 record_prefix(name))
            mbps, _message = measure_marshal(
                module, workload, args, budget=budget
            )
            data[(name, size)] = mbps
            row.append(fmt(mbps))
        rows.append(row)
    return rows, data


class TestFigure3:
    @pytest.mark.parametrize("workload,sizes", [
        ("ints", INT_SIZES),
        ("rects", RECT_SIZES),
        ("dirents", DIR_SIZES),
    ])
    def test_series(self, benchmark, workload, sizes):
        def run():
            return _series(workload, sizes, budget=0.03)

        rows, data = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table(
            "Figure 3 (%s): marshal throughput, MB/s" % workload,
            ("bytes",) + COMPILERS,
            rows,
        )
        # Shape assertions: Flick wins against every comparator at every
        # size, and by a large factor on big messages.  The big-message
        # factor is largest for integer arrays (where bulk copying
        # applies), smaller for structure arrays — both as in the paper.
        for size in sizes:
            flick = data[("flick-xdr", size)]
            for name in COMPILERS[1:]:
                ratio = flick / data[(name, size)]
                assert ratio > 1.3, (workload, size, name, ratio)
        largest = sizes[-1]
        big_ratio = data[("flick-xdr", largest)] / data[("rpcgen", largest)]
        assert big_ratio > (4.0 if workload == "ints" else 2.0), (
            workload, big_ratio,
        )

    def test_int_arrays_faster_than_struct_arrays(self, benchmark):
        """The paper: Flick processes integer arrays more quickly than
        structure arrays because memcpy applies only to atomic arrays."""
        def run():
            _res, module = compiled("flick-xdr")
            ints, _ = measure_marshal(
                module, "ints",
                workload_args(module, "ints", 65536, ""), budget=0.05,
            )
            rects, _ = measure_marshal(
                module, "rects",
                workload_args(module, "rects", 65536, ""), budget=0.05,
            )
            return ints, rects

        ints, rects = benchmark.pedantic(run, rounds=1, iterations=1)
        assert ints > rects

    def test_headline_marshal_point(self, benchmark):
        """The pytest-benchmark row for the headline point: Flick
        marshaling a 64KB integer array."""
        _res, module = compiled("flick-xdr")
        args = workload_args(module, "ints", 65536, "")
        from repro.encoding import MarshalBuffer

        buffer = MarshalBuffer()

        def run():
            buffer.reset()
            module._m_req_ints(buffer, 1, *args)

        benchmark(run)

    @pytest.mark.parametrize("name", COMPILERS)
    def test_compiler_1k_ints(self, benchmark, name):
        """Comparable pytest-benchmark rows: 1KB integer array."""
        _res, module = compiled(name)
        args = workload_args(module, "ints", 1024, record_prefix(name))
        from repro.encoding import MarshalBuffer

        buffer = MarshalBuffer()
        marshal = getattr(module, "_m_req_ints")

        def run():
            buffer.reset()
            marshal(buffer, 1, *args)

        benchmark(run)
