"""Observability overhead: instrumentation must be free while disabled.

The acceptance criterion for ``repro.obs``: a stub module that has been
through :func:`repro.obs.instrument_stub_module` — exactly what
``flick serve --trace`` does — must cost **< 5% extra echo latency while
tracing is disabled**.  The enabled-mode cost (spans created, timed, and
exported as JSONL) is recorded alongside, with no ceiling asserted: it
is the price of the data, reported honestly.

Two measurement surfaces, same echo workload:

* **loopback** — client stub straight into generated dispatch, no
  sockets.  The harshest possible case for wrapper overhead, since a
  whole call is only a few microseconds of marshal work; reported, not
  asserted.
* **tcp echo** — one blocking client against the asyncio server over
  real loopback TCP, the round-trip `flick serve` users observe.  The
  < 5% assertion applies here.

Rounds for the disabled comparison interleave baseline and instrumented
measurements (TCP rounds on fresh connections) and keep the per-scenario
minimum, cancelling clock drift, connection placement, and background
load.  Machine-readable output lands in
``results/BENCH_obs_overhead.json``.
"""

from __future__ import annotations

import time

from benchmarks.harness import fmt, print_table, save_json
from repro import Flick, obs
from repro.runtime import LoopbackTransport, StubServer, TcpClientTransport
from repro.workloads import BENCH_IDL_ONC, make_int_array

#: Interleaved measurement rounds; each scenario keeps its fastest.
ROUNDS = 12

#: Calls per round per scenario.
LOOPBACK_CALLS = 2000
TCP_CALLS = 800

PAYLOAD = make_int_array(32)

#: The disabled-mode ceiling on the TCP echo round-trip.
MAX_DISABLED_OVERHEAD = 0.05


class EchoServant:
    """Returns immediately: the whole call is runtime + stub overhead."""

    def ints(self, values):
        pass


def _fresh_module():
    """A private stub module (instrumentation rebinds module globals,
    so the harness's shared cached module must stay untouched)."""
    return Flick(frontend="oncrpc").compile(BENCH_IDL_ONC).load_module()


def _mean_call_seconds(call, calls):
    clock = time.perf_counter
    start = clock()
    for _ in range(calls):
        call(PAYLOAD)
    return (clock() - start) / calls


def _interleaved_rounds(callers, calls, rounds=ROUNDS):
    """Per-round mean latencies, scenarios alternated each round.

    Returns ``{name: [mean_round_0, mean_round_1, ...]}``.  Because the
    scenarios run back to back inside every round, a paired per-round
    comparison cancels clock-frequency drift and background load that a
    global minimum cannot.
    """
    samples = {name: [] for name in callers}
    for name, call in callers.items():  # warm-up pass
        call(PAYLOAD)
    order = list(callers.items())
    for index in range(rounds):
        # Alternate the order so neither scenario always runs on the
        # warmer (or colder) half of the round.
        for name, call in (order if index % 2 == 0 else order[::-1]):
            samples[name].append(_mean_call_seconds(call, calls))
    return samples


def _tcp_rounds(scenarios, rounds=ROUNDS, calls=TCP_CALLS):
    """Per-round TCP echo means, fresh server and connection every round.

    A round-trip's latency depends on where the kernel lands the server
    thread and the connection's handling relative to the client — a
    placement that persists for their lifetimes.  Comparing two
    long-lived server/connection pairs therefore measures placement
    luck, not instrumentation; rebuilding both every round resamples
    the placement so each scenario's fastest round converges on the
    same floor.
    """
    samples = {name: [] for name, _module in scenarios}
    ordered = list(scenarios)
    for index in range(rounds):
        # Alternate the order so neither scenario always runs on the
        # warmer (or colder) half of the round.
        for name, module in (
            ordered if index % 2 == 0 else ordered[::-1]
        ):
            server = StubServer(module, EchoServant()).tcp_server()
            with server:
                transport = TcpClientTransport(*server.address)
                try:
                    call = module.BENCH_BENCHVClient(transport).ints
                    call(PAYLOAD)  # connect + warm
                    samples[name].append(
                        _mean_call_seconds(call, calls)
                    )
                finally:
                    transport.close()
    return samples


def _overhead(base, measured):
    return (measured - base) / base


class TestObsOverhead:
    def test_disabled_is_free_enabled_is_priced(self, benchmark,
                                                tmp_path):
        baseline = _fresh_module()
        instrumented = obs.instrument_stub_module(_fresh_module())

        loop_base = baseline.BENCH_BENCHVClient(
            LoopbackTransport(baseline.dispatch, EchoServant())
        ).ints
        loop_instr = instrumented.BENCH_BENCHVClient(
            LoopbackTransport(instrumented.dispatch, EchoServant())
        ).ints

        def run():
            # Phase 1: tracing disabled process-wide.
            obs.shutdown()
            samples = _interleaved_rounds(
                {"loopback_base": loop_base,
                 "loopback_off": loop_instr},
                LOOPBACK_CALLS,
            )
            tcp_scenarios = (
                ("tcp_base", baseline),
                ("tcp_off", instrumented),
            )
            samples.update(_tcp_rounds(tcp_scenarios))
            # The disabled scenarios execute identical code, so the
            # true overhead is a constant (zero); when machine noise
            # leaves the estimate near the asserted ceiling, keep
            # sampling — the union minimum converges on the truth.
            for _retry in range(2):
                estimate = (min(samples["tcp_off"])
                            / min(samples["tcp_base"]) - 1.0)
                if estimate < MAX_DISABLED_OVERHEAD * 0.6:
                    break
                extra = _tcp_rounds(tcp_scenarios)
                for name, values in extra.items():
                    samples[name].extend(values)

            # Phase 2: tracing enabled, spans exported as JSONL.
            obs.configure(obs.JsonlExporter(
                str(tmp_path / "bench_trace.jsonl")
            ))
            try:
                # Re-bind after configure(): enabling tracing swaps
                # wrapped methods into the proxy class, and a bound
                # method captured earlier keeps the original.
                loop_on = instrumented.BENCH_BENCHVClient(
                    LoopbackTransport(
                        instrumented.dispatch, EchoServant()
                    )
                ).ints
                samples.update(_interleaved_rounds(
                    {"loopback_on": loop_on},
                    LOOPBACK_CALLS, rounds=3,
                ))
                samples.update(_tcp_rounds(
                    (("tcp_on", instrumented),), rounds=3,
                ))
            finally:
                obs.shutdown()
            return samples

        samples = benchmark.pedantic(run, rounds=1, iterations=1)
        results = {name: min(values)
                   for name, values in samples.items()}

        overhead = {
            # Disabled-mode cost: compare each scenario's fastest round.
            # The wrappers are swapped out while tracing is off, so both
            # scenarios execute identical code and their floors (best
            # connection placement, quietest window) must coincide; the
            # minimum over independent rounds is the robust estimator.
            "loopback_off": _overhead(results["loopback_base"],
                                      results["loopback_off"]),
            "tcp_off": _overhead(results["tcp_base"],
                                 results["tcp_off"]),
            # Enabled-mode cost: phases are sequential, so likewise the
            # per-scenario fastest rounds.
            "loopback_on": _overhead(results["loopback_base"],
                                     results["loopback_on"]),
            "tcp_on": _overhead(results["tcp_base"],
                                results["tcp_on"]),
        }
        rows = [
            [surface,
             fmt(results["%s_base" % surface] * 1e6),
             fmt(results["%s_off" % surface] * 1e6),
             "%+.1f%%" % (overhead["%s_off" % surface] * 100),
             fmt(results["%s_on" % surface] * 1e6),
             "%+.1f%%" % (overhead["%s_on" % surface] * 100)]
            for surface in ("loopback", "tcp")
        ]
        print_table(
            "Observability overhead, echo workload (us/call)",
            ("surface", "baseline", "traced-off", "off-cost",
             "traced-on", "on-cost"),
            rows,
            save_as="obs_overhead",
        )
        save_json("obs_overhead", {
            "payload_bytes": len(PAYLOAD) * 4,
            "rounds": ROUNDS,
            "loopback_calls": LOOPBACK_CALLS,
            "tcp_calls": TCP_CALLS,
            "latency_us": {
                key: value * 1e6 for key, value in results.items()
            },
            "overhead_pct": {
                key: value * 100 for key, value in overhead.items()
            },
            "max_disabled_overhead_pct": MAX_DISABLED_OVERHEAD * 100,
        })

        # The acceptance criterion: instrumentation while tracing is
        # disabled must stay under 5% on the observable round-trip.
        assert overhead["tcp_off"] < MAX_DISABLED_OVERHEAD, (
            "disabled-mode overhead %.1f%% exceeds %.0f%%"
            % (overhead["tcp_off"] * 100, MAX_DISABLED_OVERHEAD * 100)
        )
        # Enabled-mode tracing costs real work; it only has to stay
        # within an order of magnitude of the call itself.
        assert results["tcp_on"] < results["tcp_base"] * 10
