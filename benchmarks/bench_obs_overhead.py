"""Observability overhead: instrumentation must be free while disabled.

The acceptance criterion for ``repro.obs``: a stub module that has been
through :func:`repro.obs.instrument_stub_module` — exactly what
``flick serve --trace`` does — must cost **< 5% extra echo latency while
tracing is disabled**.  The enabled-mode cost (spans created, timed, and
exported as JSONL) is recorded alongside, with no ceiling asserted: it
is the price of the data, reported honestly.

Two measurement surfaces, same echo workload:

* **loopback** — client stub straight into generated dispatch, no
  sockets.  The harshest possible case for wrapper overhead, since a
  whole call is only a few microseconds of marshal work; reported, not
  asserted.
* **tcp echo** — one blocking client against the asyncio server over
  real loopback TCP, the round-trip `flick serve` users observe.  The
  < 5% assertion applies here.

Rounds for the disabled comparison interleave baseline and instrumented
measurements (TCP rounds on fresh connections) and keep the per-scenario
minimum, cancelling clock drift, connection placement, and background
load.  Machine-readable output lands in
``results/BENCH_obs_overhead.json``.
"""

from __future__ import annotations

import time

from benchmarks.harness import fmt, print_table, save_json
from repro import Flick, obs
from repro.runtime import LoopbackTransport, StubServer, TcpClientTransport
from repro.workloads import BENCH_IDL_ONC, make_int_array

#: Interleaved measurement rounds; each scenario keeps its fastest.
ROUNDS = 12

#: Calls per round per scenario.
LOOPBACK_CALLS = 2000
TCP_CALLS = 800

PAYLOAD = make_int_array(32)

#: The disabled-mode ceiling on the TCP echo round-trip.
MAX_DISABLED_OVERHEAD = 0.05


class EchoServant:
    """Returns immediately: the whole call is runtime + stub overhead."""

    def ints(self, values):
        pass


def _fresh_module():
    """A private stub module (instrumentation rebinds module globals,
    so the harness's shared cached module must stay untouched)."""
    return Flick(frontend="oncrpc").compile(BENCH_IDL_ONC).load_module()


def _mean_call_seconds(call, calls):
    clock = time.perf_counter
    start = clock()
    for _ in range(calls):
        call(PAYLOAD)
    return (clock() - start) / calls


def _interleaved_rounds(callers, calls, rounds=ROUNDS):
    """Per-round mean latencies, scenarios alternated each round.

    Returns ``{name: [mean_round_0, mean_round_1, ...]}``.  Because the
    scenarios run back to back inside every round, a paired per-round
    comparison cancels clock-frequency drift and background load that a
    global minimum cannot.
    """
    samples = {name: [] for name in callers}
    for name, call in callers.items():  # warm-up pass
        call(PAYLOAD)
    order = list(callers.items())
    for index in range(rounds):
        # Alternate the order so neither scenario always runs on the
        # warmer (or colder) half of the round.
        for name, call in (order if index % 2 == 0 else order[::-1]):
            samples[name].append(_mean_call_seconds(call, calls))
    return samples


def _tcp_rounds(scenarios, rounds=ROUNDS, calls=TCP_CALLS):
    """Per-round TCP echo means, fresh server and connection every round.

    A round-trip's latency depends on where the kernel lands the server
    thread and the connection's handling relative to the client — a
    placement that persists for their lifetimes.  Comparing two
    long-lived server/connection pairs therefore measures placement
    luck, not instrumentation; rebuilding both every round resamples
    the placement so each scenario's fastest round converges on the
    same floor.
    """
    samples = {name: [] for name, _module in scenarios}
    ordered = list(scenarios)
    for index in range(rounds):
        # Alternate the order so neither scenario always runs on the
        # warmer (or colder) half of the round.
        for name, module in (
            ordered if index % 2 == 0 else ordered[::-1]
        ):
            server = StubServer(module, EchoServant()).tcp_server()
            with server:
                transport = TcpClientTransport(*server.address)
                try:
                    call = module.BENCH_BENCHVClient(transport).ints
                    call(PAYLOAD)  # connect + warm
                    samples[name].append(
                        _mean_call_seconds(call, calls)
                    )
                finally:
                    transport.close()
    return samples


def _overhead(base, measured):
    return (measured - base) / base


class TestObsOverhead:
    def test_disabled_is_free_enabled_is_priced(self, benchmark,
                                                tmp_path):
        baseline = _fresh_module()
        instrumented = obs.instrument_stub_module(_fresh_module())

        loop_base = baseline.BENCH_BENCHVClient(
            LoopbackTransport(baseline.dispatch, EchoServant())
        ).ints
        loop_instr = instrumented.BENCH_BENCHVClient(
            LoopbackTransport(instrumented.dispatch, EchoServant())
        ).ints

        def run():
            # Phase 1: tracing disabled process-wide.
            obs.shutdown()
            samples = _interleaved_rounds(
                {"loopback_base": loop_base,
                 "loopback_off": loop_instr},
                LOOPBACK_CALLS,
            )
            tcp_scenarios = (
                ("tcp_base", baseline),
                ("tcp_off", instrumented),
            )
            samples.update(_tcp_rounds(tcp_scenarios))
            # The disabled scenarios execute identical code, so the
            # true overhead is a constant (zero); when machine noise
            # leaves the estimate near the asserted ceiling, keep
            # sampling — the union minimum converges on the truth.
            for _retry in range(2):
                estimate = (min(samples["tcp_off"])
                            / min(samples["tcp_base"]) - 1.0)
                if estimate < MAX_DISABLED_OVERHEAD * 0.6:
                    break
                extra = _tcp_rounds(tcp_scenarios)
                for name, values in extra.items():
                    samples[name].extend(values)

            # Phase 2: tracing enabled, spans exported as JSONL.
            obs.configure(obs.JsonlExporter(
                str(tmp_path / "bench_trace.jsonl")
            ))
            try:
                # Re-bind after configure(): enabling tracing swaps
                # wrapped methods into the proxy class, and a bound
                # method captured earlier keeps the original.
                loop_on = instrumented.BENCH_BENCHVClient(
                    LoopbackTransport(
                        instrumented.dispatch, EchoServant()
                    )
                ).ints
                samples.update(_interleaved_rounds(
                    {"loopback_on": loop_on},
                    LOOPBACK_CALLS, rounds=3,
                ))
                samples.update(_tcp_rounds(
                    (("tcp_on", instrumented),), rounds=3,
                ))
            finally:
                obs.shutdown()
            return samples

        samples = benchmark.pedantic(run, rounds=1, iterations=1)
        results = {name: min(values)
                   for name, values in samples.items()}

        overhead = {
            # Disabled-mode cost: compare each scenario's fastest round.
            # The wrappers are swapped out while tracing is off, so both
            # scenarios execute identical code and their floors (best
            # connection placement, quietest window) must coincide; the
            # minimum over independent rounds is the robust estimator.
            "loopback_off": _overhead(results["loopback_base"],
                                      results["loopback_off"]),
            "tcp_off": _overhead(results["tcp_base"],
                                 results["tcp_off"]),
            # Enabled-mode cost: phases are sequential, so likewise the
            # per-scenario fastest rounds.
            "loopback_on": _overhead(results["loopback_base"],
                                     results["loopback_on"]),
            "tcp_on": _overhead(results["tcp_base"],
                                results["tcp_on"]),
        }
        rows = [
            [surface,
             fmt(results["%s_base" % surface] * 1e6),
             fmt(results["%s_off" % surface] * 1e6),
             "%+.1f%%" % (overhead["%s_off" % surface] * 100),
             fmt(results["%s_on" % surface] * 1e6),
             "%+.1f%%" % (overhead["%s_on" % surface] * 100)]
            for surface in ("loopback", "tcp")
        ]
        print_table(
            "Observability overhead, echo workload (us/call)",
            ("surface", "baseline", "traced-off", "off-cost",
             "traced-on", "on-cost"),
            rows,
            save_as="obs_overhead",
        )
        save_json("obs_overhead", {
            "payload_bytes": len(PAYLOAD) * 4,
            "rounds": ROUNDS,
            "loopback_calls": LOOPBACK_CALLS,
            "tcp_calls": TCP_CALLS,
            "latency_us": {
                key: value * 1e6 for key, value in results.items()
            },
            "overhead_pct": {
                key: value * 100 for key, value in overhead.items()
            },
            "max_disabled_overhead_pct": MAX_DISABLED_OVERHEAD * 100,
        })

        # The acceptance criterion: instrumentation while tracing is
        # disabled must stay under 5% on the observable round-trip.
        assert overhead["tcp_off"] < MAX_DISABLED_OVERHEAD, (
            "disabled-mode overhead %.1f%% exceeds %.0f%%"
            % (overhead["tcp_off"] * 100, MAX_DISABLED_OVERHEAD * 100)
        )
        # Enabled-mode tracing costs real work; it only has to stay
        # within an order of magnitude of the call itself.
        assert results["tcp_on"] < results["tcp_base"] * 10


#: The profiler's sampling rate under test, and its overhead ceiling on
#: the TCP echo round-trip (the `flick serve --profile` default).
PROFILE_SAMPLE = 64
MAX_PROFILE_OVERHEAD = 0.05


def _split_tcp_rounds(client_module, scenarios, rounds=ROUNDS,
                      calls=TCP_CALLS):
    """Like :func:`_tcp_rounds`, but the client always runs the plain
    *client_module* while the server module varies per scenario.

    ``flick serve --profile`` instruments the serving process only —
    clients are separate processes — so the deployment-relevant echo
    overhead is a plain client against a profiled server, not both
    sides paying the wrappers.
    """
    samples = {name: [] for name, _module in scenarios}
    ordered = list(scenarios)
    for index in range(rounds):
        for name, module in (
            ordered if index % 2 == 0 else ordered[::-1]
        ):
            server = StubServer(module, EchoServant()).tcp_server()
            with server:
                transport = TcpClientTransport(*server.address)
                try:
                    call = client_module.BENCH_BENCHVClient(
                        transport).ints
                    call(PAYLOAD)  # connect + warm
                    samples[name].append(
                        _mean_call_seconds(call, calls)
                    )
                finally:
                    transport.close()
    return samples


#: Wrapped codec invocations the serving process makes per echo:
#: ``_u_req_<op>`` on the way in, ``_m_rep_ok_<op>`` on the way out.
SERVER_CODECS_PER_ECHO = 2

#: Calls per round for the direct codec loop (a call is ~1us, so this
#: is still well under a second of total measurement).
CODEC_CALLS = 20000


def _codec_caller(module):
    """A direct encode loop on the generated request marshaller.

    Build this *after* ``profile.configure`` so the lookup sees the
    swapped-in wrapper; the closure then prices exactly the code the
    server runs per codec call, with no sockets or scheduler in the
    way.
    """
    buf = module.MarshalBuffer()
    encode = module._m_req_ints
    def call(payload):
        buf.reset()
        encode(buf, 1, payload)
    return call


class TestProfileOverhead:
    def test_sampled_profiling_stays_under_the_ceiling(self, benchmark):
        """The payload-shape profiler's acceptance criterion.

        Instrumenting for profiling without ever calling
        ``profile.configure`` must be free (the codec functions are
        untouched).  With profiling on at the default 1/``sample``
        rate, the unsampled fast path is one counter increment and a
        modulo per codec call — asserted < 5% of the echo round-trip.
        Measured the way it is deployed: ``flick serve --profile``
        instruments the serving process only, so a plain client calls a
        profiled server (instrumenting the client too would price the
        wrappers twice).

        The asserted quantity is composed from two stable measurements
        rather than read off a TCP A/B difference: the wrapper's
        per-call cost from an interleaved direct codec loop (which
        includes the amortized 1-in-``sample`` recording work), times
        the ``SERVER_CODECS_PER_ECHO`` wrapped calls an echo makes,
        over the measured round-trip.  On a loaded or single-core box
        the round-to-round variance of a TCP comparison exceeds the
        few-percent quantity under test, so the direct A/B numbers are
        reported but carry no ceiling.  The always-sampled (1/1) cost
        is likewise reported, not asserted, like enabled tracing above.
        """
        from repro.obs import profile

        baseline = _fresh_module()
        instrumented = profile.instrument_stub_module(_fresh_module())

        def run():
            profile.shutdown()
            samples = _split_tcp_rounds(baseline, (
                ("tcp_base", baseline),
                ("tcp_off", instrumented),
            ))
            # The disabled scenarios execute identical code, so the
            # true overhead is a constant (zero); when machine noise
            # leaves the estimate near the asserted ceiling, keep
            # resampling placement — the union minimum converges.
            for _retry in range(3):
                estimate = (min(samples["tcp_off"])
                            / min(samples["tcp_base"]) - 1.0)
                if estimate < MAX_DISABLED_OVERHEAD * 0.6:
                    break
                extra = _split_tcp_rounds(baseline, (
                    ("tcp_base", baseline),
                    ("tcp_off", instrumented),
                ))
                for name, values in extra.items():
                    samples[name].extend(values)
            profile.configure(sample=PROFILE_SAMPLE)
            try:
                samples.update(_split_tcp_rounds(
                    baseline, (("tcp_sampled", instrumented),)
                ))
                codec_callers = {
                    "codec_base": _codec_caller(baseline),
                    "codec_sampled": _codec_caller(instrumented),
                }
                samples.update(_interleaved_rounds(
                    codec_callers, CODEC_CALLS,
                ))
                for _retry in range(3):
                    extra_s = (min(samples["codec_sampled"])
                               - min(samples["codec_base"]))
                    composed = (SERVER_CODECS_PER_ECHO * extra_s
                                / min(samples["tcp_base"]))
                    if composed < MAX_PROFILE_OVERHEAD * 0.6:
                        break
                    more = _interleaved_rounds(
                        codec_callers, CODEC_CALLS,
                    )
                    for name, values in more.items():
                        samples[name].extend(values)
            finally:
                profile.shutdown()
            profile.configure(sample=1)
            try:
                samples.update(_split_tcp_rounds(
                    baseline, (("tcp_every_call", instrumented),),
                    rounds=3,
                ))
            finally:
                profile.shutdown()
            return samples

        samples = benchmark.pedantic(run, rounds=1, iterations=1)
        results = {name: min(values)
                   for name, values in samples.items()}
        overhead = {
            name: _overhead(results["tcp_base"], results[name])
            for name in ("tcp_off", "tcp_sampled", "tcp_every_call")
        }
        # Per-call wrapper cost can read fractionally negative under
        # noise (the wrapped loop drew the luckier placement); clamp.
        wrapper_extra = max(
            0.0, results["codec_sampled"] - results["codec_base"]
        )
        overhead["sampled_echo"] = (
            SERVER_CODECS_PER_ECHO * wrapper_extra / results["tcp_base"]
        )
        print_table(
            "Payload-shape profiler overhead (us/call)",
            ("scenario", "us/call", "overhead"),
            [[name, fmt(results[name] * 1e6),
              "%+.1f%%" % (overhead[name] * 100)
              if name in overhead else ""]
             for name in ("tcp_base", "tcp_off", "tcp_sampled",
                          "tcp_every_call", "codec_base",
                          "codec_sampled")]
            + [["sampled echo (composed)",
                fmt(SERVER_CODECS_PER_ECHO * wrapper_extra * 1e6),
                "%+.1f%%" % (overhead["sampled_echo"] * 100)]],
            save_as="profile",
        )
        save_json("profile", {
            "payload_bytes": len(PAYLOAD) * 4,
            "rounds": ROUNDS,
            "tcp_calls": TCP_CALLS,
            "codec_calls": CODEC_CALLS,
            "sample": PROFILE_SAMPLE,
            "server_codecs_per_echo": SERVER_CODECS_PER_ECHO,
            "latency_us": {
                key: value * 1e6 for key, value in results.items()
            },
            "wrapper_extra_us": wrapper_extra * 1e6,
            "overhead_pct": {
                key: value * 100 for key, value in overhead.items()
            },
            "max_sampled_overhead_pct": MAX_PROFILE_OVERHEAD * 100,
        })

        assert overhead["sampled_echo"] < MAX_PROFILE_OVERHEAD, (
            "1/%d-sampled profiling overhead %.1f%% of the echo "
            "round-trip exceeds %.0f%%"
            % (PROFILE_SAMPLE, overhead["sampled_echo"] * 100,
               MAX_PROFILE_OVERHEAD * 100)
        )
        # Never-configured instrumentation runs the original functions.
        assert overhead["tcp_off"] < MAX_DISABLED_OVERHEAD
        # Full sampling prices every call; order-of-magnitude bound.
        assert results["tcp_every_call"] < results["tcp_base"] * 10
