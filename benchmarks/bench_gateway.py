"""Gateway transcode throughput: fused copy plans vs decode/re-encode.

The gateway's central performance claim mirrors the paper's marshaling
claim: where the two wire formats agree byte-for-byte (XDR and
big-endian CDR on 32-bit words), a bridged message should cross the
gateway as a bounds-checked bulk copy, never materializing presentation
values.  This benchmark measures `transcode_request` over the Figure 3
payload shapes, with the fused plan against the same plan compiled with
fusion disabled (pure decode-to-presentation / re-encode), and records
``results/BENCH_gateway.json`` for CI.

Expected shape: integer arrays (fusible) transcode many times faster
fused than re-encoded, with the gap growing with message size;
rectangle arrays and directory entries contain structures/strings the
fuser refuses, so both columns take the identical fallback path and the
ratio sits near 1.
"""

import time

import pytest

from repro import api
from repro.encoding import MarshalBuffer
from repro.gateway import build_plan
from repro.gateway.envelope import parse_request
from repro.gateway.proxy import transcode_request
from repro.workloads import BENCH_IDL_CORBA

from benchmarks.harness import fmt, print_table, save_json, workload_args

INT_SIZES = (64, 1024, 16384, 262144, 1048576)
RECT_SIZES = (64, 1024, 16384, 262144)
DIR_SIZES = (256, 4096, 65536)

#: Seconds of measurement per data point (matches the Fig. 3 budget).
BUDGET = 0.03

_cache = {}


def _bridge():
    """(ingress result, fused plan, no-fuse plan), cached."""
    if not _cache:
        iiop = api.compile(BENCH_IDL_CORBA, "corba", backend="iiop")
        onc = api.compile(BENCH_IDL_CORBA, "corba",
                          backend="oncrpc-xdr")
        _cache["ingress"] = iiop
        _cache["fused"] = build_plan(iiop, onc)
        _cache["reencode"] = build_plan(iiop, onc, fuse=False)
    return _cache["ingress"], _cache["fused"], _cache["reencode"]


def _ingress_request(module, workload, payload_bytes):
    args = workload_args(module, workload, payload_bytes, "Bench_")
    buffer = MarshalBuffer()
    getattr(module, "_m_req_%s" % workload)(buffer, 7, *args)
    return buffer.getvalue()


def _measure(plan, data, env, budget=BUDGET):
    """Transcode throughput in MB/s of ingress message bytes."""
    op = plan.ops[env.op_key]
    buffer = MarshalBuffer()
    transcode_request(op, data, env, buffer)  # warm up
    count = 0
    start = time.perf_counter()
    elapsed = 0.0
    while elapsed < budget:
        buffer.reset()
        transcode_request(op, data, env, buffer)
        count += 1
        elapsed = time.perf_counter() - start
    return len(data) * count / elapsed / 1e6


def _series(workload, sizes, budget=BUDGET):
    ingress, fused_plan, plain_plan = _bridge()
    module = ingress.load_module()
    rows = []
    data = {}
    for size in sizes:
        request = _ingress_request(module, workload, size)
        env = parse_request(request, fused_plan.ingress_spec)
        fused = _measure(fused_plan, request, env, budget)
        plain = _measure(plain_plan, request, env, budget)
        data[size] = {
            "fused_mbps": fused,
            "reencode_mbps": plain,
            "message_bytes": len(request),
            "fused_path": fused_plan.ops[env.op_key].request_segments
            is not None,
        }
        rows.append([str(size), fmt(fused), fmt(plain),
                     fmt(fused / plain)])
    return rows, data


class TestGatewayTranscode:
    @pytest.mark.parametrize("workload,sizes", [
        ("ints", INT_SIZES),
        ("rects", RECT_SIZES),
        ("dirents", DIR_SIZES),
    ])
    def test_series(self, benchmark, workload, sizes):
        def run():
            return _series(workload, sizes)

        rows, data = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table(
            "Gateway transcode (%s): ingress MB/s" % workload,
            ("bytes", "fused", "re-encode", "ratio"),
            rows,
        )
        results = _cache.setdefault("results", {})
        results[workload] = data
        if set(results) == {"ints", "rects", "dirents"}:
            save_json("gateway", {
                "bridge": "iiop->oncrpc-xdr",
                "workloads": {
                    name: {str(size): point
                           for size, point in series.items()}
                    for name, series in results.items()
                },
            })
        if workload == "ints":
            # The array-heavy shape must actually fuse, and win big
            # once the bulk copy amortizes the envelope work.
            assert all(point["fused_path"] for point in data.values())
            for size in sizes:
                if size >= 16384:
                    point = data[size]
                    ratio = point["fused_mbps"] / point["reencode_mbps"]
                    assert ratio > 2.0, (size, ratio)
        else:
            # Structures and strings refuse fusion: both columns take
            # the same fallback, so neither may collapse.
            assert not any(point["fused_path"] for point in data.values())

    def test_fused_wins_most_where_memcpy_applies(self, benchmark):
        """The fused/fallback gap is widest on large integer arrays —
        the gateway analogue of the paper's memcpy-vs-loop gap."""
        def run():
            ingress, fused_plan, plain_plan = _bridge()
            module = ingress.load_module()
            request = _ingress_request(module, "ints", 262144)
            env = parse_request(request, fused_plan.ingress_spec)
            return (_measure(fused_plan, request, env, 0.05),
                    _measure(plain_plan, request, env, 0.05))

        fused, plain = benchmark.pedantic(run, rounds=1, iterations=1)
        assert fused / plain > 4.0, (fused, plain)
