"""Blocking versus concurrent runtime: aggregate RPC throughput.

Not a paper figure: this benchmark motivates `repro.runtime.aio`
(ROADMAP: with Flick-optimized stubs, the *serving layer* — a blocking,
thread-per-connection loop — is the bottleneck, not marshaling).

Scenario (the headline grid): N logical clients share a fixed budget of
8 TCP connections — the `ConnectionPool` topology every multi-tenant
deployment uses, because a connection (plus, on the blocking server, a
thread) per end user does not scale — and call an operation whose
servant performs a 5 ms simulated backend wait.  Both servers receive
byte-identical wire traffic from the identical pooled client; only the
server architecture differs:

* the blocking thread-per-connection server runs at most one request per
  connection at a time, so its in-flight work is capped by the
  *connection budget* (8), regardless of how many clients are queued;
* the aio server pipelines — correlation rides in the protocol's own
  XID field — so its in-flight work is capped by the *request load* (N).

Below the connection budget the two are equivalent; at 64 clients the
aio server must sustain >= 3x the blocking server's aggregate
throughput (the PR's acceptance criterion; measured ~4.4x here).

A second, no-assertion table reports the echo (zero-latency) workload
where per-call CPU overhead dominates: there the blocking runtime is at
parity or ahead on this box — pipelining pays when requests *wait*, and
the table keeps the comparison honest.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import threading
import time

import pytest

from benchmarks.harness import compiled, fmt, print_table, save_json
from repro import Flick
from repro.encoding import MarshalBuffer
from repro.runtime import StubServer
from repro.runtime.aio import ConnectionPool
from repro.runtime.supervisor import Supervisor, WorkerConfig
from repro.workloads import make_int_array

CLIENT_COUNTS = (1, 8, 64)

#: Shared transport budget: TCP connections (= blocking server threads).
POOL_SIZE = 8

#: Simulated backend wait per call, seconds (a database lookup, say).
BACKEND_WAIT = 0.005

#: Measurement window per grid cell, seconds.
WINDOW = 2.0
ECHO_WINDOW = 0.6


class SlowServant:
    """Servant whose operations wait on a simulated 5 ms backend."""

    def ints(self, values):
        time.sleep(BACKEND_WAIT)

    def rects(self, values):
        time.sleep(BACKEND_WAIT)

    def dirents(self, values):
        time.sleep(BACKEND_WAIT)


class EchoServant:
    """Servant that returns immediately (pure runtime overhead)."""

    def ints(self, values):
        pass


def _request_bytes(module):
    buffer = MarshalBuffer()
    module._m_req_ints(buffer, 1, make_int_array(32))
    return buffer.getvalue()


def _drive_pooled(address, clients, request, window):
    """Aggregate calls/s of *clients* workers over a shared pool."""
    total = [0]

    async def main():
        pool = ConnectionPool(*address, pool_size=POOL_SIZE)
        stop_at = time.perf_counter() + window

        async def worker():
            count = 0
            while time.perf_counter() < stop_at:
                await pool.acall(request)
                count += 1
            return count

        counts = await asyncio.gather(
            *[worker() for _ in range(clients)]
        )
        await pool.aclose()
        total[0] = sum(counts)

    asyncio.run(main())
    return total[0] / window


def _measure_grid(servant_class, window, dispatch_mode):
    _result, module = compiled("flick-xdr")
    request = _request_bytes(module)
    rates = {}
    for clients in CLIENT_COUNTS:
        blocking_server = StubServer(module, servant_class()).tcp_server()
        with blocking_server:
            rates[("blocking", clients)] = _drive_pooled(
                blocking_server.address, clients, request, window
            )
        aio_server = StubServer(module, servant_class()).aio_server(
            dispatch_mode=dispatch_mode, max_concurrency=128
        )
        with aio_server:
            rates[("aio", clients)] = _drive_pooled(
                aio_server.address, clients, request, window
            )
    return rates


def _rows(rates):
    rows = []
    for clients in CLIENT_COUNTS:
        blocking = rates[("blocking", clients)]
        aio = rates[("aio", clients)]
        rows.append([
            str(clients), fmt(blocking), fmt(aio), fmt(aio / blocking),
        ])
    return rows


class TestConcurrentThroughput:
    def test_pooled_slow_backend(self, benchmark):
        """The headline grid: 5 ms backend, shared 8-connection budget."""
        rates = benchmark.pedantic(
            lambda: _measure_grid(SlowServant, WINDOW, "thread"),
            rounds=1, iterations=1,
        )
        print_table(
            "Concurrent throughput, 5ms backend, %d pooled connections "
            "(calls/s)" % POOL_SIZE,
            ("clients", "blocking", "aio", "aio/blocking"),
            _rows(rates),
            save_as="concurrent_throughput_pooled",
        )
        save_json("concurrent", {
            "pool_size": POOL_SIZE,
            "backend_wait_s": BACKEND_WAIT,
            "window_s": WINDOW,
            "calls_per_s": {
                "%s_%d" % key: rate for key, rate in rates.items()
            },
        })
        # Below the connection budget, the architectures are equivalent:
        # both are latency-bound with `clients` requests in flight.
        assert rates[("aio", 1)] > 0.5 * rates[("blocking", 1)]
        # At 64 clients the blocking server is capped at POOL_SIZE
        # requests in flight while the aio server pipelines all 64:
        # the acceptance criterion is >= 3x aggregate throughput.
        ratio = rates[("aio", 64)] / rates[("blocking", 64)]
        assert ratio >= 3.0, "aio/blocking at 64 clients: %.2f" % ratio

    def test_echo_overhead(self, benchmark):
        """Honesty table: zero-wait echo, where per-call CPU overhead
        dominates and pipelining cannot pay.  No ratio assertion."""
        rates = benchmark.pedantic(
            lambda: _measure_grid(EchoServant, ECHO_WINDOW, "inline"),
            rounds=1, iterations=1,
        )
        print_table(
            "Echo throughput (no backend wait), %d pooled connections "
            "(calls/s)" % POOL_SIZE,
            ("clients", "blocking", "aio", "aio/blocking"),
            _rows(rates),
            save_as="concurrent_throughput_echo",
        )
        for clients in CLIENT_COUNTS:
            assert rates[("aio", clients)] > 0
            assert rates[("blocking", clients)] > 0


# ----------------------------------------------------------------------
# Multi-process serving (`flick serve --workers N`)
# ----------------------------------------------------------------------

WORKER_COUNTS = (1, 2, 4)
MULTIPROC_WINDOW = 1.5

#: Client driver threads, each with its own event loop and pool — one
#: asyncio loop cannot saturate several server processes by itself.
DRIVER_THREADS = 4
CLIENTS_PER_DRIVER = 8

MULTIPROC_IDL = """
interface Bench {
    double churn(in sequence<long> xs);
};
"""

#: CPU-bound servant: per-call work the GIL serializes in one process.
MULTIPROC_SERVANT = """\
class BenchServant:
    def churn(self, xs):
        total = 0
        for value in xs:
            total += value * value
        return float(total)
"""


def _churn_request(module):
    buffer = MarshalBuffer()
    module._m_req_churn(buffer, 1, make_int_array(2048))
    return buffer.getvalue()


def _drive_threaded(address, request, window):
    """Aggregate calls/s from several independent client loops."""
    totals = []
    lock = threading.Lock()

    def driver():
        async def main():
            pool = ConnectionPool(*address, pool_size=4)
            stop_at = time.perf_counter() + window

            async def worker():
                count = 0
                while time.perf_counter() < stop_at:
                    await pool.acall(request)
                    count += 1
                return count

            counts = await asyncio.gather(
                *[worker() for _ in range(CLIENTS_PER_DRIVER)]
            )
            await pool.aclose()
            return sum(counts)

        result = asyncio.run(main())
        with lock:
            totals.append(result)

    threads = [
        threading.Thread(target=driver) for _ in range(DRIVER_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return sum(totals) / window


def _measure_workers(tmp_dir):
    idl_path = os.path.join(tmp_dir, "bench.idl")
    with open(idl_path, "w") as handle:
        handle.write(MULTIPROC_IDL)
    with open(os.path.join(tmp_dir, "bench_servant.py"), "w") as handle:
        handle.write(MULTIPROC_SERVANT)
    module = Flick(frontend="corba", backend="oncrpc-xdr") \
        .compile(MULTIPROC_IDL).load_module()
    request = _churn_request(module)
    template = WorkerConfig(
        kind="serve", lang="corba", backend="oncrpc-xdr",
        impl="bench_servant:BenchServant", dispatch_mode="inline",
        sys_paths=[tmp_dir])
    rates = {}
    for workers in WORKER_COUNTS:
        supervisor = Supervisor(
            template, workers, idl_path=idl_path,
            report=lambda line: None)
        with supervisor:
            rates[workers] = _drive_threaded(
                (supervisor.host, supervisor.port), request,
                MULTIPROC_WINDOW)
    return rates


class TestMultiprocThroughput:
    def test_workers_column(self, benchmark):
        """Same CPU-bound workload, one supervised fleet per row: the
        workers column shows what `--workers N` buys once a single
        process's GIL is the ceiling.  No ratio assertion — CI boxes
        have wildly different core counts; the JSON records the curve."""
        with tempfile.TemporaryDirectory() as tmp_dir:
            rates = benchmark.pedantic(
                lambda: _measure_workers(tmp_dir),
                rounds=1, iterations=1,
            )
        rows = [
            [str(workers), fmt(rates[workers]),
             fmt(rates[workers] / rates[WORKER_COUNTS[0]])]
            for workers in WORKER_COUNTS
        ]
        print_table(
            "Supervised multi-process throughput, CPU-bound servant "
            "(calls/s)",
            ("workers", "calls/s", "vs 1 worker"),
            rows,
            save_as="concurrent_throughput_multiproc",
        )
        save_json("multiproc", {
            "cpu_count": os.cpu_count(),
            "window_s": MULTIPROC_WINDOW,
            "driver_threads": DRIVER_THREADS,
            "clients_per_driver": CLIENTS_PER_DRIVER,
            "calls_per_s": {
                "workers_%d" % workers: rate
                for workers, rate in rates.items()
            },
        })
        for workers in WORKER_COUNTS:
            assert rates[workers] > 0
