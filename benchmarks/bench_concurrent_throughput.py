"""Blocking versus concurrent runtime: aggregate RPC throughput.

Not a paper figure: this benchmark motivates `repro.runtime.aio`
(ROADMAP: with Flick-optimized stubs, the *serving layer* — a blocking,
thread-per-connection loop — is the bottleneck, not marshaling).

Scenario (the headline grid): N logical clients share a fixed budget of
8 TCP connections — the `ConnectionPool` topology every multi-tenant
deployment uses, because a connection (plus, on the blocking server, a
thread) per end user does not scale — and call an operation whose
servant performs a 5 ms simulated backend wait.  Both servers receive
byte-identical wire traffic from the identical pooled client; only the
server architecture differs:

* the blocking thread-per-connection server runs at most one request per
  connection at a time, so its in-flight work is capped by the
  *connection budget* (8), regardless of how many clients are queued;
* the aio server pipelines — correlation rides in the protocol's own
  XID field — so its in-flight work is capped by the *request load* (N).

Below the connection budget the two are equivalent; at 64 clients the
aio server must sustain >= 3x the blocking server's aggregate
throughput (the PR's acceptance criterion; measured ~4.4x here).

A second, no-assertion table reports the echo (zero-latency) workload
where per-call CPU overhead dominates: there the blocking runtime is at
parity or ahead on this box — pipelining pays when requests *wait*, and
the table keeps the comparison honest.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from benchmarks.harness import compiled, fmt, print_table, save_json
from repro.encoding import MarshalBuffer
from repro.runtime import StubServer
from repro.runtime.aio import ConnectionPool
from repro.workloads import make_int_array

CLIENT_COUNTS = (1, 8, 64)

#: Shared transport budget: TCP connections (= blocking server threads).
POOL_SIZE = 8

#: Simulated backend wait per call, seconds (a database lookup, say).
BACKEND_WAIT = 0.005

#: Measurement window per grid cell, seconds.
WINDOW = 2.0
ECHO_WINDOW = 0.6


class SlowServant:
    """Servant whose operations wait on a simulated 5 ms backend."""

    def ints(self, values):
        time.sleep(BACKEND_WAIT)

    def rects(self, values):
        time.sleep(BACKEND_WAIT)

    def dirents(self, values):
        time.sleep(BACKEND_WAIT)


class EchoServant:
    """Servant that returns immediately (pure runtime overhead)."""

    def ints(self, values):
        pass


def _request_bytes(module):
    buffer = MarshalBuffer()
    module._m_req_ints(buffer, 1, make_int_array(32))
    return buffer.getvalue()


def _drive_pooled(address, clients, request, window):
    """Aggregate calls/s of *clients* workers over a shared pool."""
    total = [0]

    async def main():
        pool = ConnectionPool(*address, pool_size=POOL_SIZE)
        stop_at = time.perf_counter() + window

        async def worker():
            count = 0
            while time.perf_counter() < stop_at:
                await pool.acall(request)
                count += 1
            return count

        counts = await asyncio.gather(
            *[worker() for _ in range(clients)]
        )
        await pool.aclose()
        total[0] = sum(counts)

    asyncio.run(main())
    return total[0] / window


def _measure_grid(servant_class, window, dispatch_mode):
    _result, module = compiled("flick-xdr")
    request = _request_bytes(module)
    rates = {}
    for clients in CLIENT_COUNTS:
        blocking_server = StubServer(module, servant_class()).tcp_server()
        with blocking_server:
            rates[("blocking", clients)] = _drive_pooled(
                blocking_server.address, clients, request, window
            )
        aio_server = StubServer(module, servant_class()).aio_server(
            dispatch_mode=dispatch_mode, max_concurrency=128
        )
        with aio_server:
            rates[("aio", clients)] = _drive_pooled(
                aio_server.address, clients, request, window
            )
    return rates


def _rows(rates):
    rows = []
    for clients in CLIENT_COUNTS:
        blocking = rates[("blocking", clients)]
        aio = rates[("aio", clients)]
        rows.append([
            str(clients), fmt(blocking), fmt(aio), fmt(aio / blocking),
        ])
    return rows


class TestConcurrentThroughput:
    def test_pooled_slow_backend(self, benchmark):
        """The headline grid: 5 ms backend, shared 8-connection budget."""
        rates = benchmark.pedantic(
            lambda: _measure_grid(SlowServant, WINDOW, "thread"),
            rounds=1, iterations=1,
        )
        print_table(
            "Concurrent throughput, 5ms backend, %d pooled connections "
            "(calls/s)" % POOL_SIZE,
            ("clients", "blocking", "aio", "aio/blocking"),
            _rows(rates),
            save_as="concurrent_throughput_pooled",
        )
        save_json("concurrent", {
            "pool_size": POOL_SIZE,
            "backend_wait_s": BACKEND_WAIT,
            "window_s": WINDOW,
            "calls_per_s": {
                "%s_%d" % key: rate for key, rate in rates.items()
            },
        })
        # Below the connection budget, the architectures are equivalent:
        # both are latency-bound with `clients` requests in flight.
        assert rates[("aio", 1)] > 0.5 * rates[("blocking", 1)]
        # At 64 clients the blocking server is capped at POOL_SIZE
        # requests in flight while the aio server pipelines all 64:
        # the acceptance criterion is >= 3x aggregate throughput.
        ratio = rates[("aio", 64)] / rates[("blocking", 64)]
        assert ratio >= 3.0, "aio/blocking at 64 clients: %.2f" % ratio

    def test_echo_overhead(self, benchmark):
        """Honesty table: zero-wait echo, where per-call CPU overhead
        dominates and pipelining cannot pay.  No ratio assertion."""
        rates = benchmark.pedantic(
            lambda: _measure_grid(EchoServant, ECHO_WINDOW, "inline"),
            rounds=1, iterations=1,
        )
        print_table(
            "Echo throughput (no backend wait), %d pooled connections "
            "(calls/s)" % POOL_SIZE,
            ("clients", "blocking", "aio", "aio/blocking"),
            _rows(rates),
            save_as="concurrent_throughput_echo",
        )
        for clients in CLIENT_COUNTS:
            assert rates[("aio", clients)] > 0
            assert rates[("blocking", clients)] > 0
