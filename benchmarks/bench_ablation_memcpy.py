"""Ablation: bulk data copying (paper section 3.2).

Paper: copying arrays of atomic types with ``memcpy`` instead of
component-by-component "can reduce character string processing times by
60-70%".

Toggled flag: ``memcpy_arrays``.  Workloads: string-heavy directory
entries (the paper's string case) and integer arrays (batched packs).
"""

import pytest

from repro import Flick, OptFlags
from repro.workloads import BENCH_IDL_ONC, make_dir_entries, make_int_array

from benchmarks.harness import fmt, measure_marshal, print_table


def run(budget=0.05):
    data = {}
    for label, flags in (
        ("on", OptFlags()),
        ("off", OptFlags().disable_pass("memcpy_arrays")),
    ):
        module = Flick(
            frontend="oncrpc", flags=flags
        ).compile(BENCH_IDL_ONC).load_module()
        data[("dirents", label)], _size = measure_marshal(
            module, "dirents",
            (make_dir_entries(module, 65536, record_prefix=""),),
            budget=budget,
        )
        data[("ints", label)], _size = measure_marshal(
            module, "ints", (make_int_array(65536),), budget=budget
        )
    rows = []
    for workload in ("dirents", "ints"):
        on, off = data[(workload, "on")], data[(workload, "off")]
        rows.append([
            workload, fmt(on), fmt(off),
            "%.0f%%" % (100 * (1 - off / on)),
        ])
    return rows, data


class TestMemcpyAblation:
    def test_bulk_copy_wins_big(self, benchmark):
        rows, data = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table(
            "Ablation (sec. 3.2): bulk copy vs element-at-a-time;"
            " marshal MB/s at 64KB",
            ("workload", "memcpy on", "memcpy off", "time saved"),
            rows,
        )
        # Paper: 60-70% of string processing time saved; string-heavy
        # dirents must save at least half.
        saved = 1 - data[("dirents", "off")] / data[("dirents", "on")]
        assert saved > 0.5, saved
        # Integer arrays benefit even more from array-wide packs.
        assert data[("ints", "on")] > 2 * data[("ints", "off")]
