"""Shared machinery for the paper-reproduction benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper.
This module owns the common pieces: compiling every compiler's stubs for
the benchmark interface (cached), timing marshal throughput, and combining
measured stub CPU time with simulated wire time for the end-to-end
figures, exactly as DESIGN.md section 2 describes.
"""

from __future__ import annotations

import time

from repro import api
from repro.compilers import make_baseline
from repro.encoding import MarshalBuffer
from repro.runtime import SimulatedNetworkTransport
from repro.workloads import (
    BENCH_IDL_CORBA,
    BENCH_IDL_ONC,
    MIG_BENCH_IDL,
    make_dir_entries,
    make_int_array,
    make_rect_array,
)

#: Compilers of Figures 3-6 (name -> how to build its stub module).
XDR_COMPILERS = ("flick-xdr", "rpcgen", "powerrpc")
IIOP_COMPILERS = ("flick-iiop", "orbeline", "ilu")
ALL_COMPILERS = XDR_COMPILERS + IIOP_COMPILERS

#: Default measurement budget per data point, seconds of CPU time.
BUDGET = 0.04

#: The paper's Flick stubs marshal large integer arrays at roughly the
#: SPARC test machines' memory-copy bandwidth (~30-35 MB/s; section 4
#: attributes Flick's ceiling to memory bandwidth).  The ratio of our
#: measured rate to this anchors the CPU-speed scale used to place the
#: 1997 link models in today's terms.
PAPER_FLICK_INT_MARSHAL_MBPS = 30.0

_cache = {}
_cpu_scale = None


def cpu_scale():
    """How much faster this host marshals than the paper's testbed.

    End-to-end figures scale the 1997 link models by this factor (and
    divide the results back), so the *relative* marshal-versus-wire
    structure — which is what decides every crossover in Figures 4-7 —
    matches the paper's, while all reported numbers stay directly
    comparable to the paper's axes.
    """
    global _cpu_scale
    if _cpu_scale is None:
        _result, module = compiled("flick-xdr")
        rate, _size = measure_marshal(
            module, "ints", (make_int_array(1 << 20),), budget=0.2
        )
        _cpu_scale = max(rate / PAPER_FLICK_INT_MARSHAL_MBPS, 0.1)
    return _cpu_scale


def scaled_link(link):
    """A copy of *link* sped up by :func:`cpu_scale`."""
    scale = cpu_scale()
    return type(link)(
        name="%s (CPU-scaled x%.1f)" % (link.name, scale),
        raw_bandwidth_bps=link.raw_bandwidth_bps * scale,
        effective_bandwidth_bps=link.effective_bandwidth_bps * scale,
        per_message_overhead_s=link.per_message_overhead_s / scale,
    )


def compiled(name):
    """The (result-like, module) pair for one benchmark compiler."""
    if name in _cache:
        return _cache[name]
    if name == "flick-xdr":
        result = api.compile(BENCH_IDL_ONC, "oncrpc")
        module = result.load_module()
    elif name == "flick-iiop":
        result = api.compile(BENCH_IDL_CORBA, "corba", backend="iiop")
        module = result.load_module()
    elif name == "flick-mach":
        result = api.compile(BENCH_IDL_ONC, "oncrpc", backend="mach3")
        module = result.load_module()
    elif name in ("rpcgen", "powerrpc"):
        base = api.compile(BENCH_IDL_ONC, "oncrpc")
        stubs = make_baseline(name).generate(base.presc)
        result, module = base, stubs.load()
    elif name in ("orbeline", "ilu"):
        base = api.compile(BENCH_IDL_CORBA, "corba", backend="iiop")
        stubs = make_baseline(name).generate(base.presc)
        result, module = base, stubs.load()
    elif name == "mig":
        base = api.compile(MIG_BENCH_IDL, "mig")
        stubs = make_baseline("mig").generate(base.presc)
        result, module = base, stubs.load()
    else:
        raise KeyError(name)
    _cache[name] = (result, module)
    return _cache[name]


def record_prefix(name):
    """Record-class naming prefix for a compiler's module."""
    if name in ("flick-iiop", "orbeline", "ilu"):
        return "Bench_"
    return ""


def workload_args(module, workload, payload_bytes, prefix):
    if workload == "ints":
        return (make_int_array(payload_bytes),)
    if workload == "rects":
        return (make_rect_array(module, payload_bytes, prefix),)
    if workload == "dirents":
        return (make_dir_entries(module, payload_bytes, prefix),)
    raise KeyError(workload)


# ----------------------------------------------------------------------
# Timing
# ----------------------------------------------------------------------

def measure_marshal(module, operation, args, budget=BUDGET):
    """Marshal throughput in MB/s of payload-independent message bytes.

    This is the paper's "marshal throughput": stub encode speed with no
    transport involved.
    """
    marshal = getattr(module, "_m_req_%s" % operation)
    buffer = MarshalBuffer()
    marshal(buffer, 1, *args)
    message_size = buffer.length
    # Warm once more to stabilize caches/allocations.
    buffer.reset()
    marshal(buffer, 1, *args)
    iterations = 0
    clock = time.perf_counter
    start = clock()
    while True:
        buffer.reset()
        marshal(buffer, 1, *args)
        iterations += 1
        if clock() - start >= budget:
            break
    elapsed = clock() - start
    return message_size * iterations / elapsed / 1e6, message_size


def measure_unmarshal(module, operation, args, body_offset, budget=BUDGET,
                      as_view=False):
    """Unmarshal throughput in MB/s (server-side request decode).

    ``as_view=True`` hands the decoder a memoryview of the received
    bytes, as a zero-copy dispatch does.
    """
    marshal = getattr(module, "_m_req_%s" % operation)
    unmarshal = getattr(module, "_u_req_%s" % operation)
    buffer = MarshalBuffer()
    marshal(buffer, 1, *args)
    data = buffer.getvalue()
    if as_view:
        data = memoryview(data)
    unmarshal(data, body_offset)
    iterations = 0
    clock = time.perf_counter
    start = clock()
    while True:
        unmarshal(data, body_offset)
        iterations += 1
        if clock() - start >= budget:
            break
    elapsed = clock() - start
    return len(data) * iterations / elapsed / 1e6, len(data)


def measure_end_to_end(module, client_class_name, operation, args,
                       link, payload_bytes, budget=BUDGET):
    """Paper-equivalent end-to-end throughput in Mbit/s over *link*.

    Total time per the paper's own cost accounting = measured stub and
    dispatch CPU time + simulated wire time; the link is CPU-scaled and
    the result scaled back, so the number is directly comparable to the
    paper's figures (e.g. ~6-7.5 Mbps for everyone on 10 Mbps Ethernet).
    """
    class _Impl:
        def __getattr__(self, _name):
            return lambda *call_args: None

    scale = cpu_scale()
    transport = SimulatedNetworkTransport(
        module.dispatch, _Impl(), scaled_link(link)
    )
    client = getattr(module, client_class_name)(transport)
    method = getattr(client, operation)
    method(*args)  # warm-up
    transport.reset_clock()
    iterations = 0
    clock = time.perf_counter
    start = clock()
    while True:
        method(*args)
        iterations += 1
        if clock() - start >= budget:
            break
    cpu_elapsed = clock() - start
    total = cpu_elapsed + transport.simulated_seconds
    return payload_bytes * 8 * iterations / total / 1e6 / scale


def client_class_name(name):
    if name in ("flick-iiop", "orbeline", "ilu"):
        return "Bench_BenchClient"
    if name == "mig":
        return "benchClient"
    return "BENCH_BENCHVClient"


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------

RESULTS_DIR = None  # set to a directory path to also save tables there


def print_table(title, columns, rows, out=print, save_as=None):
    lines = ["", "=" * 72, title, "=" * 72]
    header = "  ".join("%12s" % column for column in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join("%12s" % cell for cell in row))
    lines.append("=" * 72)
    for line in lines:
        out(line)
    target_dir = RESULTS_DIR
    if target_dir is None:
        import os

        target_dir = os.path.join(os.path.dirname(__file__), "results")
    try:
        import os
        import re

        os.makedirs(target_dir, exist_ok=True)
        stem = save_as or re.sub(
            r"[^a-z0-9]+", "_", title.lower()
        ).strip("_")[:60]
        with open(os.path.join(target_dir, stem + ".txt"), "w") as handle:
            handle.write("\n".join(lines) + "\n")
    except OSError:
        pass  # results files are a convenience, never a failure


def fmt(value):
    if isinstance(value, float):
        if value >= 100:
            return "%.0f" % value
        if value >= 10:
            return "%.1f" % value
        return "%.2f" % value
    return str(value)


def save_json(stem, payload):
    """Write *payload* to ``results/BENCH_<stem>.json`` (machine-readable
    companion to :func:`print_table`; CI uploads these as artifacts).

    Returns the path written, or None when the directory is unwritable
    (results files are a convenience, never a failure).
    """
    import json
    import os

    target_dir = RESULTS_DIR
    if target_dir is None:
        target_dir = os.path.join(os.path.dirname(__file__), "results")
    path = os.path.join(target_dir, "BENCH_%s.json" % stem)
    try:
        os.makedirs(target_dir, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError:
        return None
    return path
