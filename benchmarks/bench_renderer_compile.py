"""Renderer comparison: rendered source versus closure codecs.

Both renderers consume the same optimized marshal IR (byte output is
asserted identical by tests/test_mir_renderers.py); they differ in how
IR becomes callable code.  The ``py`` renderer renders Python source
and round-trips through ``compile``/``exec``; the ``closures`` renderer
builds step closures over precompiled ``struct.Struct`` objects at
install time.  This module records, per renderer:

* **compile time** — the full pipeline down to GeneratedStubs (both
  renderers also carry the rendered source, so this is near-identical
  by construction);
* **first-call latency** — module load (exec, plus the closure install
  for ``closures``) and the first marshal call, the cold-start cost a
  dynamic client pays;
* **Fig. 3 marshal throughput** — the paper's workloads.  The headline
  point (64 KB and 1 MB integer arrays) must be no slower under
  closures; structure arrays (rects) are *faster* because the constant
  stride loop fuses into one compiled comprehension, while dirents
  (per-element strings) stay on the interpreted step path and lag.

Because no renderer wins everywhere, the second half of this module
measures **tiered execution** (``repro.runtime.tiering``): the server
starts every op on one static renderer and the engine recompiles hot
ops to whatever the cost model prefers.  The acceptance claim recorded
in ``results/BENCH_tiering.json``: started on the *losing* renderer
(closures) for the string-heavy ``dirents_65536`` workload, tiered mode
converges to py and recovers >= 90% of the best static renderer's
steady-state serve throughput, while staying at parity with
closures-only on the struct-array workload it is already right for.

Results land in ``results/BENCH_renderer.json`` and
``results/BENCH_tiering.json`` (CI artifacts).
"""

import time

import pytest

from repro import api
from repro.encoding import MarshalBuffer
from repro.workloads import BENCH_IDL_ONC

from benchmarks.harness import (
    fmt,
    measure_marshal,
    print_table,
    save_json,
    workload_args,
)

RENDERERS = ("py", "closures")

#: Fig. 3 series points measured per renderer: (workload, bytes).
POINTS = (
    ("ints", 1024),
    ("ints", 65536),
    ("ints", 1048576),
    ("rects", 65536),
    ("dirents", 65536),
)

#: The paper's headline marshal point: integer arrays, large messages.
HEADLINE = (("ints", 65536), ("ints", 1048576))


def _measure_compile(renderer, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        api.compile(BENCH_IDL_ONC, "oncrpc", renderer=renderer)
        best = min(best, time.perf_counter() - started)
    return best


def _measure_first_call(renderer, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        result = api.compile(BENCH_IDL_ONC, "oncrpc", renderer=renderer)
        args = None
        started = time.perf_counter()
        module = result.load_module()
        buffer = MarshalBuffer()
        args = workload_args(module, "ints", 1024, "")
        module._m_req_ints(buffer, 1, *args)
        best = min(best, time.perf_counter() - started)
    return best


def run(budget=0.05, rounds=3):
    modules = {
        renderer: api.compile(
            BENCH_IDL_ONC, "oncrpc", renderer=renderer
        ).load_module()
        for renderer in RENDERERS
    }
    throughput = {renderer: {} for renderer in RENDERERS}
    # Interleave renderers and keep the best of several rounds so the
    # ratio is robust against scheduling noise.
    for workload, size in POINTS:
        for _ in range(rounds):
            for renderer, module in modules.items():
                args = workload_args(module, workload, size, "")
                mbps, _message = measure_marshal(
                    module, workload, args, budget=budget
                )
                key = "%s_%d" % (workload, size)
                throughput[renderer][key] = max(
                    throughput[renderer].get(key, 0.0), mbps
                )
    data = {
        renderer: {
            "compile_ms": _measure_compile(renderer) * 1e3,
            "first_call_ms": _measure_first_call(renderer) * 1e3,
            "marshal_mbps": throughput[renderer],
        }
        for renderer in RENDERERS
    }
    return data


class TestRendererCompile:
    def test_renderers(self, benchmark):
        data = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = []
        for renderer in RENDERERS:
            entry = data[renderer]
            rows.append([
                renderer,
                "%.1f" % entry["compile_ms"],
                "%.1f" % entry["first_call_ms"],
            ] + [
                fmt(entry["marshal_mbps"]["%s_%d" % point])
                for point in POINTS
            ])
        print_table(
            "Renderers: compile, first call (ms); Fig. 3 marshal MB/s",
            ("renderer", "compile", "first call")
            + tuple("%s %dK" % (w, s // 1024) for w, s in POINTS),
            rows,
        )
        save_json("renderer", {
            "workloads": ["%s_%d" % point for point in POINTS],
            "headline": ["%s_%d" % point for point in HEADLINE],
            "renderers": data,
        })
        py, clo = data["py"], data["closures"]
        # Closure selection happens at load time; compiling must not
        # get measurably more expensive than the source renderer.
        assert clo["compile_ms"] <= py["compile_ms"] * 1.25
        # Headline acceptance: closures are no slower than rendered
        # source on the Fig. 3 marshal throughput workload (64 KB and
        # 1 MB integer arrays); 0.93 absorbs timer noise.
        for workload, size in HEADLINE:
            key = "%s_%d" % (workload, size)
            ratio = clo["marshal_mbps"][key] / py["marshal_mbps"][key]
            assert ratio >= 0.93, (key, ratio)
        # Structure arrays fuse into one compiled comprehension and
        # must beat the rendered per-element loop outright.
        assert (clo["marshal_mbps"]["rects_65536"]
                > py["marshal_mbps"]["rects_65536"])


# ----------------------------------------------------------------------
# Tiered execution: start on the wrong renderer, let the engine fix it
# ----------------------------------------------------------------------

#: The tiering points: the workload where closures wins (rects) and the
#: one where it loses badly (dirents) — both served starting from a
#: closures tier-0, so the engine must leave one alone and recompile
#: the other.
TIER_POINTS = (("rects", 65536), ("dirents", 65536))


class _NullImpl:
    """The benchmark ops are void; the servant swallows everything."""

    def __getattr__(self, _name):
        return lambda *args: None


def _request_frame(module, workload, size):
    args = workload_args(module, workload, size, "")
    buffer = MarshalBuffer()
    getattr(module, "_m_req_%s" % workload)(buffer, 1, *args)
    return buffer.getvalue()


def _measure_serve(server, frame, budget=0.05):
    """Server-side throughput in MB/s: full dispatch (request decode +
    void reply encode) over one captured request frame."""
    serve = server.serve_bytes
    serve(frame)
    serve(frame)
    iterations = 0
    clock = time.perf_counter
    start = clock()
    while True:
        serve(frame)
        iterations += 1
        if clock() - start >= budget:
            break
    return len(frame) * iterations / (clock() - start) / 1e6


def run_tiered(budget=0.05, rounds=3):
    from repro.runtime import StubServer
    from repro.runtime.tiering import TieringEngine, TierPolicy

    data = {}
    for workload, size in TIER_POINTS:
        key = "%s_%d" % (workload, size)
        static = {}
        for renderer in RENDERERS:
            handle = api.compile(BENCH_IDL_ONC, "oncrpc",
                                 renderer=renderer)
            frame = _request_frame(handle.module, workload, size)
            server = StubServer(handle.module, _NullImpl())
            for _ in range(rounds):
                static[renderer] = max(
                    static.get(renderer, 0.0),
                    _measure_serve(server, frame, budget))
        # Tiered: tier-0 is closures (the *losing* choice on dirents).
        # Deterministic single-threaded drive: serve, poll, repeat
        # until the engine converges — through the same shadow-verify
        # and regression-guard path production servers run.
        handle = api.compile(BENCH_IDL_ONC, "oncrpc",
                             renderer="closures")
        engine = TieringEngine(handle, policy=TierPolicy(
            threshold=1, min_timed_samples=4)).attach()
        server = StubServer(handle.module, _NullImpl())
        frame = _request_frame(handle.module, workload, size)
        state = engine.ops[workload]
        for _ in range(80):
            for _ in range(48):
                server.serve_bytes(frame)
            engine.poll_once()
            if state.converged or state.state == "pinned":
                break
        tiered = 0.0
        for _ in range(rounds):
            tiered = max(tiered, _measure_serve(server, frame, budget))
        data[key] = {
            "tier0_renderer": "closures",
            "converged_renderer": state.renderer,
            "tier": state.tier,
            "state": state.state,
            "static_serve_mbps": static,
            "tiered_serve_mbps": tiered,
            "recovery": tiered / max(static.values()),
        }
    return data


class TestTieredExecution:
    def test_tiered_recovers_best_static(self, benchmark):
        data = benchmark.pedantic(run_tiered, rounds=1, iterations=1)
        rows = []
        for key, entry in sorted(data.items()):
            rows.append([
                key,
                fmt(entry["static_serve_mbps"]["py"]),
                fmt(entry["static_serve_mbps"]["closures"]),
                fmt(entry["tiered_serve_mbps"]),
                entry["converged_renderer"],
                "%.0f%%" % (100.0 * entry["recovery"]),
            ])
        print_table(
            "Tiered execution: serve MB/s from a closures tier-0",
            ("workload", "py", "closures", "tiered", "converged",
             "recovery"),
            rows,
        )
        save_json("tiering", {
            "tier0_renderer": "closures",
            "workloads": data,
        })
        dirents = data["dirents_65536"]
        rects = data["rects_65536"]
        # The headline: on the string-heavy workload the engine must
        # abandon the closures tier-0 for py and recover >= 90% of the
        # best static renderer's steady state.
        assert dirents["converged_renderer"] == "py", dirents
        assert dirents["tier"] == 1, dirents
        assert dirents["recovery"] >= 0.90, dirents
        # And on struct arrays — where closures is already right — the
        # engine must leave well enough alone and keep parity.
        assert rects["converged_renderer"] == "closures", rects
        assert (rects["tiered_serve_mbps"]
                >= 0.93 * rects["static_serve_mbps"]["closures"]), rects
