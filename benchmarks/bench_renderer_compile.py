"""Renderer comparison: rendered source versus closure codecs.

Both renderers consume the same optimized marshal IR (byte output is
asserted identical by tests/test_mir_renderers.py); they differ in how
IR becomes callable code.  The ``py`` renderer renders Python source
and round-trips through ``compile``/``exec``; the ``closures`` renderer
builds step closures over precompiled ``struct.Struct`` objects at
install time.  This module records, per renderer:

* **compile time** — the full pipeline down to GeneratedStubs (both
  renderers also carry the rendered source, so this is near-identical
  by construction);
* **first-call latency** — module load (exec, plus the closure install
  for ``closures``) and the first marshal call, the cold-start cost a
  dynamic client pays;
* **Fig. 3 marshal throughput** — the paper's workloads.  The headline
  point (64 KB and 1 MB integer arrays) must be no slower under
  closures; structure arrays (rects) are *faster* because the constant
  stride loop fuses into one compiled comprehension, while dirents
  (per-element strings) stay on the interpreted step path and lag.

Results land in ``results/BENCH_renderer.json`` (a CI artifact).
"""

import time

import pytest

from repro import api
from repro.encoding import MarshalBuffer
from repro.workloads import BENCH_IDL_ONC

from benchmarks.harness import (
    fmt,
    measure_marshal,
    print_table,
    save_json,
    workload_args,
)

RENDERERS = ("py", "closures")

#: Fig. 3 series points measured per renderer: (workload, bytes).
POINTS = (
    ("ints", 1024),
    ("ints", 65536),
    ("ints", 1048576),
    ("rects", 65536),
    ("dirents", 65536),
)

#: The paper's headline marshal point: integer arrays, large messages.
HEADLINE = (("ints", 65536), ("ints", 1048576))


def _measure_compile(renderer, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        api.compile(BENCH_IDL_ONC, "oncrpc", renderer=renderer)
        best = min(best, time.perf_counter() - started)
    return best


def _measure_first_call(renderer, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        result = api.compile(BENCH_IDL_ONC, "oncrpc", renderer=renderer)
        args = None
        started = time.perf_counter()
        module = result.load_module()
        buffer = MarshalBuffer()
        args = workload_args(module, "ints", 1024, "")
        module._m_req_ints(buffer, 1, *args)
        best = min(best, time.perf_counter() - started)
    return best


def run(budget=0.05, rounds=3):
    modules = {
        renderer: api.compile(
            BENCH_IDL_ONC, "oncrpc", renderer=renderer
        ).load_module()
        for renderer in RENDERERS
    }
    throughput = {renderer: {} for renderer in RENDERERS}
    # Interleave renderers and keep the best of several rounds so the
    # ratio is robust against scheduling noise.
    for workload, size in POINTS:
        for _ in range(rounds):
            for renderer, module in modules.items():
                args = workload_args(module, workload, size, "")
                mbps, _message = measure_marshal(
                    module, workload, args, budget=budget
                )
                key = "%s_%d" % (workload, size)
                throughput[renderer][key] = max(
                    throughput[renderer].get(key, 0.0), mbps
                )
    data = {
        renderer: {
            "compile_ms": _measure_compile(renderer) * 1e3,
            "first_call_ms": _measure_first_call(renderer) * 1e3,
            "marshal_mbps": throughput[renderer],
        }
        for renderer in RENDERERS
    }
    return data


class TestRendererCompile:
    def test_renderers(self, benchmark):
        data = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = []
        for renderer in RENDERERS:
            entry = data[renderer]
            rows.append([
                renderer,
                "%.1f" % entry["compile_ms"],
                "%.1f" % entry["first_call_ms"],
            ] + [
                fmt(entry["marshal_mbps"]["%s_%d" % point])
                for point in POINTS
            ])
        print_table(
            "Renderers: compile, first call (ms); Fig. 3 marshal MB/s",
            ("renderer", "compile", "first call")
            + tuple("%s %dK" % (w, s // 1024) for w, s in POINTS),
            rows,
        )
        save_json("renderer", {
            "workloads": ["%s_%d" % point for point in POINTS],
            "headline": ["%s_%d" % point for point in HEADLINE],
            "renderers": data,
        })
        py, clo = data["py"], data["closures"]
        # Closure selection happens at load time; compiling must not
        # get measurably more expensive than the source renderer.
        assert clo["compile_ms"] <= py["compile_ms"] * 1.25
        # Headline acceptance: closures are no slower than rendered
        # source on the Fig. 3 marshal throughput workload (64 KB and
        # 1 MB integer arrays); 0.93 absorbs timer noise.
        for workload, size in HEADLINE:
            key = "%s_%d" % (workload, size)
            ratio = clo["marshal_mbps"][key] / py["marshal_mbps"][key]
            assert ratio >= 0.93, (key, ratio)
        # Structure arrays fuse into one compiled comprehension and
        # must beat the rendered per-element loop outright.
        assert (clo["marshal_mbps"]["rects_65536"]
                > py["marshal_mbps"]["rects_65536"])
