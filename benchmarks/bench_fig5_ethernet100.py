"""Figure 5: end-to-end throughput across 100 Mbps Ethernet.

Paper: "Over fast communication links ... Flick's optimizations again
become very significant ... increase end-to-end throughput by factors of
2-3 for medium size messages, factors of 3.2 for large Ethernet
messages"; rpcgen and PowerRPC stubs are marshal-limited and do not
benefit from the faster link.
"""

import pytest

from repro.runtime import ETHERNET_10, ETHERNET_100

from benchmarks.harness import (
    client_class_name,
    compiled,
    fmt,
    measure_end_to_end,
    print_table,
    record_prefix,
    workload_args,
)

COMPILERS = ("flick-xdr", "rpcgen", "powerrpc", "orbeline", "ilu")
SIZES = (1024, 16384, 262144, 1048576)


def run_series(budget=0.03):
    rows = []
    data = {}
    for size in SIZES:
        row = [str(size)]
        for name in COMPILERS:
            _result, module = compiled(name)
            args = workload_args(module, "ints", size, record_prefix(name))
            mbps = measure_end_to_end(
                module, client_class_name(name), "ints", args,
                ETHERNET_100, size, budget=budget,
            )
            data[(name, size)] = mbps
            row.append(fmt(mbps))
        rows.append(row)
    return rows, data


class TestFigure5:
    def test_series(self, benchmark):
        rows, data = benchmark.pedantic(run_series, rounds=1, iterations=1)
        print_table(
            "Figure 5: end-to-end over 100Mbps Ethernet (int arrays),"
            " Mbit/s",
            ("bytes",) + COMPILERS,
            rows,
        )
        largest = SIZES[-1]
        flick = data[("flick-xdr", largest)]
        # Flick beats the naive compilers by the paper's factors.
        assert flick / data[("rpcgen", largest)] > 2.0
        assert flick / data[("ilu", largest)] > 2.0
        # And is the only one anywhere near the wire's effective rate.
        assert flick > 25.0

    def test_fast_link_helps_flick_not_rpcgen(self, benchmark):
        """rpcgen's bottleneck is marshaling: moving it from 10 to 100
        Mbps Ethernet barely changes its throughput, while Flick gains."""
        def run():
            out = {}
            for name in ("flick-xdr", "rpcgen"):
                _result, module = compiled(name)
                args = workload_args(module, "ints", 262144,
                                     record_prefix(name))
                for link_name, link in (
                    ("slow", ETHERNET_10), ("fast", ETHERNET_100),
                ):
                    out[(name, link_name)] = measure_end_to_end(
                        module, client_class_name(name), "ints", args,
                        link, 262144, budget=0.03,
                    )
            return out

        out = benchmark.pedantic(run, rounds=1, iterations=1)
        flick_gain = out[("flick-xdr", "fast")] / out[("flick-xdr", "slow")]
        rpcgen_gain = out[("rpcgen", "fast")] / out[("rpcgen", "slow")]
        assert flick_gain > 2.5
        assert rpcgen_gain < flick_gain
