"""Ablation: marshal buffer management (paper section 3.1).

Paper: one free-space check per message region (sized by the storage-class
analysis) instead of one per atomic datum "reduces marshaling times by up
to 12% for large messages containing complex structures".

Toggled flag: ``batch_buffer_checks``.  Workload: directory entries (the
paper's complex-structure case).
"""

import pytest

from repro import Flick, OptFlags
from repro.workloads import BENCH_IDL_ONC, make_dir_entries

from benchmarks.harness import fmt, measure_marshal, print_table


def run(budget=0.05):
    rows = []
    data = {}
    for label, flags in (
        ("on", OptFlags()),
        ("off", OptFlags().disable_pass("batch_buffer_checks")),
    ):
        module = Flick(
            frontend="oncrpc", flags=flags
        ).compile(BENCH_IDL_ONC).load_module()
        for size in (4096, 65536, 262144):
            args = (make_dir_entries(module, size, record_prefix=""),)
            mbps, _message = measure_marshal(
                module, "dirents", args, budget=budget
            )
            data[(label, size)] = mbps
    for size in (4096, 65536, 262144):
        on, off = data[("on", size)], data[("off", size)]
        rows.append([str(size), fmt(on), fmt(off),
                     "%.1f%%" % (100 * (on - off) / on)])
    return rows, data


class TestBufferManagementAblation:
    def test_batched_checks_help(self, benchmark):
        rows, data = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table(
            "Ablation (sec. 3.1): one buffer check per region vs per"
            " datum; dirents marshal MB/s",
            ("bytes", "batched", "per-datum", "reduction"),
            rows,
        )
        # Paper: up to 12% marshal-time reduction.  Per-datum checks cost
        # relatively more in Python, so the effect is at least as large.
        for size in (65536, 262144):
            assert data[("on", size)] > data[("off", size)], size
