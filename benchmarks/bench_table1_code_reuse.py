"""Table 1: code reuse within the Flick IDL compiler.

The paper's Table 1 counts substantive source lines in each of Flick's
base libraries versus the lines particular to each specialized component,
showing that presentation generators and back ends are small
specializations of large shared libraries (4-11% unique), while front
ends carry more unique code (parsers).

This bench computes the same table for this reproduction's own sources.
"""

import os

import pytest

from benchmarks.harness import print_table

ROOT = os.path.join(os.path.dirname(__file__), "..", "src", "repro")

#: (phase, component, base?, relative source files)
LAYOUT = [
    ("Front End", "Base Library", True,
     ["idl/source.py", "idl/lexer.py", "aoi/types.py", "aoi/interfaces.py",
      "aoi/validate.py"]),
    ("Front End", "CORBA IDL", False,
     ["corba/ast.py", "corba/parser.py", "corba/to_aoi.py"]),
    ("Front End", "ONC RPC IDL", False,
     ["oncrpc/ast.py", "oncrpc/parser.py", "oncrpc/to_aoi.py"]),
    ("Front End", "MIG", False,
     ["mig/parser.py", "mig/to_presc.py"]),
    ("Pres. Gen.", "Base Library", True,
     ["mint/types.py", "mint/builder.py", "mint/analysis.py",
      "pres/nodes.py", "pres/presc.py", "pres/values.py", "pgen/base.py"]),
    ("Pres. Gen.", "CORBA Pres.", False, ["pgen/corba_c.py"]),
    ("Pres. Gen.", "Fluke Pres.", False, ["pgen/fluke.py"]),
    ("Pres. Gen.", "ONC RPC rpcgen Pres.", False, ["pgen/rpcgen.py"]),
    ("Back End", "Base Library", True,
     ["backend/base.py", "backend/pyemit.py", "backend/pywriter.py",
      "backend/cemit.py", "encoding/base.py", "encoding/buffer.py",
      "cast/nodes.py", "cast/emit.py"]),
    ("Back End", "CORBA IIOP", False,
     ["backend/iiop.py", "encoding/cdr.py"]),
    ("Back End", "ONC RPC XDR", False,
     ["backend/oncxdr.py", "encoding/xdr.py"]),
    ("Back End", "Mach 3 IPC", False,
     ["backend/mach3.py", "encoding/mach.py"]),
    ("Back End", "Fluke IPC", False,
     ["backend/flukeipc.py", "encoding/fluke.py"]),
]


def substantive_lines(path):
    """Count non-blank lines outside docstrings and comments."""
    count = 0
    in_docstring = False
    delimiter = None
    with open(path) as handle:
        for line in handle:
            stripped = line.strip()
            if in_docstring:
                if delimiter in stripped:
                    in_docstring = False
                continue
            if not stripped or stripped.startswith("#"):
                continue
            if stripped.startswith(('"""', "'''")):
                delimiter = stripped[:3]
                body = stripped[3:]
                if delimiter not in body:
                    in_docstring = True
                continue
            count += 1
    return count


def compute_table():
    rows = []
    data = {}
    base_lines = {}
    for phase, component, is_base, files in LAYOUT:
        lines = sum(
            substantive_lines(os.path.join(ROOT, name)) for name in files
        )
        if is_base:
            base_lines[phase] = lines
            rows.append([phase, component, str(lines), ""])
        else:
            base = base_lines[phase]
            share = 100.0 * lines / (lines + base)
            rows.append(
                [phase, component, str(lines), "%.1f%%" % share]
            )
            data[(phase, component)] = share
    return rows, data


class TestTable1:
    def test_code_reuse(self, benchmark):
        rows, data = benchmark.pedantic(
            compute_table, rounds=1, iterations=1
        )
        print_table(
            "Table 1: code reuse within the Flick reproduction"
            " (substantive lines; %% = unique share vs base library)",
            ("phase", "component", "lines", "% unique"),
            rows,
        )
        # The paper's structural claim: presentation generators and back
        # ends are small specializations (its Table 1: 0-11%); front ends
        # carry significantly more unique code (its Table 1: 45-48%).
        for (phase, component), share in data.items():
            if phase == "Pres. Gen.":
                assert share < 25.0, (component, share)
            if phase == "Back End":
                assert share < 25.0, (component, share)
        front_end_shares = [
            share for (phase, _c), share in data.items()
            if phase == "Front End"
        ]
        assert max(front_end_shares) > 30.0
