"""Figure 7: end-to-end throughput for MIG and Flick stubs over Mach IPC.

Paper: "for small messages, MIG-generated stubs have throughput that is
twice that of the corresponding Flick stubs.  However, as the message size
increases, Flick-generated stubs do increasingly well against MIG stubs.
Beginning with 8K messages, Flick's stubs increasingly outperform MIG's
stubs, showing 17% improvement at 64K."

MIG's small-message edge comes from its Mach specialization (the combined
send/receive trap, modelled by ``MACH_IPC_COMBINED``); its large-message
deficit from typed-message staging (an extra copy) that Flick's buffer
management avoids.
"""

import time

import pytest

from repro.runtime.machipc import (
    MACH_IPC,
    MACH_IPC_COMBINED,
    MachIpcModel,
    MachIpcTransport,
)
from repro.workloads import make_int_array

from benchmarks.harness import (
    client_class_name,
    compiled,
    cpu_scale,
    fmt,
    print_table,
)

SIZES = (64, 1024, 8192, 65536, 262144, 1048576)


def _scaled_model(model):
    scale = cpu_scale()
    return MachIpcModel(
        name="%s (scaled)" % model.name,
        per_message_s=model.per_message_s / scale,
        copy_bandwidth_bytes_per_s=model.copy_bandwidth_bytes_per_s * scale,
        vm_copy_threshold=model.vm_copy_threshold,
        per_page_s=model.per_page_s / scale,
        page_size=model.page_size,
    )


def measure_mach(name, model, payload_bytes, budget=0.03):
    _result, module = compiled(name)

    class _Impl:
        def __getattr__(self, _name):
            return lambda *args: None

    scale = cpu_scale()
    transport = MachIpcTransport(
        module.dispatch, _Impl(), _scaled_model(model)
    )
    client = getattr(module, client_class_name(name))(transport)
    args = (make_int_array(payload_bytes),)
    client.ints(*args)
    transport.reset_clock()
    iterations = 0
    clock = time.perf_counter
    start = clock()
    while True:
        client.ints(*args)
        iterations += 1
        if clock() - start >= budget:
            break
    cpu_elapsed = clock() - start
    total = cpu_elapsed + transport.simulated_seconds
    return payload_bytes * 8 * iterations / total / 1e6 / scale


def run_series(budget=0.03):
    rows = []
    data = {}
    for size in SIZES:
        mig = measure_mach("mig", MACH_IPC_COMBINED, size, budget)
        flick = measure_mach("flick-mach", MACH_IPC, size, budget)
        data[("mig", size)] = mig
        data[("flick", size)] = flick
        rows.append([str(size), fmt(mig), fmt(flick),
                     "%.2f" % (flick / mig)])
    return rows, data


class TestFigure7:
    def test_series(self, benchmark):
        rows, data = benchmark.pedantic(run_series, rounds=1, iterations=1)
        print_table(
            "Figure 7: MIG vs Flick over Mach IPC (int arrays),"
            " Mbit/s (paper-equivalent)",
            ("bytes", "mig", "flick", "flick/mig"),
            rows,
        )
        # Small messages: MIG's specialization wins.
        assert data[("mig", 64)] > data[("flick", 64)]
        # Large messages: Flick overtakes (paper: from ~8K, +17% at 64K).
        assert data[("flick", 1048576)] > data[("mig", 1048576)]
        # The ratio rises monotonically-ish with size.
        small_ratio = data[("flick", 64)] / data[("mig", 64)]
        large_ratio = data[("flick", 1048576)] / data[("mig", 1048576)]
        assert large_ratio > small_ratio

    def test_mig_rigidity_documented(self, benchmark):
        """MIG could not express the rect/directory workloads at all."""
        from repro import Flick
        from repro.compilers import make_baseline
        from repro.errors import BackEndError
        from repro.workloads import BENCH_IDL_ONC

        def run():
            base = Flick(frontend="oncrpc").compile(BENCH_IDL_ONC)
            try:
                make_baseline("mig").generate(base.presc)
            except BackEndError as error:
                return str(error)
            return None

        message = benchmark.pedantic(run, rounds=1, iterations=1)
        assert message is not None and "MIG cannot express" in message
