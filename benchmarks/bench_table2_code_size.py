"""Table 2: object code sizes.

The paper's Table 2 compares compiled stub sizes plus required marshal
library code for the directory interface, noting that Flick's aggressive
inlining "actually decreases the sizes of the stubs once they are
compiled" for many interfaces, and that MIG cannot express the interface
at all.

The analog here: Python bytecode size of each compiler's generated stub
module, plus the bytecode of the runtime marshal library it requires
(Flick stubs need none; rpcgen-style stubs call ``xdr_rt``;
ORBeline-style calls ``cdr_rt``; ILU-style interprets through the whole
PRES interpreter).
"""

import os

import pytest

from repro import Flick
from repro.compilers import make_baseline
from repro.errors import BackEndError
from repro.workloads import BENCH_IDL_CORBA, BENCH_IDL_ONC

from benchmarks.harness import print_table


def bytecode_size(source, name="<generated>"):
    """Total bytes of compiled code objects in *source*."""
    top = compile(source, name, "exec")
    total = 0
    stack = [top]
    while stack:
        code = stack.pop()
        total += len(code.co_code)
        for constant in code.co_consts:
            if hasattr(constant, "co_code"):
                stack.append(constant)
    return total


def module_file_size(module_name):
    import importlib

    module = importlib.import_module(module_name)
    return bytecode_size(open(module.__file__).read(), module.__file__)


def compute_table():
    onc = Flick(frontend="oncrpc").compile(BENCH_IDL_ONC)
    corba = Flick(frontend="corba", backend="iiop").compile(BENCH_IDL_CORBA)
    rows = []
    data = {}

    def add(name, stub_source, library):
        stub = bytecode_size(stub_source) if stub_source else 0
        total = stub + library
        data[name] = (stub, library, total)
        rows.append([name, str(stub), str(library), str(total)])

    add("Flick (XDR)", onc.stubs.py_source, 0)
    add("Flick (IIOP)", corba.stubs.py_source, 0)
    add(
        "rpcgen",
        make_baseline("rpcgen").generate(onc.presc).py_source,
        module_file_size("repro.compilers.xdr_rt"),
    )
    add(
        "PowerRPC",
        make_baseline("powerrpc").generate(onc.presc).py_source,
        module_file_size("repro.compilers.xdr_rt"),
    )
    add(
        "ORBeline",
        make_baseline("orbeline").generate(corba.presc).py_source,
        module_file_size("repro.compilers.cdr_rt"),
    )
    add(
        "ILU",
        None,  # no generated marshal code at all
        module_file_size("repro.pres.interp")
        + module_file_size("repro.compilers.ilu_style"),
    )
    try:
        make_baseline("mig").generate(onc.presc)
        mig_note = "(unexpectedly supported)"
    except BackEndError:
        mig_note = "cannot express the interface"
    rows.append(["MIG", "-", "-", mig_note])
    return rows, data


class TestTable2:
    def test_code_sizes(self, benchmark):
        rows, data = benchmark.pedantic(
            compute_table, rounds=1, iterations=1
        )
        print_table(
            "Table 2: generated stub + marshal library bytecode sizes"
            " (bytes), directory interface",
            ("compiler", "stubs", "library", "total"),
            rows,
        )
        # MIG cannot express the interface (last row carries the note).
        assert rows[-1][0] == "MIG"
        assert "cannot express" in rows[-1][3]
        # Flick's inlined stubs carry no separate marshal library.
        assert data["Flick (XDR)"][1] == 0
        # Even with inlining, total code (stubs + library) stays in the
        # same ballpark as the per-datum compilers (the paper's point
        # that inlining does not explode code size).
        assert data["Flick (XDR)"][2] < 3 * data["rpcgen"][2]
