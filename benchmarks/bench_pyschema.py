"""Native-Python schemas: compiled codecs versus reflective serializers.

The pyschema front end compiles annotated dataclasses through the same
optimizing back end as every IDL language, so a Python-native schema
pays no "it's just Python" marshal tax.  This module proves the point
on the paper's Figure 3 shapes (integer arrays, rectangle arrays,
directory entries), comparing:

* **flick-pyschema** — codecs compiled from the dataclass schema
  (oncrpc-xdr back end, the Fig. 3 protocol);
* **reflective** — a marshmallow-style serializer that walks
  ``dataclasses.fields()`` per value at serialize time, emitting the
  same XDR wire bytes interpretively;
* **pickle** / **json** — the stdlib escape hatches a Python service
  reaches for when it has no IDL compiler.

Results (MB/s of serialized output, plus compiled-over-rival ratios)
land in ``results/BENCH_pyschema.json``; the CI ``frontend-matrix``
job uploads it as an artifact.
"""

import dataclasses
import json
import pickle
import struct
import time
import types

import pytest

from repro import api
from repro.workloads import BENCH_PYSCHEMA

from benchmarks.harness import fmt, print_table, save_json, workload_args

#: Fig. 3 points: the headline integer arrays plus both struct shapes.
POINTS = (
    ("ints", 65536),
    ("ints", 1048576),
    ("rects", 65536),
    ("dirents", 65536),
)

SERIALIZERS = ("flick-pyschema", "reflective", "pickle", "json")


# ----------------------------------------------------------------------
# The reflective rival: walk dataclasses.fields() per value
# ----------------------------------------------------------------------

_I32 = struct.Struct(">i")
_U32 = struct.Struct(">I")


def reflective_xdr(value, out=None):
    """Serialize *value* to XDR bytes by runtime type inspection.

    This is the classic reflective-serializer architecture (marshmallow,
    attrs-based codecs): no generated code, every field discovered with
    ``dataclasses.fields()`` on every call.
    """
    if out is None:
        out = bytearray()
        reflective_xdr(value, out)
        return bytes(out)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        for field in dataclasses.fields(value):
            reflective_xdr(getattr(value, field.name), out)
    elif isinstance(value, bool):
        out += _U32.pack(int(value))
    elif isinstance(value, int):
        out += _I32.pack(value)
    elif isinstance(value, str):
        data = value.encode("ascii")
        out += _U32.pack(len(data))
        out += data
        out += b"\x00" * (-len(data) % 4)
    elif isinstance(value, bytes):
        out += value
        out += b"\x00" * (-len(value) % 4)
    elif isinstance(value, list):
        out += _U32.pack(len(value))
        for item in value:
            reflective_xdr(item, out)
    else:
        raise TypeError(type(value))
    return out


def _jsonable(value):
    """A plain-data copy of *value* for the json rival."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: _jsonable(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if isinstance(value, bytes):
        return list(value)
    if isinstance(value, list):
        return [_jsonable(item) for item in value]
    return value


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------


def _measure(encode, budget=0.04):
    """(MB/s of serialized output, output size) for zero-arg *encode*."""
    size = len(encode())
    iterations = 0
    clock = time.perf_counter
    start = clock()
    while True:
        encode()
        iterations += 1
        if iterations % 8 == 0 and clock() - start >= budget:
            break
    return size * iterations / (clock() - start) / 1e6, size


def _plain_module():
    """The schema's dataclasses, exec'd as an ordinary Python module.

    Registered in ``sys.modules`` so ``pickle`` can serialize instances
    (exactly what a real service importing the schema module gets).
    """
    import sys

    name = "bench_pyschema_plain"
    if name in sys.modules:
        return sys.modules[name]
    module = types.ModuleType(name)
    exec(compile(BENCH_PYSCHEMA, "<bench-pyschema>", "exec"),
         module.__dict__)
    sys.modules[name] = module
    return module


def run(budget=0.04, rounds=3):
    compiled = api.compile(
        BENCH_PYSCHEMA, "pyschema", backend="oncrpc-xdr"
    ).load_module()
    plain = _plain_module()
    from repro.encoding import MarshalBuffer

    data = {name: {} for name in SERIALIZERS}
    sizes = {}
    for workload, size in POINTS:
        key = "%s_%d" % (workload, size)
        compiled_args = workload_args(compiled, workload, size, "")
        plain_args = workload_args(plain, workload, size, "")
        json_value = _jsonable(list(plain_args[0]))
        marshal = getattr(compiled, "_m_req_%s" % workload)
        buffer = MarshalBuffer()

        def compiled_encode():
            buffer.reset()
            marshal(buffer, 1, *compiled_args)
            return buffer.getvalue()

        rivals = {
            "flick-pyschema": compiled_encode,
            "reflective": lambda: reflective_xdr(list(plain_args[0])),
            "pickle": lambda: pickle.dumps(plain_args[0]),
            "json": lambda: json.dumps(json_value).encode(),
        }
        for _ in range(rounds):
            for name, encode in rivals.items():
                mbps, out_size = _measure(encode, budget=budget)
                data[name][key] = max(data[name].get(key, 0.0), mbps)
                if name == "flick-pyschema":
                    sizes[key] = out_size
    ratios = {
        rival: {
            key: data["flick-pyschema"][key] / data[rival][key]
            for key in data[rival]
        }
        for rival in SERIALIZERS[1:]
    }
    return {
        "points": ["%s_%d" % point for point in POINTS],
        "message_bytes": sizes,
        "serialize_mbps": data,
        "compiled_speedup": ratios,
    }


class TestPySchemaBench:
    def test_compiled_vs_reflective(self, benchmark):
        data = benchmark.pedantic(run, rounds=1, iterations=1)
        keys = data["points"]
        rows = [
            [name] + [fmt(data["serialize_mbps"][name][key])
                      for key in keys]
            for name in SERIALIZERS
        ]
        rows.append(
            ["speedup"] + [fmt(data["compiled_speedup"]["reflective"][key])
                           for key in keys]
        )
        print_table(
            "pyschema: compiled vs reflective serializers (MB/s)",
            ("serializer",) + tuple(keys),
            rows,
            save_as="pyschema_compiled_vs_reflective",
        )
        save_json("pyschema", data)
        # The compiled codec must beat the per-call reflective walker on
        # every Fig. 3 shape; the integer-array headline by a wide margin.
        for key in keys:
            assert data["compiled_speedup"]["reflective"][key] > 1.0
        assert data["compiled_speedup"]["reflective"]["ints_1048576"] > 2.0
