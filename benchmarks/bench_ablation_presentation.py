"""Ablation: presentation coercion (paper section 2.2 and refs [8, 9]).

The paper motivates flexible presentations with ``Mail_send(obj, msg,
len)``: "This presentation of the Mail interface could enable
optimizations because Mail_send would no longer need to count the number
of characters in the message"; the authors' earlier annotation work [8,9]
reported up to an order of magnitude from such presentation coercions.

This bench compares the standard CORBA C presentation (stubs count and
encode every string) with the ``corba-c-len`` variant (the application
hands over encoded bytes) on a string-heavy interface.  The wire bytes
are identical; only the programmer's contract differs.
"""

import pytest

from repro import Flick

from benchmarks.harness import fmt, measure_marshal, print_table

LOG_IDL = """
interface Log {
    oneway void append(in string line);
};
"""

SIZES = (64, 4096, 262144)


def run(budget=0.05):
    data = {}
    modules = {}
    for style in ("corba-c", "corba-c-len"):
        modules[style] = Flick(
            frontend="corba", presentation=style, backend="iiop"
        ).compile(LOG_IDL).load_module()
    for size in SIZES:
        text = "x" * size
        encoded = text.encode("latin-1")
        data[("corba-c", size)], _m = measure_marshal(
            modules["corba-c"], "append", (text,), budget=budget
        )
        data[("corba-c-len", size)], _m = measure_marshal(
            modules["corba-c-len"], "append", (encoded,), budget=budget
        )
    rows = []
    for size in SIZES:
        standard = data[("corba-c", size)]
        variant = data[("corba-c-len", size)]
        rows.append([str(size), fmt(standard), fmt(variant),
                     "%.2fx" % (variant / standard)])
    return rows, data


class TestPresentationAblation:
    def test_length_presentation_skips_the_count(self, benchmark):
        rows, data = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table(
            "Ablation (sec. 2.2): standard vs length-carrying string"
            " presentation; append marshal MB/s",
            ("bytes", "corba-c", "corba-c-len", "speedup"),
            rows,
        )
        # Skipping encode/count must win, and win more as strings grow.
        for size in (4096, 262144):
            assert data[("corba-c-len", size)] > data[("corba-c", size)]
        small = data[("corba-c-len", 64)] / data[("corba-c", 64)]
        large = (
            data[("corba-c-len", 262144)] / data[("corba-c", 262144)]
        )
        assert large > small
