"""Figure 6: end-to-end throughput across 640 Mbps Myrinet.

Paper: Flick gains "factors of 3.7 for large Myrinet messages"; rpcgen and
PowerRPC throughput is "essentially unchanged across the two fast
networks", because their bottleneck is marshaling, not the wire.  The
effective Myrinet bandwidth after the 1997 protocol stack was only 84.5
Mbps (ttcp), which the link model reproduces.
"""

import pytest

from repro.runtime import ETHERNET_100, MYRINET_640

from benchmarks.harness import (
    client_class_name,
    compiled,
    fmt,
    measure_end_to_end,
    print_table,
    record_prefix,
    workload_args,
)

COMPILERS = ("flick-xdr", "rpcgen", "powerrpc")
SIZES = (1024, 16384, 262144, 1048576)


def run_series(budget=0.03):
    rows = []
    data = {}
    for size in SIZES:
        row = [str(size)]
        for name in COMPILERS:
            _result, module = compiled(name)
            args = workload_args(module, "ints", size, record_prefix(name))
            mbps = measure_end_to_end(
                module, client_class_name(name), "ints", args,
                MYRINET_640, size, budget=budget,
            )
            data[(name, size)] = mbps
            row.append(fmt(mbps))
        rows.append(row)
    return rows, data


class TestFigure6:
    def test_series(self, benchmark):
        rows, data = benchmark.pedantic(run_series, rounds=1, iterations=1)
        print_table(
            "Figure 6: end-to-end over 640Mbps Myrinet (int arrays),"
            " Mbit/s",
            ("bytes",) + COMPILERS,
            rows,
        )
        largest = SIZES[-1]
        assert (
            data[("flick-xdr", largest)] / data[("rpcgen", largest)] > 2.5
        )

    def test_rpcgen_flat_across_fast_links(self, benchmark):
        """The paper: rpcgen/PowerRPC did not benefit from the faster
        Myrinet link — marshal-bound stubs cannot use the extra
        bandwidth."""
        def run():
            out = {}
            for name in ("flick-xdr", "rpcgen"):
                _result, module = compiled(name)
                args = workload_args(module, "ints", 1048576,
                                     record_prefix(name))
                for link_name, link in (
                    ("eth100", ETHERNET_100), ("myrinet", MYRINET_640),
                ):
                    out[(name, link_name)] = measure_end_to_end(
                        module, client_class_name(name), "ints", args,
                        link, 1048576, budget=0.03,
                    )
            return out

        out = benchmark.pedantic(run, rounds=1, iterations=1)
        rpcgen_change = (
            out[("rpcgen", "myrinet")] / out[("rpcgen", "eth100")]
        )
        assert 0.7 < rpcgen_change < 1.35  # essentially unchanged
