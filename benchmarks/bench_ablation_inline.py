"""Ablation: marshal code inlining (paper section 3.3).

Paper: "stubs with inlined code can process complex data up to 60% faster
than stubs without this optimization" — and, crucially, "the memory,
parameter, and copy optimizations become more powerful as more code can
be inlined": out-of-line per-type marshal functions stop chunks at type
boundaries, so a Rect of two Coord substructures marshals as two 8-byte
packs behind three function calls instead of one 16-byte pack.

Toggled flag: ``inline_marshal``.  Workload: rectangle arrays (the nested
structures where cross-boundary chunking matters).
"""

import pytest

from repro import Flick, OptFlags
from repro.workloads import BENCH_IDL_ONC, make_dir_entries, make_rect_array

from benchmarks.harness import fmt, measure_marshal, print_table


def run(budget=0.05):
    data = {}
    modules = {}
    for label, flags in (
        ("on", OptFlags()),
        ("off", OptFlags().disable_pass("inline_marshal")),
    ):
        modules[label] = Flick(
            frontend="oncrpc", flags=flags
        ).compile(BENCH_IDL_ONC).load_module()
        for size in (1024, 65536):
            args = (make_rect_array(modules[label], size,
                                    record_prefix=""),)
            data[("rects", label, size)], _m = measure_marshal(
                modules[label], "rects", args, budget=budget
            )
    # Directory entries: the 30-integer stat struct chunks fine even
    # inside its own out-of-line function, so the effect there is small —
    # measured for the record.
    for label in ("on", "off"):
        args = (make_dir_entries(modules[label], 65536, record_prefix=""),)
        data[("dirents", label, 65536)], _m = measure_marshal(
            modules[label], "dirents", args, budget=budget
        )
    rows = []
    for workload, size in (("rects", 1024), ("rects", 65536),
                           ("dirents", 65536)):
        on = data[(workload, "on", size)]
        off = data[(workload, "off", size)]
        rows.append([
            "%s/%d" % (workload, size), fmt(on), fmt(off),
            "%.0f%%" % (100 * (on / off - 1)),
        ])
    return rows, data


class TestInlineAblation:
    def test_inlining_enables_cross_boundary_chunking(self, benchmark):
        rows, data = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table(
            "Ablation (sec. 3.3): inlined vs out-of-line per-type marshal"
            " functions; marshal MB/s",
            ("workload/bytes", "inlined", "out-of-line", "speedup"),
            rows,
        )
        # Paper: up to 60% faster on complex data.  Nested structures
        # show the full effect; we require at least 30%.
        for size in (1024, 65536):
            on = data[("rects", "on", size)]
            off = data[("rects", "off", size)]
            assert on > 1.3 * off, (size, on, off)
