"""CI smoke for tiered execution: `flick serve --workers 2 --tiering`.

Boots a 2-worker supervised fleet on a tiny ONC program whose `rev`
operation (an all-integer sequence) structurally favours the closures
renderer while the server starts every op on py tier-0.  A hot loop of
`rev` calls must drive `flick_tier_current{op="rev"}` to 1 on at least
one worker (with `flick_tier_recompiles_total{outcome="promoted"}`
counted), while the never-called `hello` op stays tier-0 on every
worker.  Asserted via the supervisor's aggregated /metrics endpoint.
Run from the repository root::

    python scripts/tiering_smoke.py
"""

import json
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
WORKERS = 2

sys.path.insert(0, SRC)

from repro import Flick  # noqa: E402
from repro.obs.metrics import parse_prometheus  # noqa: E402
from repro.runtime import TcpClientTransport  # noqa: E402

SMOKE_IDL = """
typedef int int_seq<>;
program SMOKE {
  version SMOKEV {
    int_seq rev(int_seq) = 1;
    string hello(string) = 2;
  } = 1;
} = 0x20000077;
"""

SERVANT = '''
"""Servant for the tiering smoke (written into the smoke workdir)."""


class SmokeServant:
    def __init__(self, module=None):
        self.module = module

    def rev(self, xs):
        return list(xs)[::-1]

    def hello(self, s):
        return "hi " + s
'''

POLICY = {
    "threshold": 20000,
    "interval_s": 0.05,
    "min_timed_samples": 4,
    # The smoke proves the promotion mechanics, not steady-state
    # speed; an effectively-off revert ratio keeps CI timer noise
    # from reverting the op between the swap and the assertion.
    "revert_ratio": 1e9,
}


def fail(message):
    print("FAIL: %s" % message, file=sys.stderr)
    sys.exit(1)


def wait_for(lines, pattern, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        for line in list(lines):
            match = re.search(pattern, line)
            if match:
                return match.group(1)
        time.sleep(0.05)
    fail("timed out waiting for %r in:\n%s" % (pattern, "".join(lines)))


def scrape(port, path, timeout=5.0):
    url = "http://127.0.0.1:%d%s" % (port, path)
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


def tier_series(series, op):
    """(labels, value) pairs of flick_tier_current for one op."""
    return {labels: value
            for labels, value in series.get("flick_tier_current",
                                            {}).items()
            if dict(labels).get("op") == op}


def main():
    workdir = tempfile.mkdtemp(prefix="flick-tiering-smoke-")
    idl_path = os.path.join(workdir, "smoke.x")
    policy_path = os.path.join(workdir, "policy.json")
    with open(idl_path, "w") as handle:
        handle.write(SMOKE_IDL)
    with open(os.path.join(workdir, "smoke_servant.py"), "w") as handle:
        handle.write(SERVANT)
    with open(policy_path, "w") as handle:
        json.dump(POLICY, handle)

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC, workdir]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.tools.cli", "serve", idl_path,
         "--impl", "smoke_servant:SmokeServant", "--workers",
         str(WORKERS), "--port", "0", "--metrics-port", "0",
         "--tiering", policy_path],
        env=env, cwd=workdir, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True)
    lines = []

    def pump():
        for line in proc.stdout:
            sys.stdout.write(line)
            lines.append(line)

    threading.Thread(target=pump, daemon=True).start()

    try:
        serve_port = int(wait_for(
            lines, r"supervising \d+ worker\(s\).* on 127\.0\.0\.1:(\d+)"))
        http_port = int(wait_for(
            lines, r"fleet endpoints on http://127\.0\.0\.1:(\d+)"))
        deadline = time.monotonic() + 60
        while scrape(http_port, "/readyz")[0] != 200:
            if time.monotonic() > deadline:
                fail("/readyz never reached 200")
            time.sleep(0.2)

        module = Flick(frontend="oncrpc").compile(SMOKE_IDL).module
        payload = list(range(256))  # ~1 KB per call

        # Hot-loop rev over a couple of connections (SO_REUSEPORT
        # shards per connection) until some worker's engine promotes:
        # keep bursts coming so the shadow round can verify and commit.
        promoted = None
        deadline = time.monotonic() + 90
        while time.monotonic() < deadline and promoted is None:
            for _ in range(2):
                transport = TcpClientTransport("127.0.0.1", serve_port)
                client = module.SMOKE_SMOKEVClient(transport)
                for _ in range(60):
                    if client.rev(payload) != payload[::-1]:
                        fail("rev returned wrong payload")
                transport.close()
            _status, text = scrape(http_port, "/metrics")
            series = parse_prometheus(text)
            hot = tier_series(series, "rev")
            if any(value >= 1 for value in hot.values()):
                promoted = series
        if promoted is None:
            fail("rev never reached tier-1; last tier series: %r"
                 % tier_series(series, "rev"))
        hot = tier_series(promoted, "rev")
        hot_workers = [dict(labels)["worker"]
                       for labels, value in hot.items() if value >= 1]
        print("== rev reached tier-1 on worker(s) %s"
              % ", ".join(sorted(hot_workers)))

        counted = promoted.get("flick_tier_recompiles_total", {})
        promoted_count = sum(
            value for labels, value in counted.items()
            if dict(labels).get("op") == "rev"
            and dict(labels).get("outcome") == "promoted")
        if promoted_count < 1:
            fail("no promoted recompile counted: %r" % counted)
        reverted = sum(
            value for labels, value in counted.items()
            if dict(labels).get("outcome") == "reverted_bytes")
        if reverted:
            fail("a tier swap failed byte verification: %r" % counted)

        # The cold op must not have tiered anywhere.
        cold = tier_series(promoted, "hello")
        if any(value != 0 for value in cold.values()):
            fail("cold op 'hello' left tier-0: %r" % cold)
        print("== cold op 'hello' stayed tier-0 on %d worker series"
              % len(cold))

        # Post-swap sanity: replies still correct through the hot op.
        transport = TcpClientTransport("127.0.0.1", serve_port)
        client = module.SMOKE_SMOKEVClient(transport)
        for _ in range(20):
            if client.rev(payload) != payload[::-1]:
                fail("rev wrong after the tier swap")
        if client.hello("smoke") != "hi smoke":
            fail("hello wrong after the tier swap")
        transport.close()
        print("== post-swap replies correct")

        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        if code != 0:
            fail("supervisor exited with code %d" % code)
        print("PASS: tiering smoke (rev tier-1 with promoted>=1, "
              "hello tier-0, 0 byte reverts, exit 0)")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
