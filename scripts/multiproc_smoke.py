"""CI smoke for supervised serving: `flick serve --workers 4`.

Boots a 4-worker fleet on the shipped Mail example, exercises the
aggregated endpoints, performs one compatible SIGHUP schema rollout
(mail.idl -> mail_v2.idl, DECODE_COMPATIBLE) and one refused BREAKING
rollout, and fails if any worker restarted or the parent exits
non-zero.  Run from the repository root::

    python scripts/multiproc_smoke.py
"""

import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
EXAMPLES = os.path.join(REPO, "examples")
WORKERS = 4

sys.path.insert(0, SRC)

from repro import Flick  # noqa: E402
from repro.obs.metrics import parse_prometheus  # noqa: E402
from repro.runtime import TcpClientTransport  # noqa: E402


def fail(message):
    print("FAIL: %s" % message, file=sys.stderr)
    sys.exit(1)


def wait_for(lines, pattern, timeout=60.0):
    """First captured group of *pattern* across collected output lines."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        for line in list(lines):
            match = re.search(pattern, line)
            if match:
                return match.group(1)
        time.sleep(0.05)
    fail("timed out waiting for %r in:\n%s" % (pattern, "".join(lines)))


def scrape(port, path, timeout=5.0):
    url = "http://127.0.0.1:%d%s" % (port, path)
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


def wait_metric(port, predicate, what, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _status, text = scrape(port, "/metrics")
        series = parse_prometheus(text)
        if predicate(series):
            return series
        time.sleep(0.2)
    fail("timed out waiting for %s" % what)


def main():
    workdir = tempfile.mkdtemp(prefix="flick-multiproc-smoke-")
    live_idl = os.path.join(workdir, "live.idl")
    v1_text = open(os.path.join(EXAMPLES, "idl", "mail.idl")).read()
    v2_text = open(os.path.join(EXAMPLES, "idl", "mail_v2.idl")).read()
    with open(live_idl, "w") as handle:
        handle.write(v1_text)

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC, EXAMPLES]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.tools.cli", "serve", live_idl,
         "--impl", "mail_servant:MailServant", "--workers",
         str(WORKERS), "--port", "0", "--metrics-port", "0"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    lines = []

    def pump():
        for line in proc.stdout:
            sys.stdout.write(line)
            lines.append(line)

    reader = threading.Thread(target=pump, daemon=True)
    reader.start()

    try:
        serve_port = int(wait_for(
            lines, r"supervising \d+ worker\(s\).* on 127\.0\.0\.1:(\d+)"))
        http_port = int(wait_for(
            lines, r"fleet endpoints on http://127\.0\.0\.1:(\d+)"))

        deadline = time.monotonic() + 60
        while scrape(http_port, "/readyz")[0] != 200:
            if time.monotonic() > deadline:
                fail("/readyz never reached 200")
            time.sleep(0.2)
        if scrape(http_port, "/healthz")[0] != 200:
            fail("/healthz not 200 on a running fleet")

        v1 = Flick(frontend="corba").compile(v1_text).module
        transport = TcpClientTransport("127.0.0.1", serve_port)
        client = v1.MailClient(transport)
        calls = 10
        for n in range(calls):
            client.send("message %d" % n, n)
        transport.close()

        series = wait_metric(
            http_port,
            lambda s: sum(s.get("flick_server_requests_total",
                                {}).values()) >= calls,
            "aggregated request count >= %d" % calls)
        if series["flick_supervisor_workers"][()] != WORKERS:
            fail("flick_supervisor_workers != %d" % WORKERS)
        up = series["flick_supervisor_worker_up"]
        if len(up) != WORKERS or any(v != 1 for v in up.values()):
            fail("not every worker_up gauge is 1: %r" % up)
        print("== aggregated /metrics ok (%d requests, %d workers up)"
              % (calls, WORKERS))

        # Compatible rollout: v1 -> v2 is DECODE_COMPATIBLE.
        with open(live_idl, "w") as handle:
            handle.write(v2_text)
        proc.send_signal(signal.SIGHUP)
        series = wait_metric(
            http_port,
            lambda s: s.get("flick_supervisor_rollouts_total", {}).get(
                (("outcome", "rolled"),)) == 1,
            "rollout outcome=rolled")
        if series["flick_supervisor_generation"][()] != 1:
            fail("generation gauge did not advance to 1")
        deadline = time.monotonic() + 60
        while scrape(http_port, "/readyz")[0] != 200:
            if time.monotonic() > deadline:
                fail("/readyz never recovered after the rollout")
            time.sleep(0.2)
        v2 = Flick(frontend="corba").compile(v2_text).module
        transport = TcpClientTransport("127.0.0.1", serve_port)
        client2 = v2.MailClient(transport)
        client2.send("post-rollout", 1)
        client2.expunge(0)  # the operation v2 added
        transport.close()
        print("== compatible SIGHUP rollout ok (generation 1, "
              "v2 operation served)")

        # Breaking rollout: a changed parameter type must be refused.
        with open(live_idl, "w") as handle:
            handle.write(v2_text.replace("in string<64> user",
                                         "in long user"))
        proc.send_signal(signal.SIGHUP)
        series = wait_metric(
            http_port,
            lambda s: s.get("flick_supervisor_rollouts_total", {}).get(
                (("outcome", "refused"),)) == 1,
            "rollout outcome=refused")
        if series["flick_supervisor_generation"][()] != 1:
            fail("generation changed on a refused rollout")
        if scrape(http_port, "/readyz")[0] != 200:
            fail("/readyz not 200 after a refused rollout")
        print("== BREAKING SIGHUP rollout refused ok (generation 1 "
              "keeps serving)")

        restarts = series.get("flick_supervisor_restarts_total", {})
        if sum(restarts.values()) != 0:
            fail("a worker exited unexpectedly during the smoke: %r"
                 % restarts)

        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        if code != 0:
            fail("supervisor exited with code %d" % code)
        print("PASS: multiproc smoke (fleet of %d, 1 rolled, 1 refused,"
              " 0 restarts, exit 0)" % WORKERS)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
