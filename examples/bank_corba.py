#!/usr/bin/env python
"""A CORBA bank service: exceptions, unions, inout parameters over IIOP.

Shows the parts of the CORBA mapping beyond plain calls: user exceptions
raised across the wire, a discriminated union for mixed query results,
``inout``/``out`` parameters, and interface inheritance (an audited
account extends the base account).
"""

from repro import Flick
from repro.runtime import LoopbackTransport

BANK_IDL = """
module Bank {
    exception InsufficientFunds {
        long long balance;
        long long requested;
    };
    exception NoSuchAccount { string id; };

    enum QueryKind { BALANCE, OWNER, HISTORY_SIZE };

    union QueryResult switch (QueryKind) {
        case BALANCE: long long amount;
        case OWNER: string name;
        case HISTORY_SIZE: unsigned long entries;
    };

    interface Account {
        long long balance(in string id) raises (NoSuchAccount);
        void deposit(in string id, in long long amount)
            raises (NoSuchAccount);
        long long withdraw(in string id, in long long amount)
            raises (NoSuchAccount, InsufficientFunds);
        QueryResult query(in string id, in QueryKind kind)
            raises (NoSuchAccount);
        void transfer(in string src, in string dst,
                      inout long long amount, out long long src_balance)
            raises (NoSuchAccount, InsufficientFunds);
    };

    interface AuditedAccount : Account {
        unsigned long audit_count();
    };
};
"""

BALANCE, OWNER, HISTORY_SIZE = 0, 1, 2


def main():
    result = Flick(frontend="corba", backend="iiop").compile(
        BANK_IDL, interface="Bank::AuditedAccount"
    )
    module = result.module
    print("operations:", [s.operation_name for s in result.presc.stubs])

    class Bank(module.Bank_AuditedAccountServant):
        def __init__(self):
            self.accounts = {"alice": 1000, "bob": 50}
            self.owners = {"alice": "Alice A.", "bob": "Bob B."}
            self.history = {"alice": 3, "bob": 1}
            self.audits = 0

        def _check(self, account_id):
            if account_id not in self.accounts:
                raise module.Bank_NoSuchAccount(account_id)

        def balance(self, account_id):
            self._check(account_id)
            return self.accounts[account_id]

        def deposit(self, account_id, amount):
            self._check(account_id)
            self.accounts[account_id] += amount
            self.history[account_id] += 1

        def withdraw(self, account_id, amount):
            self._check(account_id)
            balance = self.accounts[account_id]
            if amount > balance:
                raise module.Bank_InsufficientFunds(balance, amount)
            self.accounts[account_id] = balance - amount
            self.history[account_id] += 1
            return self.accounts[account_id]

        def query(self, account_id, kind):
            self._check(account_id)
            if kind == BALANCE:
                return (BALANCE, self.accounts[account_id])
            if kind == OWNER:
                return (OWNER, self.owners[account_id])
            return (HISTORY_SIZE, self.history[account_id])

        def transfer(self, src, dst, amount):
            # inout amount (capped to available), out src_balance.
            self._check(src)
            self._check(dst)
            moved = min(amount, self.accounts[src])
            self.accounts[src] -= moved
            self.accounts[dst] += moved
            return moved, self.accounts[src]

        def audit_count(self):
            self.audits += 1
            return self.audits

    servant = Bank()
    client = module.Bank_AuditedAccountClient(
        LoopbackTransport(module.dispatch, servant)
    )

    print("alice balance:", client.balance("alice"))
    client.deposit("alice", 250)
    print("after deposit:", client.balance("alice"))

    remaining = client.withdraw("alice", 200)
    print("after withdraw(200):", remaining)
    assert remaining == 1050

    try:
        client.withdraw("bob", 10_000)
    except module.Bank_InsufficientFunds as error:
        print("withdraw refused: balance=%d requested=%d"
              % (error.balance, error.requested))

    try:
        client.balance("mallory")
    except module.Bank_NoSuchAccount as error:
        print("no such account:", error.id)

    kind, value = client.query("alice", OWNER)
    print("query(OWNER):", value)
    assert (kind, value) == (OWNER, "Alice A.")

    kind, value = client.query("bob", HISTORY_SIZE)
    print("query(HISTORY_SIZE):", value)

    moved, src_balance = client.transfer("alice", "bob", 5000)
    print("transfer wanted 5000, moved %d; alice now %d"
          % (moved, src_balance))
    assert src_balance == 0

    # Inherited operation from the derived interface.
    assert client.audit_count() == 1
    print("audit count works via inheritance")
    print("\nbank over IIOP OK")


if __name__ == "__main__":
    main()
