"""The Mail interface as a native-Python schema.

This is the dataclass twin of ``examples/idl/mail.idl``: same
repository id, same operation request codes, same bounded payloads —
``flick diff examples/idl/mail.idl examples/pyschema_mail.py --json``
reports WIRE_IDENTICAL on every protocol (exit code 0), so the IDL
file can be replaced by this module without a protocol break.

Compile it three ways::

    flick compile examples/pyschema_mail.py -o build/
    api.compile(open("examples/pyschema_mail.py").read())
    import examples.pyschema_mail; api.compile(examples.pyschema_mail)
"""

from typing import Annotated

from repro.pyschema import Len, i32, interface


@interface
class Mail:
    def send(self, msg: Annotated[str, Len(1024)], urgency: i32) -> None: ...

    def check(self, user: Annotated[str, Len(64)]) -> i32: ...

    def fetch(self, slot: i32) -> Annotated[str, Len(1024)]: ...


def main():
    import os

    from repro import api
    from repro.runtime import LoopbackTransport

    result = api.compile(Mail)
    print("compiled %s (%s) from a dataclass schema, no IDL file"
          % (result.interface.name, result.interface.code))

    class Impl:
        def send(self, msg, urgency):
            print("  servant got: %r (urgency %d)" % (msg, urgency))

        def check(self, user):
            return 2 if user == "alice" else 0

        def fetch(self, slot):
            return "message #%d" % slot

    module = result.module
    client = module.MailClient(LoopbackTransport(module.dispatch, Impl()))
    client.send("hello from a dataclass", 1)
    assert client.check("alice") == 2
    assert client.fetch(7) == "message #7"

    idl_path = os.path.join(os.path.dirname(__file__), "idl", "mail.idl")
    from repro.compat import diff_texts

    diffs = diff_texts(open(idl_path).read(),
                       open(__file__).read(),
                       old_name="mail.idl", new_name="pyschema_mail.py")
    for protocol, diff in sorted(diffs.items()):
        print("  flick diff vs mail.idl [%s]: %s"
              % (protocol, diff.verdict.value))
        assert diff.verdict.name == "WIRE_IDENTICAL"
    print("OK")


if __name__ == "__main__":
    main()
