#!/usr/bin/env python
"""Flexibility demo: one service, three schema languages, four transports.

The paper's central flexibility claim: Flick "supports multiple IDLs,
diverse data encodings, multiple transport mechanisms" by composing
independent front ends, presentation generators, and back ends.  This
example defines the *same* telemetry contract in CORBA IDL, in ONC RPC
IDL, and as annotated Python dataclasses (the pyschema front end),
compiles every combination, shows that all three produce byte-identical
XDR messages, and runs the service over all four message formats.
"""

from repro import Flick
from repro.encoding import MarshalBuffer
from repro.runtime import LoopbackTransport

CORBA_IDL = """
module Tele {
  struct Sample { long sensor; double value; };
  typedef sequence<Sample> Samples;
  interface Collector {
    long push(in Samples batch);
    double mean(in long sensor);
  };
};
"""

ONC_IDL = """
struct sample { int sensor; double value; };
typedef sample samples<>;
program TELE {
  version COLLECTOR {
    int push(samples) = 1;
    double mean(int) = 2;
  } = 1;
} = 0x20000200;
"""

PY_SCHEMA = '''
from dataclasses import dataclass

from repro.pyschema import f64, i32, interface


@dataclass
class Sample:
    sensor: i32
    value: f64


@interface
class Collector:
    def push(self, batch: list[Sample]) -> i32: ...
    def mean(self, sensor: i32) -> f64: ...
'''


def servant_for(module, servant_base):
    class Collector(servant_base):
        def __init__(self):
            self.samples = []

        def push(self, batch):
            from repro.pres.values import get_field

            for sample in batch:
                self.samples.append(
                    (get_field(sample, "sensor"), get_field(sample, "value"))
                )
            return len(self.samples)

        def mean(self, sensor):
            values = [v for s, v in self.samples if s == sensor]
            return sum(values) / len(values) if values else 0.0

    return Collector()


def run_service(module, client_class, servant_class, sample_class, label):
    servant = servant_for(module, servant_class)
    client = client_class(LoopbackTransport(module.dispatch, servant))
    batch = [sample_class(1, 20.0), sample_class(1, 22.0),
             sample_class(2, 99.5)]
    total = client.push(batch)
    mean = client.mean(1)
    assert total == 3 and mean == 21.0
    print("  %-28s push->%d  mean(1)->%.1f" % (label, total, mean))


def main():
    print("Same contract through every pipeline combination:")

    # CORBA IDL through all four back ends.
    for backend in ("iiop", "oncrpc-xdr", "mach3", "fluke"):
        result = Flick(frontend="corba", backend=backend).compile(CORBA_IDL)
        module = result.module
        run_service(
            module,
            module.Tele_CollectorClient,
            module.Tele_CollectorServant,
            module.Tele_Sample,
            "CORBA IDL -> %s" % backend,
        )

    # ONC RPC IDL through its natural and foreign back ends.
    for backend in ("oncrpc-xdr", "fluke"):
        result = Flick(frontend="oncrpc", backend=backend).compile(ONC_IDL)
        module = result.module
        run_service(
            module,
            module.TELE_COLLECTORClient,
            module.TELE_COLLECTORServant,
            module.sample,
            "ONC IDL   -> %s" % backend,
        )

    # No IDL file at all: the same contract as annotated dataclasses.
    for backend in ("oncrpc-xdr", "iiop"):
        result = Flick(frontend="pyschema", backend=backend).compile(
            PY_SCHEMA)
        module = result.module
        run_service(
            module,
            module.CollectorClient,
            module.CollectorServant,
            module.Sample,
            "dataclasses -> %s" % backend,
        )

    # The wire bytes are identical across schema languages: the
    # presentation differs (names, records), the network contract does
    # not.
    corba = Flick(frontend="corba", backend="oncrpc-xdr").compile(CORBA_IDL)
    onc = Flick(frontend="oncrpc").compile(ONC_IDL)
    pys = Flick(frontend="pyschema", backend="oncrpc-xdr").compile(PY_SCHEMA)
    corba_module, onc_module, pys_module = corba.module, onc.module, pys.module
    corba_buffer, onc_buffer, pys_buffer = (
        MarshalBuffer(), MarshalBuffer(), MarshalBuffer())
    corba_module._m_req_push(
        corba_buffer, 7, [corba_module.Tele_Sample(3, 1.5)]
    )
    onc_module._m_req_push(onc_buffer, 7, [onc_module.sample(3, 1.5)])
    pys_module._m_req_push(pys_buffer, 7, [pys_module.Sample(3, 1.5)])
    corba_body = corba_buffer.getvalue()[40:]
    onc_body = onc_buffer.getvalue()[40:]
    pys_body = pys_buffer.getvalue()[40:]
    assert corba_body == onc_body == pys_body
    print("\nXDR request bodies from all three schema languages are"
          " byte-identical:")
    print("  ", corba_body.hex())
    print("\ncross-IDL flexibility OK")


if __name__ == "__main__":
    main()
