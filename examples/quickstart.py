#!/usr/bin/env python
"""Quickstart: the paper's Mail interface, end to end in one file.

The paper opens with this CORBA IDL::

    interface Mail {
        void send(in string msg);
    };

Here we compile it with Flick, load the generated stubs, implement a
servant, and invoke it through the generated client proxy over an
in-process transport.  Everything the paper's Figure 1 shows — front end,
presentation generator, back end — runs inside ``Flick.compile``.
"""

from repro import Flick
from repro.runtime import LoopbackTransport

MAIL_IDL = """
interface Mail {
    void send(in string msg);
    long pending();
};
"""


def main():
    # Compile: CORBA IDL -> AOI -> PRES_C -> IIOP/CDR stubs.
    flick = Flick(frontend="corba", backend="iiop")
    result = flick.compile(MAIL_IDL)

    print("compiled interface:", result.interface.name)
    print("presentation style:", result.presc.presentation_style)
    print("back end:          ", result.stubs.backend_name)
    print()

    # The generated C prototype is the paper's programmer's contract:
    for line in result.stubs.c_header.splitlines():
        if "Mail_send(" in line:
            print("C contract:", line.strip())
    print()

    # Load the executable Python stubs and implement the servant.
    module = result.module

    class MailBox(module.MailServant):
        def __init__(self):
            self.messages = []

        def send(self, msg):
            self.messages.append(msg)

        def pending(self):
            return len(self.messages)

    servant = MailBox()
    client = module.MailClient(LoopbackTransport(module.dispatch, servant))

    client.send("hello, world")
    client.send("flick is an IDL compiler")
    count = client.pending()

    print("sent two messages; server reports %d pending" % count)
    print("server saw:", servant.messages)
    assert count == 2
    assert servant.messages[0] == "hello, world"
    print("\nquickstart OK")


if __name__ == "__main__":
    main()
