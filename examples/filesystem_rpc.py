#!/usr/bin/env python
"""A remote directory service over real TCP — the paper's motivating
workload as an application.

The paper's third benchmark method ships arrays of directory entries
(variable-length name + fixed stat structure).  This example builds the
actual service: an ONC RPC program whose server walks an in-memory file
tree and whose client lists and stats paths across a real (localhost)
TCP connection with RFC 1831 record framing — the same protocol family
rpcgen serves, generated here by Flick's ONC/XDR back end.
"""

import threading

from repro import Flick
from repro.errors import FlickUserException
from repro.runtime import StubServer, TcpClientTransport

FS_IDL = """
const MAXNAME = 255;

struct stat_info {
    int mode;
    int uid;
    int gid;
    unsigned hyper size;
    unsigned int mtime;
};

struct dirent {
    string name<MAXNAME>;
    stat_info st;
    dirent *next;
};

union lookup_result switch (int status) {
    case 0: dirent *entries;
    case 1: void;          /* not found */
    default: void;
};

program FILESERVER {
    version FSV1 {
        lookup_result list_dir(string) = 1;
        int create_file(string, unsigned hyper) = 2;
        unsigned hyper total_bytes(void) = 3;
    } = 1;
} = 0x20000100;
"""


class InMemoryFs:
    """A toy file tree: path -> (is_dir, size)."""

    def __init__(self):
        self.tree = {
            "/": ["etc", "home", "readme.txt"],
            "/etc": ["motd"],
            "/home": ["alice", "bob"],
            "/home/alice": ["notes.txt"],
            "/home/bob": [],
        }
        self.sizes = {
            "/readme.txt": 612,
            "/etc/motd": 77,
            "/home/alice/notes.txt": 2048,
        }

    def list(self, path):
        return self.tree.get(path)

    def stat(self, path):
        if path in self.tree:
            return (0o040755, 0, 0, 4096, 1_000_000_000)
        if path in self.sizes:
            return (0o100644, 1000, 1000, self.sizes[path], 1_000_000_001)
        return None


def make_servant(module, fs):
    class FileServer(module.FILESERVER_FSV1Servant):
        def list_dir(self, path):
            names = fs.list(path)
            if names is None:
                return (1, None)
            head = None
            for name in reversed(names):
                full = path.rstrip("/") + "/" + name
                mode, uid, gid, size, mtime = fs.stat(full)
                stat = module.stat_info(mode, uid, gid, size, mtime)
                head = module.dirent(name, stat, head)
            return (0, head)

        def create_file(self, path, size):
            fs.sizes[path] = size
            directory, _slash, name = path.rpartition("/")
            fs.tree.setdefault(directory or "/", []).append(name)
            return 0

        def total_bytes(self):
            return sum(fs.sizes.values())

    return FileServer()


def entries_to_list(head):
    out = []
    while head is not None:
        out.append((head.name, head.st.size))
        head = head.next
    return out


def main():
    result = Flick(frontend="oncrpc").compile(FS_IDL)
    module = result.module
    print("compiled %s -> %s stubs"
          % (result.interface.name, result.stubs.backend_name))

    fs = InMemoryFs()
    server = StubServer(module, make_servant(module, fs)).tcp_server()
    with server:
        host, port = server.address
        print("file server listening on %s:%d" % (host, port))
        transport = TcpClientTransport(host, port)
        try:
            client = module.FILESERVER_FSV1Client(transport)

            status, head = client.list_dir("/home")
            assert status == 0
            print("/home:", entries_to_list(head))

            status, _head = client.list_dir("/nope")
            assert status == 1
            print("/nope: not found (status 1)")

            client.create_file("/home/bob/report.pdf", 123456)
            status, head = client.list_dir("/home/bob")
            listing = entries_to_list(head)
            print("/home/bob after create:", listing)
            assert ("report.pdf", 123456) in listing

            total = client.total_bytes()
            print("total bytes on server:", total)
            assert total == 612 + 77 + 2048 + 123456
        finally:
            transport.close()
    print("\nfilesystem RPC over TCP OK")


if __name__ == "__main__":
    main()
