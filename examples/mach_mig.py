#!/usr/bin/env python
"""MIG subsystems on simulated Mach 3 IPC — and why Flick replaced MIG.

Compiles a MIG subsystem with the MIG front end (which, as in the paper,
is conjoined with its own presentation generator and emits PRES_C
directly), runs it over the simulated Mach IPC transport, and then shows
the rigidity the paper criticizes: MIG-style compilation refuses an
interface with structures, while Flick's Mach 3 back end handles it from
the same kernel transport.
"""

from repro import api
from repro.compilers import make_baseline
from repro.errors import BackEndError
from repro.runtime import MachIpcTransport

NAME_SERVER = """
subsystem netname 777;

type name_t = c_string[80];
type port_list = array[*:64] of int;

routine check_in(server : mach_port_t; name : name_t; port : int);
routine look_up(server : mach_port_t; name : name_t; out port : int);
routine list_ports(server : mach_port_t; out ports : port_list);
simpleroutine check_out(server : mach_port_t; name : name_t);
"""

RICH_IDL = """
struct reg { string name<80>; int port; int flags; };
program RICHNAME {
  version RV {
    int register_full(reg) = 1;
  } = 1;
} = 0x20000300;
"""


def main():
    # --- a classic Mach name server through the MIG front end ---------
    presc = api.compile(NAME_SERVER, "mig").presc
    print("MIG subsystem %r, msgh_id base %d"
          % (presc.interface_name, presc.interface_code))
    module = make_baseline("mig").generate(presc).load()

    class NameServer(module.netnameServant):
        def __init__(self):
            self.table = {}

        def check_in(self, name, port):
            self.table[name] = port

        def look_up(self, name):
            return self.table.get(name, -1)

        def list_ports(self):
            return sorted(self.table.values())

        def check_out(self, name):
            self.table.pop(name, None)

    servant = NameServer()
    transport = MachIpcTransport(module.dispatch, servant)
    client = module.netnameClient(transport)

    client.check_in("console", 1001)
    client.check_in("pager", 1002)
    print("look_up('console') ->", client.look_up("console"))
    print("list_ports() ->", client.list_ports())
    client.check_out("console")
    print("after check_out, look_up ->", client.look_up("console"))
    assert client.look_up("console") == -1
    print("simulated kernel time: %.1f microseconds"
          % (transport.simulated_seconds * 1e6))

    # --- the rigidity the paper criticizes ----------------------------
    rich = api.compile(RICH_IDL, "oncrpc", backend="mach3")
    try:
        make_baseline("mig").generate(rich.presc)
        raise AssertionError("MIG should have refused the struct")
    except BackEndError as error:
        print("\nMIG-style compilation refuses:", error)

    rich_module = rich.module

    class RichImpl(rich_module.RICHNAME_RVServant):
        def register_full(self, registration):
            return registration.port + registration.flags

    rich_client = rich_module.RICHNAME_RVClient(
        MachIpcTransport(rich_module.dispatch, RichImpl())
    )
    answer = rich_client.register_full(
        rich_module.reg("svc", 4000, 2)
    )
    print("Flick's Mach 3 back end handles the same struct fine:", answer)
    assert answer == 4002
    print("\nMIG on Mach OK")


if __name__ == "__main__":
    main()
