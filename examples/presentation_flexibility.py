#!/usr/bin/env python
"""Presentation flexibility: same network contract, different programmer's
contracts (paper section 2.2).

The paper's motivating example: by departing from the standard CORBA C
mapping, ``Mail_send`` can take an explicit length so the stub "would no
longer need to count the number of characters in the message" — and the
messages on the wire do not change.  This example compiles the same
interface under three presentations, prints the differing C contracts,
proves the wire bytes identical, and measures the marshal-rate difference.
"""

import time

from repro import Flick
from repro.cast import emit_c
from repro.encoding import MarshalBuffer
from repro.runtime import LoopbackTransport

IDL = """
interface Mail {
    long send(in string msg);
};
"""


def c_contract(result):
    for line in emit_c([result.presc.stub_named("send").c_decl]).splitlines():
        if "send(" in line:
            return line.strip()
    return "?"


def marshal_rate(module, value, seconds=0.2):
    buffer = MarshalBuffer()
    module._m_req_send(buffer, 1, value)
    size = buffer.length
    count = 0
    start = time.perf_counter()
    while time.perf_counter() - start < seconds:
        buffer.reset()
        module._m_req_send(buffer, 1, value)
        count += 1
    return size * count / (time.perf_counter() - start) / 1e6


def main():
    presentations = {}
    for style in ("corba-c", "corba-c-len", "fluke"):
        presentations[style] = Flick(
            frontend="corba", presentation=style, backend="iiop"
        ).compile(IDL)

    print("Three programmer's contracts for one network contract:\n")
    for style, result in presentations.items():
        print("  %-12s %s" % (style, c_contract(result)))

    # Identical wire bytes from the standard and length presentations.
    standard = presentations["corba-c"].module
    with_length = presentations["corba-c-len"].module
    text = "The quick brown fox jumps over the lazy dog." * 8000
    encoded = text.encode("latin-1")
    buffer_a, buffer_b = MarshalBuffer(), MarshalBuffer()
    standard._m_req_send(buffer_a, 7, text)
    with_length._m_req_send(buffer_b, 7, encoded)
    assert buffer_a.getvalue() == buffer_b.getvalue()
    print("\nwire bytes are identical across presentations"
          " (%d-byte request)" % len(buffer_a.getvalue()))

    # And the variant is measurably faster: no count, no encode.
    standard_rate = marshal_rate(standard, text)
    variant_rate = marshal_rate(with_length, encoded)
    print("marshal rate, standard contract:        %6.0f MB/s"
          % standard_rate)
    print("marshal rate, length-carrying contract: %6.0f MB/s  (%.2fx)"
          % (variant_rate, variant_rate / standard_rate))

    # The two presentations interoperate over one server.
    class Impl(with_length.MailServant):
        def send(self, msg):
            return len(msg)

    transport = LoopbackTransport(with_length.dispatch, Impl())
    assert standard.MailClient(transport).send("hello") == 5
    assert with_length.MailClient(transport).send(b"hello") == 5
    print("\nstandard and length clients served by one servant: OK")


if __name__ == "__main__":
    main()
