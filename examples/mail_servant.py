"""A servant for the paper's Mail example (examples/idl/mail.idl).

Used by the supervised-serving recipe in the README and the CI
multi-process smoke job::

    PYTHONPATH=src:examples python -m repro.tools.cli serve \
        examples/idl/mail.idl --impl mail_servant:MailServant \
        --workers 4 --metrics-port 9464

The servant implements every operation of both schema generations
(``mail.idl`` and its DECODE_COMPATIBLE evolution ``mail_v2.idl``), so
a SIGHUP rollout from v1 to v2 can land on it without a code change:
``expunge`` only becomes reachable once the v2 stubs serve.
"""


class MailServant:
    """An in-memory mailbox; one slot per message."""

    def __init__(self):
        self._slots = {}
        self._next = 0

    def send(self, msg, urgency):
        self._slots[self._next] = (msg, urgency)
        self._next += 1

    def check(self, user):
        return len(self._slots)

    def fetch(self, slot):
        message = self._slots.get(slot)
        return message[0] if message is not None else ""

    def expunge(self, slot):  # mail_v2.idl only
        self._slots.pop(slot, None)


def main():
    """Self-check: serve the servant in-process through the v2 stubs."""
    import os
    import sys

    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "src"))
    from repro import Flick
    from repro.runtime import StubServer, TcpClientTransport

    idl = open(os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        "idl", "mail_v2.idl")).read()
    module = Flick(frontend="corba").compile(idl).module
    with StubServer(module, MailServant()).tcp_server() as server:
        client = module.MailClient(
            TcpClientTransport(*server.address))
        client.send("hello", 1)
        client.send("world", 2)
        assert client.check("bob") == 2
        assert client.fetch(0) == "hello"
        client.expunge(0)
        assert client.check("bob") == 1
    print("OK: MailServant served mail_v2.idl "
          "(2 sent, 1 expunged, 1 left)")


if __name__ == "__main__":
    main()
