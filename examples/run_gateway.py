#!/usr/bin/env python
"""Protocol gateway demo: bridge IIOP clients onto an ONC RPC servant.

The gateway (`repro.gateway`, `flick gateway`) accepts frames on one
protocol and forwards them on another for the same interface —
*without* decoding to presentation values where the two wire formats
agree byte-for-byte.  This walkthrough:

1. compiles ``examples/idl/sensor.idl`` for both IIOP and ONC RPC/XDR
   and statically proves the bridge lossless (`flick bridge`);
2. builds the bridge plan and shows which operations fused into bulk
   copy plans and which fall back to decode/re-encode;
3. starts an unmodified blocking ONC RPC servant, a gateway in front
   of it, and calls through with an unmodified IIOP client — then
   flips the bridge around (ONC client -> IIOP servant);
4. shows verdict gating: the narrowed ``sensor_v2.idl`` as ingress
   against the wide v1 egress is refused as BREAKING.

Run with: PYTHONPATH=src python examples/run_gateway.py
"""

import os

from repro import api
from repro.gateway import (
    AioGatewayServer,
    bridge_exit_code,
    bridge_report_text,
    build_plan,
    check_bridge,
)
from repro.runtime import StubServer, TcpClientTransport

HERE = os.path.dirname(os.path.abspath(__file__))


def read_schema(name):
    with open(os.path.join(HERE, "idl", name)) as handle:
        return handle.read()


class SensorImpl:
    """An ordinary servant — it never learns a gateway is in front."""

    def __init__(self):
        self.published = 0
        self.calibrated = None

    def publish(self, batch):
        self.published += len(batch)
        return self.published

    def calibrate(self, frame):
        self.calibrated = frame

    def describe(self, channel):
        return "channel %d: %d samples" % (channel, self.published)


def compile_sides(text):
    iiop = api.compile(text, "corba", interface="Demo::Sensor",
                       backend="iiop")
    onc = api.compile(text, "corba", interface="Demo::Sensor",
                      backend="oncrpc-xdr")
    return iiop, onc


def drive(client, module):
    """The same calls any same-protocol client would make."""
    total = client.publish(list(range(1000)))
    cell = module.Demo_Cell
    client.calibrate([cell(i, i + 10, i + 5) for i in range(16)])
    return total, client.describe(7)


def bridge_demo(ingress, egress, label):
    egress_module = egress.module
    upstream = StubServer(egress_module, SensorImpl()).tcp_server()
    with upstream:
        plan = build_plan(ingress, egress)
        gateway = AioGatewayServer(plan, upstream.address[0],
                                   upstream.address[1])
        with gateway:
            ingress_module = ingress.module
            transport = TcpClientTransport(*gateway.address)
            try:
                client = ingress_module.Demo_SensorClient(transport)
                total, description = drive(client, ingress_module)
            finally:
                transport.close()
    assert total == 1000 and description == "channel 7: 1000 samples"
    print("  %-22s publish->%d  describe->%r" % (label, total, description))


def main():
    v1 = read_schema("sensor.idl")
    iiop, onc = compile_sides(v1)

    print("Static verification (flick bridge): both directions")
    report = check_bridge(iiop, onc)
    print("  iiop<->oncrpc-xdr verdict: %s (exit %d)"
          % (report.verdict.name, bridge_exit_code(report)))
    assert bridge_exit_code(report) == 0

    print("\nBridge plan: word-shaped channels splice wire to wire")
    for line in build_plan(iiop, onc).summary().splitlines():
        print("  " + line)

    print("\nUnmodified client -> gateway -> unmodified servant:")
    bridge_demo(iiop, onc, "IIOP -> ONC RPC")
    bridge_demo(onc, iiop, "ONC RPC -> IIOP")

    print("\nVerdict gating: narrowed ingress against wide egress")
    narrow_iiop, _ = compile_sides(read_schema("sensor_v2.idl"))
    breaking = check_bridge(narrow_iiop, onc)
    print("  sensor_v2 -> sensor verdict: %s (exit %d)"
          % (breaking.verdict.name, bridge_exit_code(breaking)))
    assert bridge_exit_code(breaking) == 2
    report_text = bridge_report_text(breaking, "sensor_v2.idl",
                                     "sensor.idl")
    for line in report_text.splitlines():
        if "narrowed" in line:
            print("  finding: " + line.strip())
    print("  flick gateway --check refuses to serve this pair.")
    print("\nOK")


if __name__ == "__main__":
    main()
